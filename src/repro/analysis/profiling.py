"""Measurement-first performance utilities.

"No optimization without measuring" — the batch simulator exists because a
profile showed the scalar step loop dominating the scaling study.  These
helpers make that workflow one-liners:

* :class:`Stopwatch` — context-manager wall-clock timer with splits;
* :func:`time_callable` — repeat-and-summarize timing (like ``timeit`` but
  returning a :class:`~repro.analysis.statistics.Summary`);
* :func:`profile_callable` — run under :mod:`cProfile` and return the top
  hotspots as structured rows.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.statistics import Summary, summarize


class Stopwatch:
    """Wall-clock timer usable as a context manager.

    Example::

        with Stopwatch() as sw:
            run_simulation()
            sw.split("simulate")
            analyze()
            sw.split("analyze")
        print(sw.splits)
    """

    def __init__(self) -> None:
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        #: Named split points: (label, seconds since previous split).
        self.splits: List[Tuple[str, float]] = []
        self._last: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self.start = self._last = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.end = time.perf_counter()

    def split(self, label: str) -> float:
        """Record the time since the previous split; returns it."""
        if self._last is None:
            raise RuntimeError("stopwatch not started")
        now = time.perf_counter()
        delta = now - self._last
        self.splits.append((label, delta))
        self._last = now
        return delta

    @property
    def elapsed(self) -> float:
        """Total seconds between enter and exit (or now, if still running)."""
        if self.start is None:
            raise RuntimeError("stopwatch not started")
        return (self.end or time.perf_counter()) - self.start


def time_callable(
    fn: Callable[[], Any], repeats: int = 5, warmup: int = 1
) -> Summary:
    """Time ``fn()`` ``repeats`` times (after ``warmup`` discarded calls).

    The returned :class:`~repro.analysis.statistics.Summary` carries the
    individual per-repeat timings on ``samples`` — histogram exporters
    (telemetry, the perf-bench JSON artifact) consume them directly.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return summarize(samples)


@dataclass(frozen=True)
class Hotspot:
    """One row of a profile: where the time went."""

    function: str
    calls: int
    cumulative_seconds: float
    total_seconds: float


def profile_callable(
    fn: Callable[[], Any], top: int = 10
) -> List[Hotspot]:
    """Run ``fn()`` under cProfile; return the ``top`` cumulative hotspots."""
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats("cumulative")
    rows: List[Hotspot] = []
    for func, (cc, nc, tt, ct, callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, line, name = func
        rows.append(
            Hotspot(
                function=f"{filename}:{line}({name})",
                calls=nc,
                cumulative_seconds=ct,
                total_seconds=tt,
            )
        )
    rows.sort(key=lambda h: h.cumulative_seconds, reverse=True)
    return rows[:top]


def compare_engines(n: int = 8, trials: int = 50, seed: int = 0) -> Dict[str, float]:
    """Measured speedup of the batch engine over the scalar one.

    Runs the same convergence workload both ways and returns
    ``{"scalar_seconds": ..., "batch_seconds": ..., "speedup": ...}`` —
    the motivating measurement for :mod:`repro.simulation.batch`.
    """
    from repro.core.ssrmin import SSRmin
    from repro.daemons.distributed import BernoulliDaemon
    from repro.simulation.batch import batch_convergence_steps
    from repro.simulation.convergence import convergence_steps

    t0 = time.perf_counter()
    convergence_steps(
        algorithm_factory=lambda: SSRmin(n, n + 1),
        daemon_factory=lambda alg, s: BernoulliDaemon(0.5, seed=s),
        trials=trials,
        seed=seed,
    )
    scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    batch_convergence_steps(n=n, trials=trials, p=0.5, seed=seed)
    batch = time.perf_counter() - t0

    return {
        "scalar_seconds": scalar,
        "batch_seconds": batch,
        "speedup": scalar / batch if batch > 0 else float("inf"),
    }
