"""Daemon fairness analysis: who got starved, and for how long.

The paper's daemon is *unfair*: it "may not select a process even if it is
continuously enabled forever", and SSRmin must cope.  This module measures
how unfair a given schedule actually was:

* :func:`starvation_report` — for each process, the longest streak of
  consecutive steps in which it was enabled but not selected (its
  *starvation streak*), plus selection counts;
* :class:`FairnessReport.weakly_fair` — whether the schedule was weakly
  fair in the finite-execution sense: no process ends the execution mid-
  streak having been continuously enabled without ever moving again.

Used in tests to confirm the daemon taxonomy behaves as advertised
(round-robin is fair, fixed-priority starves) and in the abl2 narrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.algorithms.base import RingAlgorithm
from repro.simulation.execution import Execution


@dataclass(frozen=True)
class FairnessReport:
    """Starvation statistics of one recorded execution.

    Attributes
    ----------
    selections:
        Moves per process over the execution.
    max_streak:
        Per-process longest enabled-but-unselected streak (steps).
    final_streak:
        Per-process streak still open when the execution ended.
    """

    selections: Dict[int, int]
    max_streak: Dict[int, int]
    final_streak: Dict[int, int]

    @property
    def worst_starvation(self) -> int:
        """The longest streak any process suffered."""
        return max(self.max_streak.values(), default=0)

    @property
    def weakly_fair(self) -> bool:
        """No process was left continuously enabled and unserved at the end.

        (On finite executions this is the checkable fragment of weak
        fairness; an ongoing streak shorter than the execution does not
        falsify it, so we flag only processes whose open streak spans a
        meaningful fraction of the run.)
        """
        horizon = max(sum(self.selections.values()), 1)
        return all(st < max(horizon // 2, 2) for st in self.final_streak.values())

    def starved(self, threshold: int) -> List[int]:
        """Processes whose longest streak reached ``threshold``."""
        return sorted(i for i, s in self.max_streak.items() if s >= threshold)


def starvation_report(
    execution: Execution, algorithm: RingAlgorithm
) -> FairnessReport:
    """Analyze an execution's schedule for starvation.

    A process's streak grows on every step where it is enabled (in the
    pre-step configuration) but not selected; it resets when the process
    moves or becomes disabled.
    """
    n = algorithm.n
    selections = {i: 0 for i in range(n)}
    max_streak = {i: 0 for i in range(n)}
    streak = {i: 0 for i in range(n)}

    for t, moves in enumerate(execution.moves):
        config = execution.configurations[t]
        movers = {m.process for m in moves}
        enabled = set(algorithm.enabled_processes(config))
        for i in range(n):
            if i in movers:
                selections[i] += 1
                streak[i] = 0
            elif i in enabled:
                streak[i] += 1
                max_streak[i] = max(max_streak[i], streak[i])
            else:
                streak[i] = 0
    return FairnessReport(
        selections=selections,
        max_streak=max_streak,
        final_streak=dict(streak),
    )
