"""Round complexity accounting.

Steps (daemon activations) are the paper's complexity unit, but much of the
self-stabilization literature measures **rounds**: a round is a minimal
execution fragment in which every process that was *continuously enabled
since the round began* has either moved or become disabled.  Rounds factor
out the daemon's freedom to starve — an O(n^2)-step algorithm can still be
O(n)-round.

:class:`RoundCounter` is a simulation monitor that segments an execution
into rounds online; :func:`measure_rounds` is the batch driver used by the
``ext2`` experiment, which reports SSRmin's empirical round complexity next
to its step complexity.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Set, Tuple

from repro.algorithms.base import RingAlgorithm
from repro.daemons.base import Daemon
from repro.simulation.execution import Move
from repro.simulation.monitors import Monitor


class RoundCounter(Monitor):
    """Online round segmentation of an execution.

    At the start of each round the set of enabled processes is snapshotted;
    a process leaves the snapshot when it moves *or* when it is observed
    disabled (its guard was falsified by neighbours).  When the snapshot
    empties, the round ends and the next one begins at the following
    configuration.
    """

    def __init__(self, algorithm: RingAlgorithm):
        self.algorithm = algorithm
        #: Completed rounds (count).
        self.rounds = 0
        #: Steps consumed by each completed round.
        self.round_lengths: List[int] = []
        self._pending: Set[int] = set()
        self._current_len = 0

    def _snapshot(self, config: Any) -> None:
        self._pending = set(self.algorithm.enabled_processes(config))
        self._current_len = 0

    def on_start(self, config: Any) -> None:
        self.rounds = 0
        self.round_lengths = []
        self._snapshot(config)

    def on_step(self, step: int, config: Any, moves: Tuple[Move, ...],
                next_config: Any) -> None:
        self._current_len += 1
        for m in moves:
            self._pending.discard(m.process)
        # Processes whose guards got falsified also leave the round.
        still_enabled = set(self.algorithm.enabled_processes(next_config))
        self._pending &= still_enabled
        if not self._pending:
            self.rounds += 1
            self.round_lengths.append(self._current_len)
            self._snapshot(next_config)


def measure_rounds(
    algorithm: RingAlgorithm,
    daemon: Daemon,
    initial: Any,
    max_steps: Optional[int] = None,
) -> Tuple[int, int]:
    """``(steps, rounds)`` until ``initial`` converges to legitimacy.

    Raises :class:`RuntimeError` on budget exhaustion.
    """
    from repro.simulation.engine import SharedMemorySimulator

    n = algorithm.n
    budget = max_steps if max_steps is not None else 60 * n * n + 600
    counter = RoundCounter(algorithm)
    sim = SharedMemorySimulator(algorithm, daemon, monitors=[counter])
    result = sim.run(initial, max_steps=budget,
                     stop_when=algorithm.is_legitimate, record=False)
    if not result.stopped_by_predicate and not algorithm.is_legitimate(
        result.final_config
    ):
        raise RuntimeError("did not converge within the round-measure budget")
    # Count the in-progress round as one if it consumed steps.
    rounds = counter.rounds + (1 if counter._current_len > 0 else 0)
    return result.steps, rounds
