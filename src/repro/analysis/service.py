"""Service fairness: how often (and how regularly) each process is privileged.

In the legitimate regime the token pair takes exactly ``3n`` steps per lap
(Lemma 1's canonical cycle), so each process is privileged once per lap and
the gap between consecutive services is bounded.  This module quantifies it:

* :class:`ServiceMonitor` — records, per process, the step indices at which
  it was privileged (entered the critical section);
* :func:`service_report` — waiting-time statistics: max inter-service gap,
  per-process service counts, Jain's fairness index of the counts.

Used by tests (progress/fairness evidence) and the ``ext3`` experiment
(message-passing service statistics next to state-reading ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.simulation.execution import Move
from repro.simulation.monitors import Monitor


class ServiceMonitor(Monitor):
    """Track per-process privileged intervals over a simulation."""

    def __init__(self, algorithm):
        self.algorithm = algorithm
        #: step index -> tuple of privileged processes
        self.history: List[Tuple[int, ...]] = []

    def on_start(self, config: Any) -> None:
        self.history = [tuple(self.algorithm.privileged(config))]

    def on_step(self, step: int, config: Any, moves: Tuple[Move, ...],
                next_config: Any) -> None:
        self.history.append(tuple(self.algorithm.privileged(next_config)))


@dataclass
class ServiceReport:
    """Fairness statistics extracted from a service history."""

    service_counts: Dict[int, int]
    max_gap: int
    mean_gap: float
    jain_index: float

    @property
    def all_served(self) -> bool:
        return all(v > 0 for v in self.service_counts.values())


def jain_fairness(counts) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` in ``(0, 1]``."""
    x = np.asarray(list(counts), dtype=float)
    if x.size == 0 or not np.any(x):
        return 0.0
    return float(x.sum() ** 2 / (x.size * (x ** 2).sum()))


def service_report(history: List[Tuple[int, ...]], n: int) -> ServiceReport:
    """Summarize a privileged-set history.

    A *service* of process ``i`` is a maximal run of consecutive
    configurations in which ``i`` is privileged; gaps are the runs in
    between.  ``max_gap`` is the longest any process waited between
    services (or before its first service).
    """
    counts: Dict[int, int] = {i: 0 for i in range(n)}
    gaps: List[int] = []
    last_end: Dict[int, int] = {i: 0 for i in range(n)}
    in_service: Dict[int, bool] = {i: False for i in range(n)}

    for t, holders in enumerate(history):
        hset = set(holders)
        for i in range(n):
            if i in hset:
                if not in_service[i]:
                    counts[i] += 1
                    gaps.append(t - last_end[i])
                    in_service[i] = True
            else:
                if in_service[i]:
                    last_end[i] = t
                    in_service[i] = False

    # Processes never served wait the whole history.
    for i in range(n):
        if counts[i] == 0:
            gaps.append(len(history))

    return ServiceReport(
        service_counts=counts,
        max_gap=max(gaps) if gaps else 0,
        mean_gap=float(np.mean(gaps)) if gaps else 0.0,
        jain_index=jain_fairness(counts.values()),
    )
