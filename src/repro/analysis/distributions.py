"""Statistical comparison of step/time distributions (scipy-backed).

Claims like "the adversary is slower than the random daemon" or "K's
magnitude does not matter" are distributional; eyeballing means is weak
evidence.  :func:`compare_distributions` wraps the two-sample
Kolmogorov-Smirnov and Mann-Whitney U tests into one verdict object, and
:func:`effect_size` gives Cliff's delta (how often one sample exceeds the
other) for magnitude alongside significance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class DistributionComparison:
    """Two-sample comparison verdict.

    Attributes
    ----------
    ks_statistic, ks_pvalue:
        Two-sample Kolmogorov-Smirnov test (distribution equality).
    mw_statistic, mw_pvalue:
        Mann-Whitney U test (stochastic ordering).
    cliffs_delta:
        Cliff's delta in ``[-1, 1]``: positive means sample A tends larger.
    """

    ks_statistic: float
    ks_pvalue: float
    mw_statistic: float
    mw_pvalue: float
    cliffs_delta: float

    def distinguishable(self, alpha: float = 0.01) -> bool:
        """Whether the KS test rejects distribution equality at ``alpha``."""
        return self.ks_pvalue < alpha

    def a_stochastically_larger(self, alpha: float = 0.01) -> bool:
        """Whether A tends larger than B (MW significant AND delta > 0)."""
        return self.mw_pvalue < alpha and self.cliffs_delta > 0


def effect_size(a: Sequence[float], b: Sequence[float]) -> float:
    """Cliff's delta: P(a > b) - P(a < b) over random cross pairs."""
    xa = np.asarray(a, dtype=float)
    xb = np.asarray(b, dtype=float)
    if xa.size == 0 or xb.size == 0:
        raise ValueError("both samples must be non-empty")
    # Broadcasted comparison is fine at experiment sample sizes (<= ~10^4).
    greater = (xa[:, None] > xb[None, :]).sum()
    less = (xa[:, None] < xb[None, :]).sum()
    return float((greater - less) / (xa.size * xb.size))


def compare_distributions(
    a: Sequence[float], b: Sequence[float]
) -> DistributionComparison:
    """Run KS + Mann-Whitney + Cliff's delta on two samples."""
    xa = np.asarray(a, dtype=float)
    xb = np.asarray(b, dtype=float)
    if xa.size < 2 or xb.size < 2:
        raise ValueError("need at least two observations per sample")
    ks = stats.ks_2samp(xa, xb)
    mw = stats.mannwhitneyu(xa, xb, alternative="two-sided")
    return DistributionComparison(
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
        mw_statistic=float(mw.statistic),
        mw_pvalue=float(mw.pvalue),
        cliffs_delta=effect_size(xa, xb),
    )
