"""Power-law scaling fits: is convergence time O(n^2)? (Theorem 2)

The scaling study measures convergence steps ``T(n)`` for a sweep of ring
sizes and fits ``T = c * n^alpha`` by least squares on ``log T = log c +
alpha log n`` (numpy.polyfit).  Theorem 2 proves ``alpha <= 2`` for the worst
case; the conference version only gave ``alpha <= 3``, so the fitted exponent
of *adversarially scheduled* runs landing near (or below) 2 is the paper-vs-
measured comparison the thm2 bench records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``y = c * x^alpha``.

    Attributes
    ----------
    exponent:
        The fitted ``alpha``.
    prefactor:
        The fitted ``c``.
    r_squared:
        Coefficient of determination of the log-log regression.
    """

    exponent: float
    prefactor: float
    r_squared: float

    def predict(self, x: float) -> float:
        """``c * x^alpha``."""
        return self.prefactor * (x ** self.exponent)

    def __str__(self) -> str:
        return (
            f"y = {self.prefactor:.3g} * x^{self.exponent:.3f} "
            f"(R^2 = {self.r_squared:.4f})"
        )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares power-law fit in log-log space.

    Requires at least two distinct positive ``x`` values and positive ``y``
    values.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need matching samples with at least two points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    lx, ly = np.log(x), np.log(y)
    if np.allclose(lx, lx[0]):
        raise ValueError("need at least two distinct x values")
    alpha, logc = np.polyfit(lx, ly, 1)
    pred = alpha * lx + logc
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(exponent=float(alpha), prefactor=float(np.exp(logc)), r_squared=r2)
