"""Summary statistics for experiment samples (numpy-backed).

Experiments report convergence steps, zero-token times, coverage fractions
etc. over many seeded trials; :func:`summarize` collapses a sample into the
mean, spread and a normal-approximation confidence interval — enough for the
table rows the benches print (the paper itself reports only asymptotics, so
empirical spreads are our addition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample.

    Attributes
    ----------
    n:
        Sample size.
    mean, std:
        Sample mean and (ddof=1) standard deviation.
    minimum, maximum:
        Extremes.
    median:
        Sample median.
    ci_low, ci_high:
        ~95% normal-approximation confidence interval for the mean.
    samples:
        The individual observations the summary was computed from, in
        input order (empty for summaries built without them).
    """

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    ci_low: float
    ci_high: float
    samples: Tuple[float, ...] = ()

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.2f} +/- {self.ci_half:.2f} "
            f"(std={self.std:.2f}, min={self.minimum:.0f}, "
            f"median={self.median:.1f}, max={self.maximum:.0f})"
        )

    @property
    def ci_half(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


def summarize(samples: Sequence[float], z: float = 1.96) -> Summary:
    """Summarize a non-empty sample.

    Parameters
    ----------
    samples:
        The observations.
    z:
        Normal quantile for the CI (1.96 ~ 95%).
    """
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(samples, dtype=float)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    half = z * std / np.sqrt(arr.size) if arr.size > 1 else 0.0
    return Summary(
        n=int(arr.size),
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        ci_low=mean - half,
        ci_high=mean + half,
        samples=tuple(float(x) for x in arr),
    )
