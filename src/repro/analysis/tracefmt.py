"""Execution-trace tables in the paper's visual style (Figures 1 and 4).

Figure 4 prints, per step and process, ``x.rts.tra`` annotated with ``P``
(primary token), ``S`` (secondary token) and ``/g`` (the enabled rule's
number); enabled processes are marked.  Figure 1 is the coarser view: just
which process holds ``P`` and ``S``.  These formatters regenerate both from
a recorded execution.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.ssrmin import SSRmin
from repro.simulation.execution import Execution


def annotate_process(alg: SSRmin, config, i: int) -> str:
    """One Figure-4 cell: ``x.rts.tra`` + P/S flags + ``/rule`` if enabled."""
    x, rts, tra = config[i]
    cell = f"{x}.{rts}.{tra}"
    if alg.holds_primary(config, i):
        cell += "P"
    if alg.holds_secondary(config, i):
        cell += "S"
    rule = alg.enabled_rule(config, i)
    if rule is not None:
        cell += f"/{rule.number}"
    return cell


def format_trace(alg: SSRmin, execution: Execution, start_step: int = 1) -> str:
    """Figure-4 style table for a recorded SSRmin execution.

    Steps are numbered from ``start_step`` (the paper starts at 1).
    """
    n = alg.n
    header = ["Step"] + [f"P{i}" for i in range(n)]
    rows: List[List[str]] = []
    for t, config in enumerate(execution.configurations):
        rows.append(
            [str(start_step + t)]
            + [annotate_process(alg, config, i) for i in range(n)]
        )
    return _render_table(header, rows)


def format_token_movement(
    alg: SSRmin, execution: Execution, start_step: int = 1
) -> str:
    """Figure-1 style table: 'P', 'S', 'PS' or '-' per process per step."""
    n = alg.n
    header = ["Step"] + [f"P{i}" for i in range(n)]
    rows: List[List[str]] = []
    for t, config in enumerate(execution.configurations):
        cells = []
        for i in range(n):
            mark = ""
            if alg.holds_primary(config, i):
                mark += "P"
            if alg.holds_secondary(config, i):
                mark += "S"
            cells.append(mark or "-")
        rows.append([str(start_step + t)] + cells)
    return _render_table(header, rows)


def _render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width plain-text table."""
    widths = [len(h) for h in header]
    for row in rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    lines = [
        "  ".join(h.ljust(widths[c]) for c, h in enumerate(header)),
        "  ".join("-" * widths[c] for c in range(len(header))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
    return "\n".join(lines)
