"""Rule-execution censuses (Lemma 5 and Lemma 8's bookkeeping).

Lemma 5: any execution fragment containing **no** execution of Rules 2/4
(the embedded Dijkstra steps, the ``W24`` events) has length at most ``3n``.
Lemma 8 bounds ``|W135|`` by a constant factor of ``|W24|`` (the domination
argument with constants ``L = 9`` and ``M = 2``).

:func:`census_execution` extracts both quantities from a recorded execution
so the lem5 bench can confront them with the proven bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.simulation.execution import Execution
from repro.simulation.monitors import W135_RULES, W24_RULES


@dataclass(frozen=True)
class CensusReport:
    """Census of one execution.

    Attributes
    ----------
    n:
        Ring size the execution ran on.
    steps:
        Number of transitions.
    rule_counts:
        Executions per rule name (a step may contain several moves).
    w24, w135:
        Event totals in each class.
    longest_w135_run:
        Longest run of consecutive *steps* containing no W24 event —
        Lemma 5 bounds this by ``3n``.
    """

    n: int
    steps: int
    rule_counts: Dict[str, int]
    w24: int
    w135: int
    longest_w135_run: int

    @property
    def lemma5_bound(self) -> int:
        """The proven ``3n`` bound."""
        return 3 * self.n

    @property
    def lemma5_holds(self) -> bool:
        """Whether the observed longest W135 run respects Lemma 5."""
        return self.longest_w135_run <= self.lemma5_bound

    @property
    def domination_ratio(self) -> float:
        """``|W135| / |W24|`` — Lemma 8 bounds this by a constant (~L=9).

        Returns ``inf`` when no W24 event occurred (only possible for very
        short executions, by Lemma 5).
        """
        return self.w135 / self.w24 if self.w24 else float("inf")


def census_execution(execution: Execution, n: int) -> CensusReport:
    """Compute the census of a recorded execution on an ``n``-ring."""
    counts: Dict[str, int] = {}
    longest = 0
    current = 0
    for step_moves in execution.moves:
        saw_w24 = False
        for m in step_moves:
            counts[m.rule] = counts.get(m.rule, 0) + 1
            if m.rule in W24_RULES:
                saw_w24 = True
        if saw_w24:
            current = 0
        else:
            current += 1
            longest = max(longest, current)
    w24 = sum(v for k, v in counts.items() if k in W24_RULES)
    w135 = sum(v for k, v in counts.items() if k in W135_RULES)
    return CensusReport(
        n=n,
        steps=execution.steps,
        rule_counts=counts,
        w24=w24,
        w135=w135,
        longest_w135_run=longest,
    )
