"""Analysis utilities: statistics, scaling fits, rule censuses, trace tables.

* :mod:`repro.analysis.statistics` — summary statistics with confidence
  intervals (numpy-backed).
* :mod:`repro.analysis.scaling` — log-log power-law fits for the
  convergence-time-vs-n study (Theorem 2's O(n^2)).
* :mod:`repro.analysis.census` — Lemma 5 / Lemma 8 rule-execution censuses
  (W135/W24 bookkeeping, 3n-run bound checks).
* :mod:`repro.analysis.tracefmt` — Figure-1/4-style execution tables.
* :mod:`repro.analysis.rounds` — round-complexity accounting (ext2).
* :mod:`repro.analysis.superstabilization` — single-fault recovery and
  safety-predicate studies (ext1).
* :mod:`repro.analysis.service` — critical-section service fairness (ext3).
* :mod:`repro.analysis.profiling` — stopwatches, repeat timing and cProfile
  hotspot extraction (the measure-before-optimizing workflow).
* :mod:`repro.analysis.fairness` — schedule starvation analysis (how unfair
  was the daemon, really).
* :mod:`repro.analysis.distributions` — two-sample statistical tests for
  comparing step/time distributions (scipy).
"""

from repro.analysis.statistics import Summary, summarize
from repro.analysis.scaling import PowerLawFit, fit_power_law
from repro.analysis.census import CensusReport, census_execution
from repro.analysis.tracefmt import format_trace, format_token_movement
from repro.analysis.rounds import RoundCounter, measure_rounds
from repro.analysis.superstabilization import (
    SuperstabilizationReport,
    study_single_fault,
)
from repro.analysis.service import ServiceMonitor, service_report, jain_fairness
from repro.analysis.profiling import Stopwatch, time_callable, profile_callable
from repro.analysis.fairness import FairnessReport, starvation_report
from repro.analysis.distributions import (
    DistributionComparison,
    compare_distributions,
    effect_size,
)

__all__ = [
    "Summary",
    "summarize",
    "PowerLawFit",
    "fit_power_law",
    "CensusReport",
    "census_execution",
    "format_trace",
    "format_token_movement",
    "RoundCounter",
    "measure_rounds",
    "SuperstabilizationReport",
    "study_single_fault",
    "ServiceMonitor",
    "service_report",
    "jain_fairness",
    "Stopwatch",
    "time_callable",
    "profile_callable",
    "FairnessReport",
    "starvation_report",
    "DistributionComparison",
    "compare_distributions",
    "effect_size",
]
