"""Empirical superstabilization study (paper section 1.2's related work).

A *superstabilizing* algorithm is self-stabilizing and additionally keeps a
safety predicate while recovering from a single transient fault applied to a
legitimate configuration (references [4, 15] of the paper; the paper lists
replacing Dijkstra's ring with a superstabilizing one as future work).

SSRmin is not claimed superstabilizing, but its single-fault behaviour is
interesting empirically: does the mutual-inclusion predicate ">= 1 token"
survive a one-process corruption?  :func:`study_single_fault` measures, over
many random (legitimate configuration, fault, schedule) triples:

* whether the ">= 1 privileged process" passive safety predicate held at
  every configuration during recovery;
* the recovery length in steps;
* the largest transient token count observed (burst above the 1..2 band).

The ``ext1`` experiment reports the resulting table — an honest
*beyond-paper* data point rather than a claimed theorem.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.ssrmin import SSRmin
from repro.daemons.base import Daemon
from repro.simulation.initial import perturbed_legitimate


@dataclass
class SingleFaultRecord:
    """One single-fault recovery trial."""

    recovery_steps: int
    safety_held: bool
    max_token_count: int
    min_token_count: int


@dataclass
class SuperstabilizationReport:
    """Aggregate over all trials of :func:`study_single_fault`."""

    records: List[SingleFaultRecord]

    @property
    def trials(self) -> int:
        return len(self.records)

    @property
    def safety_fraction(self) -> float:
        """Fraction of trials where >= 1 token held throughout recovery."""
        return sum(r.safety_held for r in self.records) / self.trials

    @property
    def max_recovery(self) -> int:
        return max(r.recovery_steps for r in self.records)

    @property
    def mean_recovery(self) -> float:
        return sum(r.recovery_steps for r in self.records) / self.trials

    @property
    def worst_burst(self) -> int:
        """Largest transient token count seen across all trials."""
        return max(r.max_token_count for r in self.records)


def study_single_fault(
    algorithm: SSRmin,
    daemon_factory,
    trials: int,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> SuperstabilizationReport:
    """Measure single-fault recoveries.

    Parameters
    ----------
    algorithm:
        The SSRmin instance under study.
    daemon_factory:
        ``(algorithm, trial_seed) -> Daemon``.
    trials:
        Number of (legitimate config, fault, schedule) samples.
    seed:
        Master seed.
    max_steps:
        Per-trial recovery budget (default: the Theorem-2 regime).
    """
    n = algorithm.n
    budget = max_steps if max_steps is not None else 60 * n * n + 600
    records: List[SingleFaultRecord] = []
    for t in range(trials):
        rng = random.Random(seed + t)
        config = perturbed_legitimate(algorithm, rng, faults=1)
        daemon: Daemon = daemon_factory(algorithm, seed + t)
        daemon.reset()

        lo = hi = len(algorithm.privileged(config))
        steps = 0
        while steps < budget and not algorithm.is_legitimate(config):
            enabled = algorithm.enabled_processes(config)
            if not enabled:
                raise RuntimeError("deadlock during single-fault recovery")
            config = algorithm.step(
                config, daemon.select(enabled, config, steps)
            )
            steps += 1
            count = len(algorithm.privileged(config))
            lo = min(lo, count)
            hi = max(hi, count)
        if not algorithm.is_legitimate(config):
            raise RuntimeError(f"trial {t} exhausted the recovery budget")
        records.append(
            SingleFaultRecord(
                recovery_steps=steps,
                safety_held=lo >= 1,
                max_token_count=hi,
                min_token_count=lo,
            )
        )
    return SuperstabilizationReport(records=records)
