"""Handover extraction and gracefulness checking.

A *handover* is the transfer of monitoring duty from one node to the next.
On a token timeline it shows up as the holder set changing from ``{i}`` to
``{i, j}`` (overlap begins) and then to ``{j}`` (old holder retires).  The
handover is **graceful** iff coverage never drops to zero in between — in
timeline terms, there is no change-point with an empty holder set inside the
transfer window.

Dijkstra's transformed SSToken produces *abrupt* handovers (``{i}`` ->
``{}`` -> ``{j}``); SSRmin produces graceful ones (``{i}`` -> ``{i, j}`` ->
``{j}``).  :func:`extract_handovers` classifies every duty transfer on a
timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.messagepassing.timeline import TokenTimeline


@dataclass(frozen=True)
class HandoverEvent:
    """One transfer of monitoring duty.

    Attributes
    ----------
    start, end:
        Simulation-time bounds of the transfer window: from the last instant
        the outgoing holder set was stable to the first instant the incoming
        set is stable.
    from_holders, to_holders:
        Stable holder sets before and after.
    graceful:
        Whether coverage stayed >= 1 throughout the window.
    gap:
        Total uncovered time inside the window (0 for graceful handovers).
    """

    start: float
    end: float
    from_holders: Tuple[int, ...]
    to_holders: Tuple[int, ...]
    graceful: bool
    gap: float


def extract_handovers(timeline: TokenTimeline) -> List[HandoverEvent]:
    """Classify every duty transfer on a finished timeline.

    A transfer is the span between two maximal single-holder (or stable
    multi-holder) periods with different holder sets; intermediate
    change-points (overlaps or gaps) belong to the transfer window.
    """
    intervals = timeline.intervals()
    if not intervals:
        return []

    # Identify "stable" anchor intervals: non-empty holder sets.  Everything
    # between consecutive anchors with different sets is a transfer window.
    anchors = [
        (a, b, h) for a, b, h in intervals if h
    ]
    out: List[HandoverEvent] = []
    for (a1, b1, h1), (a2, b2, h2) in zip(anchors, anchors[1:]):
        if h1 == h2:
            continue
        window = [
            (a, b, h) for a, b, h in intervals if a >= b1 and b <= a2
        ]
        gap = sum(b - a for a, b, h in window if not h)
        out.append(
            HandoverEvent(
                start=b1,
                end=a2,
                from_holders=h1,
                to_holders=h2,
                graceful=gap == 0.0,
                gap=gap,
            )
        )
    return out


def all_graceful(timeline: TokenTimeline) -> bool:
    """Whether every handover on the timeline was graceful."""
    return all(h.graceful for h in extract_handovers(timeline))


def handover_stats(timeline: TokenTimeline) -> dict:
    """Counts and gap statistics over all handovers (bench table row)."""
    events = extract_handovers(timeline)
    graceful = [e for e in events if e.graceful]
    return {
        "handovers": len(events),
        "graceful": len(graceful),
        "abrupt": len(events) - len(graceful),
        "total_gap": sum(e.gap for e in events),
        "max_gap": max((e.gap for e in events), default=0.0),
    }
