"""Application layer: the paper's motivating self-organizing camera network.

Section 1.1: nodes carry cameras; a node in the critical section (holding a
token) actively monitors, others sleep and recharge.  Mutual inclusion
guarantees *continuous observation* — no instant without an active camera —
and graceful handover means activity overlaps during transfer.

* :mod:`repro.apps.monitoring` — couples a CST network to camera activity
  and measures observation coverage;
* :mod:`repro.apps.energy` — battery/harvesting model quantifying the
  energy saving of "few active nodes" vs "all nodes always on";
* :mod:`repro.apps.handover` — extracts handover events from token
  timelines and verifies each handover is *graceful* (overlapping activity);
* :mod:`repro.apps.mutex` — a callback-based critical-section *service* API
  (enter/exit notifications, session logs) over the transformed network.
"""

from repro.apps.monitoring import CameraNetwork, MonitoringReport
from repro.apps.energy import (
    EnergyModel,
    EnergyReport,
    constant_harvest,
    diurnal_harvest,
)
from repro.apps.handover import HandoverEvent, extract_handovers, all_graceful
from repro.apps.mutex import CriticalSectionService, Session

__all__ = [
    "CameraNetwork",
    "MonitoringReport",
    "EnergyModel",
    "EnergyReport",
    "constant_harvest",
    "diurnal_harvest",
    "HandoverEvent",
    "extract_handovers",
    "all_graceful",
    "CriticalSectionService",
    "Session",
]
