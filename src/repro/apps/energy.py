"""Energy accounting for the monitoring network.

Each node draws ``active_power`` while monitoring (holding a token) and
``idle_power`` otherwise, and harvests ``harvest_rate`` continuously (solar
or other energy harvesting — section 1.1).  The model integrates these over
a token timeline to give per-node battery trajectories and the system-wide
saving versus the all-always-on baseline.

The interesting regime is ``harvest_rate`` between ``idle_power`` and
``active_power / n + idle_power``: always-on nodes drain, while
token-rotating nodes are sustainable because each is active only ~1/n of the
time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.messagepassing.timeline import TokenTimeline

#: A time-varying harvest rate: simulation time -> power.
HarvestProfile = Callable[[float], float]


def constant_harvest(rate: float) -> HarvestProfile:
    """A flat harvest profile (the default model's behaviour)."""
    if rate < 0:
        raise ValueError(f"harvest rate must be >= 0, got {rate}")
    return lambda t: rate


def diurnal_harvest(
    peak: float, day_length: float, sunrise: float = 0.0
) -> HarvestProfile:
    """A solar day/night cycle: half-sine during daylight, zero at night.

    Parameters
    ----------
    peak:
        Harvest rate at solar noon.
    day_length:
        Length of one full day-night period; daylight occupies the first
        half of each period after ``sunrise``.
    sunrise:
        Phase offset of the first sunrise.
    """
    if peak < 0 or day_length <= 0:
        raise ValueError("need peak >= 0 and day_length > 0")

    def profile(t: float) -> float:
        phase = ((t - sunrise) % day_length) / day_length
        if phase < 0.5:  # daylight half
            return peak * math.sin(math.pi * (phase / 0.5))
        return 0.0

    return profile


@dataclass(frozen=True)
class EnergyModel:
    """Power-draw parameters (arbitrary consistent units, e.g. mW / mWh).

    Attributes
    ----------
    active_power:
        Draw while monitoring (camera + radio).
    idle_power:
        Draw while sleeping.
    harvest_rate:
        Continuous recharge rate.
    capacity:
        Battery capacity (charge clamps to ``[0, capacity]``).
    initial_charge:
        Starting charge of every node.
    """

    active_power: float = 10.0
    idle_power: float = 0.5
    harvest_rate: float = 3.0
    capacity: float = 100.0
    initial_charge: float = 50.0

    def __post_init__(self) -> None:
        if self.active_power < 0 or self.idle_power < 0 or self.harvest_rate < 0:
            raise ValueError("power values must be non-negative")
        if not 0 <= self.initial_charge <= self.capacity:
            raise ValueError("initial_charge must lie within capacity")


@dataclass
class EnergyReport:
    """Result of integrating an :class:`EnergyModel` over a timeline.

    Attributes
    ----------
    final_charge:
        Per-node battery level at the end.
    min_charge:
        Per-node minimum over the run (0 means the node browned out).
    active_time:
        Per-node total monitoring time.
    duty_cycle:
        Per-node fraction of time active.
    baseline_energy:
        Energy the all-always-on fleet would have drawn (no harvesting).
    actual_energy:
        Energy actually drawn by the rotating fleet.
    """

    final_charge: List[float]
    min_charge: List[float]
    active_time: List[float]
    duty_cycle: List[float]
    baseline_energy: float
    actual_energy: float

    @property
    def saving_factor(self) -> float:
        """baseline / actual draw — the headline energy win of rotation."""
        return (
            self.baseline_energy / self.actual_energy
            if self.actual_energy > 0
            else float("inf")
        )

    @property
    def sustainable(self) -> bool:
        """Whether no node ever hit an empty battery."""
        return all(c > 0 for c in self.min_charge)


def integrate_energy(
    model: EnergyModel,
    timeline: TokenTimeline,
    n: int,
    harvest_profile: Optional[HarvestProfile] = None,
    max_slice: float = 1.0,
) -> EnergyReport:
    """Integrate battery trajectories over a finished token timeline.

    Parameters
    ----------
    harvest_profile:
        Optional time-varying harvest rate (e.g. :func:`diurnal_harvest`)
        overriding the model's constant ``harvest_rate``.
    max_slice:
        With a time-varying profile, intervals are subdivided to at most
        this width so the profile is sampled densely (midpoint rule).
    """
    intervals = timeline.intervals()
    if not intervals:
        raise ValueError("timeline has no intervals; run the network first")
    start_time = intervals[0][0]
    end_time = intervals[-1][1]
    duration = end_time - start_time

    charge = np.full(n, model.initial_charge, dtype=float)
    min_charge = charge.copy()
    active_time = np.zeros(n, dtype=float)
    drawn = 0.0

    for a, b, holders in intervals:
        if b <= a:
            continue
        active = np.zeros(n, dtype=bool)
        for h in holders:
            active[h] = True
        power = np.where(active, model.active_power, model.idle_power)
        # Subdivide only when the harvest rate varies over time.
        if harvest_profile is None:
            slices = [(a, b)]
        else:
            count = max(1, int(math.ceil((b - a) / max_slice)))
            edges = np.linspace(a, b, count + 1)
            slices = list(zip(edges[:-1], edges[1:]))
        for sa, sb in slices:
            dt = sb - sa
            rate = (
                model.harvest_rate
                if harvest_profile is None
                else harvest_profile((sa + sb) / 2.0)
            )
            drawn += float(power.sum()) * dt
            delta = (rate - power) * dt
            charge = np.clip(charge + delta, 0.0, model.capacity)
            min_charge = np.minimum(min_charge, charge)
        active_time += active * (b - a)

    baseline = model.active_power * n * duration
    return EnergyReport(
        final_charge=charge.tolist(),
        min_charge=min_charge.tolist(),
        active_time=active_time.tolist(),
        duty_cycle=(active_time / duration).tolist() if duration > 0 else [0.0] * n,
        baseline_energy=baseline,
        actual_energy=drawn,
    )
