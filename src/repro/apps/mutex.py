"""A critical-section *service* API over the token ring.

The library's lower layers expose token predicates; applications want a
callback interface: "tell me when I may start my privileged work and when I
must have stopped".  :class:`CriticalSectionService` provides exactly that
over a running :class:`~repro.messagepassing.network.MessagePassingNetwork`:

* ``on_enter(node_index, time)`` fires when a node's own-view token
  predicate turns true (the node becomes privileged — in the camera
  application: starts recording);
* ``on_exit(node_index, time)`` fires when it turns false.

The service also accumulates per-node session logs (enter/exit pairs), from
which it derives occupancy statistics.  It is deliberately thin: all
guarantees come from the algorithm underneath — with SSRmin, sessions at
consecutive holders overlap (graceful handover), so a camera driver that
records exactly during its sessions never leaves the scene unobserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.messagepassing.network import MessagePassingNetwork


@dataclass
class Session:
    """One privileged period of one node."""

    node: int
    start: float
    end: Optional[float] = None

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError("session still open")
        return self.end - self.start


@dataclass
class CriticalSectionService:
    """Callback-based critical-section service over a CST network.

    Parameters
    ----------
    network:
        A built (not necessarily started) message-passing network.
    on_enter, on_exit:
        Optional callbacks ``(node_index, simulation_time)``.
    """

    network: MessagePassingNetwork
    on_enter: Optional[Callable[[int, float], None]] = None
    on_exit: Optional[Callable[[int, float], None]] = None
    #: Closed and open sessions per node, in time order.
    sessions: Dict[int, List[Session]] = field(default_factory=dict)
    _holding: Dict[int, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.network.algorithm.n
        self.sessions = {i: [] for i in range(n)}
        self._holding = {i: False for i in range(n)}
        self.network.observers.append(self._observe)

    def _observe(self, network: MessagePassingNetwork) -> None:
        now = network.queue.now
        holders = set(network.token_holders())
        for i, was in self._holding.items():
            is_now = i in holders
            if is_now and not was:
                self.sessions[i].append(Session(node=i, start=now))
                if self.on_enter is not None:
                    self.on_enter(i, now)
            elif was and not is_now:
                self.sessions[i][-1].end = now
                if self.on_exit is not None:
                    self.on_exit(i, now)
            self._holding[i] = is_now

    # -- statistics --------------------------------------------------------
    def closed_sessions(self) -> List[Session]:
        """All completed sessions across nodes, by start time."""
        out = [s for per in self.sessions.values() for s in per if not s.open]
        return sorted(out, key=lambda s: s.start)

    def session_counts(self) -> Dict[int, int]:
        """Completed sessions per node."""
        return {
            i: sum(1 for s in per if not s.open)
            for i, per in self.sessions.items()
        }

    def occupancy(self, i: int) -> float:
        """Total completed privileged time of node ``i``."""
        return sum(s.duration for s in self.sessions[i] if not s.open)

    def overlapping_handover_fraction(self) -> float:
        """Fraction of session transitions that overlap in time.

        For each closed session, checks whether another node's session was
        open at its end instant — SSRmin's graceful handover makes this 1.0;
        transformed SSToken would score 0.
        """
        closed = self.closed_sessions()
        if not closed:
            return 1.0
        transitions = 0
        overlapped = 0
        for s in closed:
            others = [
                o
                for per in self.sessions.values()
                for o in per
                if o is not s
            ]
            covered = any(
                o.start <= s.end and (o.open or o.end > s.end) for o in others
            )
            transitions += 1
            overlapped += covered
        return overlapped / transitions
