"""The self-organizing multi-node security-camera system (section 1.1).

:class:`CameraNetwork` deploys SSRmin over the CST message-passing substrate
and interprets token holding as *actively monitoring*.  It reports the three
quantities the motivation cares about:

* **coverage** — fraction of time at least one camera is active (the paper's
  design goal is exactly 1.0 after stabilization);
* **handover gracefulness** — every duty transfer keeps coverage;
* **energy** — battery trajectories under an :class:`EnergyModel`, showing
  rotation is sustainable where always-on is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.energy import EnergyModel, EnergyReport, integrate_energy
from repro.apps.handover import extract_handovers, handover_stats
from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed, transformed_from_chaos
from repro.messagepassing.links import DelayModel
from repro.messagepassing.network import MessagePassingNetwork


@dataclass
class MonitoringReport:
    """What the camera deployment delivered over a run.

    Attributes
    ----------
    duration:
        Simulated time.
    coverage:
        Fraction of time with >= 1 active camera (post-warmup).
    min_active, max_active:
        Bounds on simultaneously active cameras (post-warmup).
    handovers, graceful_handovers:
        Duty transfers and how many kept coverage.
    energy:
        Battery report, when an energy model was supplied.
    """

    duration: float
    coverage: float
    min_active: int
    max_active: int
    handovers: int
    graceful_handovers: int
    energy: Optional[EnergyReport]

    @property
    def continuous_observation(self) -> bool:
        """The headline guarantee: no instant without an active camera."""
        return self.coverage == 1.0 and self.min_active >= 1


class CameraNetwork:
    """An SSRmin-driven camera ring over message passing.

    Parameters
    ----------
    n:
        Number of camera nodes (>= 3).
    K:
        SSRmin counter modulus (default ``n + 1``).
    delay_model, loss_probability, timer_interval, seed:
        Passed through to the CST network builder.
    start_clean:
        ``True`` starts legitimate + cache-coherent (normal boot); ``False``
        starts from arbitrary states and caches (post-fault boot) — coverage
        is then only guaranteed after self-stabilization, which the report's
        warmup handling reflects.
    """

    def __init__(
        self,
        n: int,
        K: Optional[int] = None,
        *,
        delay_model: Optional[DelayModel] = None,
        loss_probability: float = 0.0,
        timer_interval: float = 5.0,
        seed: int = 0,
        start_clean: bool = True,
    ):
        self.algorithm = SSRmin(n, K)
        if start_clean:
            self.network: MessagePassingNetwork = transformed(
                self.algorithm,
                delay_model=delay_model,
                loss_probability=loss_probability,
                timer_interval=timer_interval,
                seed=seed,
            )
        else:
            self.network = transformed_from_chaos(
                self.algorithm,
                delay_model=delay_model,
                loss_probability=loss_probability,
                timer_interval=timer_interval,
                seed=seed,
            )
        self.start_clean = start_clean

    def active_cameras(self) -> tuple:
        """Currently monitoring nodes (own-view token holders)."""
        return self.network.token_holders()

    def run(
        self,
        duration: float,
        energy_model: Optional[EnergyModel] = None,
        warmup: float = 0.0,
    ) -> MonitoringReport:
        """Simulate ``duration`` time units and report.

        ``warmup`` excludes the initial stabilization period from coverage
        statistics (use > 0 with ``start_clean=False``).
        """
        self.network.run(duration)
        timeline = self.network.timeline
        lo, hi = timeline.count_bounds(from_time=warmup)
        stats = handover_stats(timeline)
        energy = (
            integrate_energy(energy_model, timeline, self.algorithm.n)
            if energy_model is not None
            else None
        )
        return MonitoringReport(
            duration=duration,
            coverage=timeline.coverage_fraction(from_time=warmup),
            min_active=lo,
            max_active=hi,
            handovers=stats["handovers"],
            graceful_handovers=stats["graceful"],
            energy=energy,
        )
