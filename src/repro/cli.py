"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``list`` — list the registered experiments;
* ``run <id> [...]`` — run experiments and print their tables; each run
  writes a reproducibility manifest + JSONL event trace under
  ``runs/<id>/`` (``--no-telemetry`` to skip);
* ``report [-o PATH]`` — run everything and write EXPERIMENTS.md;
* ``stats <trace.jsonl | manifest.json>`` — replay a telemetry artifact
  and print its metrics summary;
* ``demo`` — a 30-second terminal demo: the inchworm trace (Figure 4) and a
  message-passing timeline strip chart (Figure 13);
* ``fuzz run|shrink|replay|seed-corpus`` — the conformance harness: seeded
  differential fuzz campaigns across the reference engine, fastpath kernels
  and the CST projection, witness minimization, and corpus replay
  (see ``docs/TESTING.md``);
* ``top`` — live terminal dashboard over an in-process ring fleet
  (curses, or ``--plain`` frames for pipes);
* ``fleet run|status`` — N concurrent rings multiplexed over a shared
  UDP socket pool (binary wire fastpath, optional worker-process
  sharding, optional load generation; see ``docs/RUNTIME.md``);
* ``sweep run|resume|status|report`` — resumable phase-diagram sweeps
  (batched cells through the unified kernel layer; see
  ``docs/PERFORMANCE.md``);
* ``runs list|show|query|backfill`` — the persistent sqlite run store;
* ``slo report`` — paper-grounded service-level objectives graded against
  the store (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import list_experiments

    for eid in list_experiments():
        print(eid)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    engine = getattr(args, "engine", None)
    if engine is not None:
        # Pin the message-passing engine for every experiment in this
        # invocation; the choice is recorded in each run manifest.
        from repro.messagepassing.fastpath import mp_fastpath_override

        engine_ctx = lambda: mp_fastpath_override(engine == "fast")
    else:
        engine_ctx = nullcontext
    extra = {"mp_engine": engine} if engine is not None else None

    failures = 0
    for eid in args.ids:
        if args.no_telemetry:
            from repro.experiments import run_experiment

            with engine_ctx():
                result = run_experiment(eid, fast=args.fast)
        else:
            from repro.experiments.registry import run_experiment_instrumented

            with engine_ctx():
                result, run_dir = run_experiment_instrumented(
                    eid, fast=args.fast, outdir=args.telemetry_dir,
                    trace=not args.no_trace, extra=extra,
                )
        print(result.render())
        if not args.no_telemetry:
            artifacts = "manifest.json" + (
                "" if args.no_trace else ", trace.jsonl")
            print(f"telemetry: {run_dir}/ ({artifacts})")
        print()
        if not result.match:
            failures += 1
    return 1 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    text = generate_report(path=args.output, fast=args.fast, verbose=True,
                           workers=args.parallel,
                           telemetry_dir=args.telemetry_dir,
                           trace=args.trace,
                           live_progress=args.live_progress)
    if args.output:
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import TraceStats, manifest_summary, read_manifest

    try:
        if args.trace.endswith(".json"):
            manifest = read_manifest(args.trace)
            for line in manifest_summary(manifest):
                print(line)
            return 0
        stats = TraceStats.from_file(args.trace)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc.strerror or exc}",
              file=sys.stderr)
        return 1
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {args.trace}: {exc}", file=sys.stderr)
        return 1
    print(stats.render())
    return 0 if stats.seq_monotonic else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.ssrmin import SSRmin
    from repro.algorithms.dijkstra import DijkstraKState
    from repro.algorithms.dijkstra_four_state import DijkstraFourState
    from repro.verification import TransitionSystem, check_self_stabilization

    if args.algorithm == "ssrmin":
        alg = SSRmin(args.n, args.K, allow_small_k=True) \
            if args.K and args.K <= args.n else SSRmin(args.n, args.K)
    elif args.algorithm == "dijkstra":
        alg = DijkstraKState(args.n, args.K, allow_small_k=True) \
            if args.K and args.K <= args.n else DijkstraKState(args.n, args.K)
    elif args.algorithm == "four-state":
        alg = DijkstraFourState(args.n)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.algorithm)

    ts = TransitionSystem(alg, daemon=args.daemon)
    print(
        f"exhaustively checking {args.algorithm} "
        f"(n={args.n}{f', K={alg.K}' if hasattr(alg, 'K') else ''}) "
        f"under the {args.daemon} daemon ..."
    )
    report = check_self_stabilization(ts)
    print(report.summary())
    return 0 if report.self_stabilizing else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.ssrmin import SSRmin
    from repro.experiments.runners_figures import _canonical_execution
    from repro.analysis.tracefmt import format_trace
    from repro.messagepassing.cst import transformed
    from repro.messagepassing.links import UniformDelay
    from repro.viz.ascii import render_timeline

    print("SSRmin inchworm on 5 processes (Figure 4):\n")
    alg = SSRmin(5, 6)
    result = _canonical_execution(alg, x=3, steps=15)
    print(format_trace(alg, result.execution))

    print("\nMessage-passing execution, own-view token holding (Figure 13):\n")
    net = transformed(alg, seed=13, delay_model=UniformDelay(0.5, 1.5))
    net.run(60.0)
    print(render_timeline(net.timeline, alg.n, columns=72))
    print(
        "\nEvery column has >= 1 holder: the graceful-handover guarantee "
        "(Theorem 3)."
    )
    return 0


def _live_common_kwargs(args: argparse.Namespace) -> dict:
    return dict(
        algorithm=args.algorithm,
        n=args.n,
        K=args.K,
        transport=args.transport,
        seed=args.seed,
        timer_interval=args.timer_interval,
        initial=args.initial,
        stabilize_timeout=args.stabilize_timeout,
        wire=args.wire,
        use_uvloop=not args.no_uvloop,
    )


def _live_finish(args: argparse.Namespace, report: dict, run_id: str,
                 command: str) -> int:
    """Shared tail of `live run|chaos`: manifest + summary + exit code."""
    import os

    from repro.runtime import render_live_report

    if not args.no_telemetry:
        from repro.telemetry import build_manifest, write_manifest

        run_dir = os.path.join(args.telemetry_dir, run_id)
        os.makedirs(run_dir, exist_ok=True)
        manifest = build_manifest(
            args._session,
            experiment_id=run_id,
            command=command,
            trace_file=None,
            extra={"live": report},
        )
        write_manifest(os.path.join(run_dir, "manifest.json"), manifest)
        print(f"telemetry: {run_dir}/ (manifest.json)")
        if not getattr(args, "no_store", True):
            print(f"run store: {args.store} (run {run_id})")
    for line in render_live_report(report):
        print(line)
    health = report.get("health", {})
    ok = bool(health.get("stabilized")) and not any(
        v.get("epoch_index") == len(health.get("epochs", [])) - 1
        for v in health.get("guarantee_violations", [])
    )
    print("result: " + ("HEALTHY" if ok else "UNHEALTHY"))
    return 0 if ok else 1


def _with_live_session(args: argparse.Namespace, fn,
                       run_id: Optional[str] = None) -> int:
    """Run ``fn()`` (run + finish) under a telemetry session unless disabled.

    Unless ``--no-store`` was given, a
    :class:`~repro.observability.ingest.StoreSubscriber` rides along
    (``detail=False``, so the engines keep their batched hot loop) and
    persists the run to the sqlite store at ``--store``.
    """
    if args.no_telemetry:
        args._session = None
        return fn()
    from repro.telemetry import telemetry_session

    with telemetry_session() as tel:
        args._session = tel
        store = None
        subscriber = None
        if not getattr(args, "no_store", True):
            from repro.observability import RunStore, StoreSubscriber

            store = RunStore(args.store)
            subscriber = StoreSubscriber(
                store, run_id=run_id, session=tel, source="live"
            )
            tel.subscribe(subscriber, detail=False)
        try:
            return fn()
        finally:
            if subscriber is not None:
                subscriber.close()
            if store is not None:
                store.close()


def _cmd_live_run(args: argparse.Namespace) -> int:
    from repro.runtime import live_run

    if getattr(args, "rings", 1) > 1:
        # Multi-ring deployments are fleet deployments: same flags, but
        # the rings share a socket pool and report in aggregate.
        args.workers = 1
        args.sockets = 1
        args.fleet_transport = (
            "loopback" if args.transport == "loopback" else "mux-udp"
        )
        args.load_rate = 0.0
        args.script = None
        args.no_batch = args.transport != "udp-batch"
        return _cmd_fleet_run(args)

    run_id = f"live-run-{args.algorithm}-n{args.n}-seed{args.seed}"
    command = (
        f"repro live run --algorithm {args.algorithm} --n {args.n} "
        f"--transport {args.transport} --seed {args.seed} "
        f"--duration {args.duration}"
    )

    def go() -> int:
        report = live_run(duration=args.duration, **_live_common_kwargs(args))
        return _live_finish(args, report, run_id, command)

    return _with_live_session(args, go, run_id=run_id)


def _cmd_live_chaos(args: argparse.Namespace) -> int:
    from repro.runtime import live_chaos

    run_id = (
        f"live-chaos-{args.script}-{args.algorithm}-n{args.n}-seed{args.seed}"
    )
    command = (
        f"repro live chaos --script {args.script} --algorithm "
        f"{args.algorithm} --n {args.n} --transport {args.transport} "
        f"--seed {args.seed}"
    )

    def go() -> int:
        report = live_chaos(
            script=args.script,
            extra_duration=args.duration,
            **_live_common_kwargs(args),
        )
        return _live_finish(args, report, run_id, command)

    return _with_live_session(args, go, run_id=run_id)


def _read_live_manifests(telemetry_dir: str):
    """Yield ``(path, manifest_or_None)`` for recorded live runs."""
    import glob
    import os

    from repro.telemetry import read_manifest

    pattern = os.path.join(telemetry_dir, "live-*", "manifest.json")
    for path in sorted(glob.glob(pattern)):
        try:
            yield path, read_manifest(path)
        except (OSError, ValueError):
            yield path, None


def _cmd_live_status(args: argparse.Namespace) -> int:
    import time

    if args.watch:
        # Same per-ring rows as ``repro top``, rebuilt from the recorded
        # manifests every interval (shared renderer; see dashboard.py).
        from repro.observability import RingRow, render_rows

        iterations = args.iterations
        frame = 0
        while True:
            rows = []
            for path, manifest in _read_live_manifests(args.telemetry_dir):
                if manifest is None:
                    rows.append(RingRow(name=f"?? {path}", status="UNREADABLE"))
                    continue
                live = (manifest.get("extra") or {}).get("live", {})
                rows.append(RingRow.from_live_report(
                    str(manifest.get("experiment_id")), live))
            frame += 1
            print(f"live status — frame {frame} ({len(rows)} runs)")
            for line in render_rows(rows):
                print(line)
            print()
            if iterations is not None and frame >= iterations:
                return 0 if rows else 1
            time.sleep(args.interval)

    entries = list(_read_live_manifests(args.telemetry_dir))
    if not entries:
        print(f"no live run manifests under {args.telemetry_dir}/live-*/")
        return 1
    failures = 0
    for path, manifest in entries:
        if manifest is None:
            print(f"??   {path}: unreadable")
            failures += 1
            continue
        live = (manifest.get("extra") or {}).get("live", {})
        health = live.get("health", {})
        ok = bool(health.get("stabilized"))
        ttr = health.get("time_to_restabilize")
        status = "ok" if ok else "FAIL"
        print(
            f"{status:4s} {manifest.get('experiment_id')}: "
            f"{live.get('algorithm')} n={live.get('n')} "
            f"transport={live.get('transport')}"
            + (f" restabilized in {ttr:.3f}s" if ttr is not None else "")
            + f" ({manifest.get('created_utc')})"
        )
        if not ok:
            failures += 1
    return 1 if failures else 0


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.runtime import (
        default_specs, render_fleet_report, run_fleet, run_fleet_sharded,
    )

    specs = default_specs(
        args.rings,
        algorithm=args.algorithm,
        n=args.n,
        K=args.K,
        wire=args.wire,
        seed=args.seed,
        timer_interval=args.timer_interval,
        script=args.script,
        load_rate=args.load_rate,
    )
    kwargs = dict(
        duration=args.duration,
        transport=getattr(args, "fleet_transport", None) or args.transport,
        sockets=args.sockets,
        batch=not args.no_batch,
        stabilize_timeout=args.stabilize_timeout,
        use_uvloop=not args.no_uvloop,
    )
    if args.workers > 1:
        # Shard workers skip the run store: concurrent sqlite writers
        # would serialize on the database lock and skew the fleet.
        report = run_fleet_sharded(specs, args.workers, **kwargs)
    else:
        store_path = None if getattr(args, "no_store", True) else args.store
        report = run_fleet(specs, store_path=store_path, **kwargs)
        if store_path is not None:
            print(f"run store: {store_path} "
                  f"({args.rings} fleet-* runs recorded)")

    fleet_id = (
        f"fleet-{args.algorithm}-r{args.rings}-n{args.n}-seed{args.seed}"
    )
    if not args.no_telemetry:
        run_dir = os.path.join(args.telemetry_dir, fleet_id)
        os.makedirs(run_dir, exist_ok=True)
        path = os.path.join(run_dir, "fleet.json")
        with open(path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        print(f"telemetry: {run_dir}/ (fleet.json)")
    for line in render_fleet_report(report):
        print(line)
    ok = report["stabilized_rings"] == report["rings"]
    print("result: " + ("HEALTHY" if ok else "UNHEALTHY"))
    return 0 if ok else 1


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import glob
    import json
    import os

    from repro.observability import RingRow, render_rows

    pattern = os.path.join(args.telemetry_dir, "fleet-*", "fleet.json")
    paths = sorted(glob.glob(pattern))
    if not paths:
        print(f"no fleet reports under {args.telemetry_dir}/fleet-*/")
        return 1
    failures = 0
    for path in paths:
        fleet_id = os.path.basename(os.path.dirname(path))
        try:
            with open(path) as fh:
                report = json.load(fh)
        except (OSError, ValueError):
            print(f"??   {fleet_id}: unreadable ({path})")
            failures += 1
            continue
        ok = report.get("stabilized_rings") == report.get("rings")
        print(
            f"{'ok' if ok else 'FAIL':4s} {fleet_id}: "
            f"{report.get('rings')} rings over {report.get('transport')} "
            f"(loop={report.get('loop')}) "
            f"{report.get('delivered_per_sec', 0.0):,.0f} msgs/sec"
        )
        rows = [
            RingRow.from_live_report(name, ring)
            for name, ring in sorted(report.get("ring_reports", {}).items())
        ]
        for line in render_rows(rows):
            print("  " + line)
        if not ok:
            failures += 1
    return 1 if failures else 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.observability import RunStore, TopRingSpec, top_curses, top_plain

    algorithms = (
        ["ssrmin", "dijkstra"] if args.algorithm == "both"
        else [args.algorithm]
    )
    specs = []
    for i in range(args.rings):
        alg = algorithms[i % len(algorithms)]
        specs.append(TopRingSpec(
            name=f"{alg}-{i}",
            algorithm=alg,
            n=args.n,
            K=args.K,
            seed=args.seed + i,
            transport=args.transport,
            timer_interval=args.timer_interval,
            script=args.script,
        ))

    store = None if args.no_store else RunStore(args.store)
    try:
        frontend = top_plain if args.plain or not sys.stdout.isatty() \
            else top_curses
        reports = frontend(
            specs, duration=args.duration, refresh=args.refresh, store=store,
        )
    finally:
        if store is not None:
            store.close()
    failures = sum(
        0 if report.get("health", {}).get("stabilized") else 1
        for report in reports
    )
    if store is not None:
        print(f"run store: {args.store} "
              f"({len(reports)} top-* runs recorded)")
    return 1 if failures else 0


def _open_store(args: argparse.Namespace, missing_ok: bool = False):
    import os

    from repro.observability import RunStore

    if not missing_ok and args.store != ":memory:" \
            and not os.path.exists(args.store):
        print(f"error: no run store at {args.store} "
              f"(record one with 'repro live run' or 'repro runs backfill')",
              file=sys.stderr)
        return None
    return RunStore(args.store)


def _cmd_runs_list(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 1
    with store:
        rows = store.list_runs(
            kind=args.kind, algorithm=args.algorithm, limit=args.limit)
        counts = store.counts()
    for row in rows:
        stabilized = row.get("stabilized")
        status = ("ok" if stabilized else
                  "FAIL" if stabilized is not None else "?")
        ttr = row.get("time_to_restabilize")
        print(
            f"{status:4s} {row['run_id']}: {row.get('kind')} "
            f"{row.get('algorithm') or '?'} n={row.get('n') or '?'} "
            f"vac={row.get('vacancy_instants')} "
            f"viol={row.get('violations')}"
            + (f" ttr={ttr:.3f}s" if ttr is not None else "")
        )
    print(
        f"({counts['runs']} runs, {counts['epochs']} epochs, "
        f"{counts['disturbances']} disturbances, "
        f"{counts['incidents']} incidents, {counts['samples']} samples)"
    )
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    import json

    from repro.observability import render_incidents

    store = _open_store(args)
    if store is None:
        return 1
    with store:
        run = store.get_run(args.run_id)
        if run is None:
            print(f"error: no run {args.run_id!r} in {args.store}",
                  file=sys.stderr)
            return 1
        epochs = store.epochs_for(run["id"])
        disturbances = store.disturbances_for(run["id"])
        incidents = store.incidents(run["id"])
        samples = store.samples_for(run["id"])
    print(f"run {run['run_id']} [{run['kind']}]")
    for key in ("algorithm", "n", "K", "transport", "seed", "source",
                "script", "started_utc", "wall_seconds", "stabilized",
                "vacancy_instants", "violations", "restarts"):
        if run.get(key) is not None:
            print(f"  {key}: {run[key]}")
    print(f"epochs ({len(epochs)}):")
    for epoch in epochs:
        ttr = epoch.get("time_to_stabilize")
        print(
            f"  [{epoch['idx']}] {epoch['label']} ({epoch['class']}) "
            + (f"stabilized in {ttr:.3f}s" if ttr is not None
               else "NOT stabilized")
        )
    if disturbances:
        print(f"disturbances ({len(disturbances)}):")
        for d in disturbances:
            extra = f" {d['params']}" if d.get("params") else ""
            print(f"  @{d['at']:.3f}s {d['kind']} "
                  f"dur={d.get('duration') or 0.0:.2f}s{extra}")
    print(f"incidents ({len(incidents)}):")
    for line in render_incidents(incidents):
        print(line)
    if samples:
        print(f"metric samples ({len(samples)}):")
        for s in samples:
            print(f"  {s['name']} = {s['value']:g}")
    if args.json:
        print(json.dumps(
            {"run": run, "epochs": epochs, "disturbances": disturbances,
             "incidents": incidents, "samples": samples},
            indent=2, default=str))
    return 0


def _cmd_runs_query(args: argparse.Namespace) -> int:
    import json

    store = _open_store(args)
    if store is None:
        return 1
    with store:
        import sqlite3

        try:
            rows = store.query(args.sql)
        except (ValueError, sqlite3.Error) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps(rows, indent=2, default=str))
        return 0
    for row in rows:
        print("  ".join(f"{k}={v}" for k, v in row.items()))
    print(f"({len(rows)} row(s))")
    return 0


def _cmd_runs_backfill(args: argparse.Namespace) -> int:
    from repro.observability import RunStore, backfill_runs

    with RunStore(args.store) as store:
        report = backfill_runs(
            store, base_dir=args.dir, prune_empty=args.prune_empty)
        counts = store.counts()
    print(report.summary())
    for run_id in report.imported:
        print(f"  imported {run_id}")
    for path in report.orphans:
        print(f"  orphan   {path}")
    for path in report.pruned:
        print(f"  pruned   {path}")
    for warning in report.warnings:
        print(f"  warning  {warning}")
    for error in report.errors:
        print(f"  error    {error}")
    print(
        f"store now holds {counts['runs']} runs / {counts['epochs']} epochs "
        f"/ {counts['incidents']} incidents ({args.store})"
    )
    return 1 if report.errors else 0


def _cmd_slo_report(args: argparse.Namespace) -> int:
    import json

    from repro.observability import (
        default_slos, evaluate_slos, load_slo_specs, render_slo_report,
    )

    store = _open_store(args)
    if store is None:
        return 1
    with store:
        specs = load_slo_specs(args.spec) if args.spec else default_slos()
        results = evaluate_slos(
            store, specs, open_incidents=args.open_incidents)
        lines = render_slo_report(store, results)
    if args.json:
        print(json.dumps([r.to_json() for r in results], indent=2))
    else:
        for line in lines:
            print(line)
    return 1 if any(not r.ok for r in results) else 0


def _cmd_chaos_campaign_run(args: argparse.Namespace) -> int:
    import json

    from repro.chaoslab import (
        CampaignSpec, load_campaign_spec, parse_fault_flag,
        render_campaign_report, run_campaign,
    )
    from repro.observability import RunStore

    if bool(args.spec) == bool(args.fault):
        print("error: give exactly one of --spec PATH or --fault TYPE[...]",
              file=sys.stderr)
        return 2
    try:
        if args.spec:
            spec = load_campaign_spec(args.spec)
        else:
            spec = CampaignSpec(
                name=args.name,
                faults=tuple(parse_fault_flag(f) for f in args.fault),
                seeds=tuple(int(s) for s in args.seeds.split(",")),
                algorithm=args.algorithm,
                n=args.n,
                K=args.K,
                transport=args.transport,
                wire=args.wire,
                timer_interval=args.timer_interval,
                budget=args.budget,
                settle=args.settle,
                error_budget=args.error_budget,
            )
    except (ValueError, RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(index, result, done, total):
        verdict = "ok" if result.ok else "FAIL"
        ttr = result.time_to_restabilize
        print(f"  [{done}/{total}] {result.experiment.name}: "
              f"{result.status.value} {verdict}"
              + (f" ttr={ttr:.3f}s" if ttr is not None else ""))

    store = None if args.no_store else RunStore(args.store)
    try:
        print(f"campaign {spec.name}: {spec.cells} cell(s) "
              f"({len(spec.faults)} fault(s) x {len(spec.seeds)} seed(s)), "
              f"workers={args.workers}")
        report = run_campaign(
            spec, store=store, workers=args.workers, on_progress=progress,
        )
    finally:
        if store is not None:
            store.close()
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        for line in render_campaign_report(report):
            print(line)
    if store is not None:
        print(f"run store: {args.store} (campaign {spec.name!r} recorded)")
    return 0 if report["ok"] else 1


def _cmd_chaos_campaign_status(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 1
    with store:
        rows = store.list_campaigns()
    if not rows:
        print("no campaigns recorded "
              "(run one with 'repro chaos campaign run')")
        return 0
    for row in rows:
        cells = row.get("cells") or 0
        done = row.get("completed")
        status = ("pending" if done is None
                  else "completed" if (done + (row.get("aborted") or 0))
                  >= cells else "partial")
        print(
            f"{row['name']}: {status} "
            f"cells={cells} completed={row.get('completed')} "
            f"aborted={row.get('aborted')} breaches={row.get('breaches')}"
            + (f" wall={row['wall_seconds']:.1f}s"
               if row.get("wall_seconds") is not None else "")
            + (f" started={row['started_utc']}"
               if row.get("started_utc") else "")
        )
    return 0


def _cmd_chaos_campaign_report(args: argparse.Namespace) -> int:
    import json

    from repro.chaoslab import build_campaign_report, render_campaign_report

    store = _open_store(args)
    if store is None:
        return 1
    with store:
        try:
            report = build_campaign_report(store, args.name)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        for line in render_campaign_report(report):
            print(line)
    return 0 if report["ok"] else 1


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.verification.conformance import run_campaign

    kwargs = dict(
        seed=args.seed,
        trials=args.trials,
        time_budget=args.time_budget,
        algorithms=tuple(args.algorithms),
        ns=tuple(args.ns),
        daemon_families=tuple(args.daemons),
        fault_ops=args.fault_ops,
        use_cst=not args.no_cst,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus_dir,
        max_divergences=args.max_divergences,
    )
    if args.trials is None and args.time_budget is None:
        kwargs["time_budget"] = 30.0

    if args.no_telemetry:
        result = run_campaign(**kwargs)
    else:
        from repro.telemetry import (
            build_manifest, telemetry_session, write_manifest,
        )

        run_dir = os.path.join(args.telemetry_dir, f"fuzz-seed{args.seed}")
        os.makedirs(run_dir, exist_ok=True)
        trace_path = os.path.join(run_dir, "trace.jsonl")
        with telemetry_session(trace_path=trace_path) as tel:
            result = run_campaign(**kwargs)
        manifest = build_manifest(
            tel,
            experiment_id=f"fuzz-seed{args.seed}",
            command=f"repro fuzz run --seed {args.seed}",
            trace_file=trace_path,
            extra={"campaign": result.to_json()},
        )
        write_manifest(os.path.join(run_dir, "manifest.json"), manifest)
        print(f"telemetry: {run_dir}/ (manifest.json, trace.jsonl)")

    print(result.summary())
    for rec in result.divergences:
        print(f"  trial {rec.trial} [{rec.scenario.algorithm}/"
              f"{rec.scenario.daemon_family}]: "
              f"{rec.divergence['kind']} at step {rec.divergence['step']}")
        if rec.path:
            print(f"    shrunk witness: {rec.path}")
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    return 0 if result.ok else 1


def _cmd_fuzz_shrink(args: argparse.Namespace) -> int:
    from repro.verification.conformance import Witness, shrink_witness

    witness = Witness.load(args.witness)
    try:
        shrunk, stats = shrink_witness(
            witness, max_replays=args.max_replays, use_cst=not args.no_cst
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out = args.output or args.witness
    shrunk.save(out)
    print(stats.summary())
    print(f"wrote {out}")
    return 0


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.verification.conformance import (
        corpus_files, replay_witness_file,
    )
    import os

    paths = []
    for target in args.paths:
        if os.path.isdir(target):
            paths.extend(corpus_files(target))
        else:
            paths.append(target)
    if not paths:
        print("no witness files to replay", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        outcome = replay_witness_file(path, use_cst=not args.no_cst)
        status = "ok" if outcome.ok else "FAIL"
        print(f"{status:4s} {path}: {outcome.message}")
        if not outcome.ok:
            failures += 1
    return 1 if failures else 0


def _cmd_fuzz_seed_corpus(args: argparse.Namespace) -> int:
    from repro.verification.conformance import seed_corpus

    paths = seed_corpus(args.directory, verify=not args.no_verify)
    for path in paths:
        print(f"wrote {path}")
    return 0


def _cmd_bench_mp(args: argparse.Namespace) -> int:
    import json

    from repro.messagepassing.fastpath.bench import (
        check_gates,
        format_report,
        run_mp_bench,
    )

    payload = run_mp_bench(quick=args.quick)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(format_report(payload))
    print(f"artifact       : {args.output}")
    failures = check_gates(
        payload,
        min_mp_speedup=args.min_mp_speedup,
        min_thm4_speedup=args.min_thm4_speedup,
    )
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_bench_runtime(args: argparse.Namespace) -> int:
    import json

    from repro.runtime.bench import (
        check_gates,
        format_report,
        run_runtime_bench,
    )

    payload = run_runtime_bench(quick=args.quick)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(format_report(payload))
    print(f"artifact       : {args.output}")
    failures = check_gates(payload, min_wire_speedup=args.min_wire_speedup)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


def _parse_int_list(text: str) -> tuple:
    """Parse "8,16,32" or "0:8" (half-open range) into a tuple of ints."""
    out = []
    for part in text.split(","):
        part = part.strip()
        if ":" in part:
            lo, hi = part.split(":", 1)
            out.extend(range(int(lo), int(hi)))
        elif part:
            out.append(int(part))
    return tuple(out)


def _parse_float_list(text: str) -> tuple:
    return tuple(float(part) for part in text.split(",") if part.strip())


def _sweep_spec_from_args(args: argparse.Namespace):
    import json

    from repro.sweeps import SweepSpec

    if args.spec:
        with open(args.spec) as fh:
            data = json.load(fh)
        if args.name:
            data["name"] = args.name
        return SweepSpec.from_json(data)
    if not args.name:
        raise ValueError("give --name (or --spec PATH)")
    kwargs = dict(
        name=args.name,
        kind=args.kind,
        algorithm=args.algorithm,
        n_values=_parse_int_list(args.n_values),
        seeds=_parse_int_list(args.seeds),
        max_steps=args.max_steps,
    )
    if args.daemons is not None:
        kwargs["daemons"] = tuple(
            d.strip() for d in args.daemons.split(",") if d.strip())
    if args.loss_rates is not None:
        kwargs["loss_rates"] = _parse_float_list(args.loss_rates)
    if args.delay_scales is not None:
        kwargs["delay_scales"] = _parse_float_list(args.delay_scales)
    if args.duplication_rates is not None:
        kwargs["duplication_rates"] = _parse_float_list(
            args.duplication_rates)
    return SweepSpec(**kwargs)


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    import json

    from repro.sweeps import run_sweep

    try:
        spec = _sweep_spec_from_args(args)
        summary = run_sweep(
            spec,
            base_dir=args.dir,
            run_store=args.store,
            resume=args.resume,
            fresh=args.fresh,
            mode=args.mode,
            workers=args.workers,
            throttle=args.throttle,
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"sweep {summary['name']}: {summary['completed']}/"
            f"{summary['cells']} cells ({summary['ran']} ran, "
            f"{summary['skipped']} resumed) via {summary['mode']} in "
            f"{summary['wall_seconds']:.2f}s"
            + (f" ({summary['cells_per_sec']:.1f} cells/s)"
               if summary["cells_per_sec"] else "")
        )
        print(f"checkpoints: {summary['directory']}")
    return 0 if summary["status"] == "completed" else 1


def _cmd_sweep_resume(args: argparse.Namespace) -> int:
    import json

    from repro.sweeps import resume_sweep

    try:
        summary = resume_sweep(
            args.name,
            base_dir=args.dir,
            run_store=args.store,
            mode=args.mode,
            workers=args.workers,
            throttle=args.throttle,
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"sweep {summary['name']}: {summary['completed']}/"
            f"{summary['cells']} cells ({summary['ran']} ran, "
            f"{summary['skipped']} already done) in "
            f"{summary['wall_seconds']:.2f}s"
        )
    return 0 if summary["status"] == "completed" else 1


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from repro.sweeps import render_status

    store = _open_store(args)
    if store is None:
        return 1
    with store:
        try:
            print(render_status(store, args.name))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 0


def _cmd_sweep_report(args: argparse.Namespace) -> int:
    from repro.sweeps import build_sweep_report, render_report
    from repro.sweeps.report import report_to_json

    store = _open_store(args)
    if store is None:
        return 1
    with store:
        try:
            report = build_sweep_report(store, args.name)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.json:
        print(report_to_json(report))
    else:
        print(render_report(report))
    return 0


def _cmd_bench_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.sweeps.bench import check_gates, format_report, run_sweep_bench

    payload = run_sweep_bench(quick=args.quick)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(format_report(payload))
    print(f"artifact       : {args.output}")
    failures = check_gates(
        payload, min_cell_speedup=args.min_cell_speedup)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


def _store_args(p: argparse.ArgumentParser, toggle: bool = True) -> None:
    """Attach ``--store`` (and for recorders ``--no-store``) to a parser."""
    from repro.observability.store import DEFAULT_STORE_PATH

    p.add_argument("--store", default=DEFAULT_STORE_PATH, metavar="PATH",
                   help="sqlite run store (default: %(default)s)")
    if toggle:
        p.add_argument("--no-store", action="store_true",
                       help="skip recording this run into the store")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSRmin reproduction: experiments, reports and demos",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiment ids")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run experiments by id")
    p_run.add_argument("ids", nargs="+", help="experiment ids (see 'list')")
    p_run.add_argument("--fast", action="store_true", help="reduced trial counts")
    p_run.add_argument("--telemetry-dir", default="runs", metavar="DIR",
                       help="where run manifests/traces land (default runs/)")
    p_run.add_argument("--no-telemetry", action="store_true",
                       help="skip manifest + trace artifacts")
    p_run.add_argument("--no-trace", action="store_true",
                       help="write the manifest but not the JSONL trace")
    p_run.add_argument("--engine", choices=["fast", "reference"], default=None,
                       help="message-passing engine: packed fastpath or "
                            "reference DES (default: ambient "
                            "REPRO_FASTPATH_MP; recorded in the manifest "
                            "when set)")
    p_run.set_defaults(fn=_cmd_run)

    p_report = sub.add_parser("report", help="run everything, write EXPERIMENTS.md")
    p_report.add_argument("-o", "--output", default=None, help="output path")
    p_report.add_argument("--fast", action="store_true", help="reduced trial counts")
    p_report.add_argument("--parallel", type=int, default=1, metavar="N",
                          help="worker processes (default 1)")
    p_report.add_argument("--telemetry-dir", default=None, metavar="DIR",
                          help="also write per-experiment run manifests")
    p_report.add_argument("--trace", action="store_true",
                          help="with --telemetry-dir: also write JSONL traces")
    p_report.add_argument("--live-progress", action="store_true",
                          help="stream steps/sec + token census per experiment")
    p_report.set_defaults(fn=_cmd_report)

    p_stats = sub.add_parser(
        "stats", help="replay a JSONL trace (or manifest) and print metrics"
    )
    p_stats.add_argument("trace", help="path to trace.jsonl or manifest.json")
    p_stats.set_defaults(fn=_cmd_stats)

    p_demo = sub.add_parser("demo", help="terminal demo (trace + timeline)")
    p_demo.set_defaults(fn=_cmd_demo)

    p_verify = sub.add_parser(
        "verify", help="exhaustively model-check a small instance"
    )
    p_verify.add_argument(
        "algorithm", choices=["ssrmin", "dijkstra", "four-state"]
    )
    p_verify.add_argument("-n", type=int, default=3, help="ring size")
    p_verify.add_argument("-K", type=int, default=None,
                          help="counter modulus (ssrmin/dijkstra)")
    p_verify.add_argument("--daemon", choices=["central", "distributed"],
                          default="distributed")
    p_verify.set_defaults(fn=_cmd_verify)

    p_fuzz = sub.add_parser(
        "fuzz", help="conformance harness: fuzz, shrink, replay, seed-corpus"
    )
    fuzz_sub = p_fuzz.add_subparsers(dest="fuzz_command", required=True)

    pf_run = fuzz_sub.add_parser(
        "run", help="run a seeded differential fuzz campaign"
    )
    pf_run.add_argument("--seed", type=int, default=0)
    pf_run.add_argument("--trials", type=int, default=None,
                        help="exact trial count (fully deterministic)")
    pf_run.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock bound (default 30s if no --trials)")
    pf_run.add_argument("--algorithms", nargs="+",
                        default=["ssrmin", "dijkstra"],
                        choices=["ssrmin", "dijkstra"])
    pf_run.add_argument("--ns", nargs="+", type=int,
                        default=[3, 4, 5, 6, 7, 8], metavar="N",
                        help="ring sizes to draw from")
    pf_run.add_argument("--daemons", nargs="+",
                        default=["central", "distributed", "adversarial",
                                 "weighted"],
                        choices=["central", "distributed", "adversarial",
                                 "weighted"])
    pf_run.add_argument("--fault-ops", type=int, default=4,
                        help="max fault-script ops per trial")
    pf_run.add_argument("--no-cst", action="store_true",
                        help="skip the CST projection leg")
    pf_run.add_argument("--no-shrink", action="store_true",
                        help="keep failing witnesses unminimized")
    pf_run.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="write shrunk failing witnesses here")
    pf_run.add_argument("--max-divergences", type=int, default=5)
    pf_run.add_argument("--telemetry-dir", default="runs", metavar="DIR")
    pf_run.add_argument("--no-telemetry", action="store_true")
    pf_run.add_argument("--json", action="store_true",
                        help="also print the JSON campaign summary")
    pf_run.set_defaults(fn=_cmd_fuzz_run)

    pf_shrink = fuzz_sub.add_parser(
        "shrink", help="minimize a failing witness file"
    )
    pf_shrink.add_argument("witness", help="path to a witness .jsonl")
    pf_shrink.add_argument("-o", "--output", default=None,
                           help="output path (default: overwrite input)")
    pf_shrink.add_argument("--max-replays", type=int, default=250)
    pf_shrink.add_argument("--no-cst", action="store_true")
    pf_shrink.set_defaults(fn=_cmd_fuzz_shrink)

    pf_replay = fuzz_sub.add_parser(
        "replay", help="replay witness files / corpus directories"
    )
    pf_replay.add_argument("paths", nargs="+",
                           help="witness .jsonl files or directories")
    pf_replay.add_argument("--no-cst", action="store_true")
    pf_replay.set_defaults(fn=_cmd_fuzz_replay)

    pf_seed = fuzz_sub.add_parser(
        "seed-corpus", help="regenerate the checked-in replay corpus"
    )
    pf_seed.add_argument("directory", nargs="?", default="tests/corpus")
    pf_seed.add_argument("--no-verify", action="store_true")
    pf_seed.set_defaults(fn=_cmd_fuzz_seed_corpus)

    p_bench = sub.add_parser(
        "bench", help="performance benchmarks (JSON artifacts + gates)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    pb_mp = bench_sub.add_parser(
        "mp", help="message-passing fastpath vs reference DES engine"
    )
    pb_mp.add_argument("--quick", action="store_true",
                       help="CI smoke sizes: n=32 DES run, fast-trial thm4")
    pb_mp.add_argument("--output", default="BENCH_perf_mp.json",
                       help="artifact path (default: %(default)s)")
    pb_mp.add_argument("--min-mp-speedup", type=float, default=None,
                       help="fail if the DES single-run speedup is below "
                            "this factor")
    pb_mp.add_argument("--min-thm4-speedup", type=float, default=None,
                       help="fail if the run_thm4 speedup is below this "
                            "factor")
    pb_mp.set_defaults(fn=_cmd_bench_mp)

    pb_runtime = bench_sub.add_parser(
        "runtime", help="live-runtime wire formats + fleet throughput"
    )
    pb_runtime.add_argument("--quick", action="store_true",
                            help="CI smoke sizes: fewer messages, 2-cell "
                                 "fleet grid")
    pb_runtime.add_argument("--output", default="BENCH_perf_runtime.json",
                            help="artifact path (default: %(default)s)")
    pb_runtime.add_argument("--min-wire-speedup", type=float, default=None,
                            help="fail if binary-batched/json delivered "
                                 "msgs/sec is below this factor")
    pb_runtime.set_defaults(fn=_cmd_bench_runtime)

    pb_sweep = bench_sub.add_parser(
        "sweep", help="batched-cell sweep engine vs one-task-per-cell"
    )
    pb_sweep.add_argument("--quick", action="store_true",
                          help="CI smoke sizes: small grid, small fit")
    pb_sweep.add_argument("--output", default="BENCH_perf_sweep.json",
                          help="artifact path (default: %(default)s)")
    pb_sweep.add_argument("--min-cell-speedup", type=float, default=None,
                          help="fail if batched/per-cell cells-per-sec is "
                               "below this factor")
    pb_sweep.set_defaults(fn=_cmd_bench_sweep)

    p_sweep = sub.add_parser(
        "sweep", help="resumable phase-diagram sweeps over the kernel layer"
    )
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)

    def _sweep_exec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dir", default="runs", metavar="DIR",
                       help="checkpoint root (default: %(default)s)")
        p.add_argument("--mode", choices=["auto", "batched", "per-cell"],
                       default="auto",
                       help="cell execution backend (default: %(default)s)")
        p.add_argument("--workers", type=int, default=1,
                       help="per-cell worker processes (default 1)")
        p.add_argument("--throttle", type=float, default=0.0,
                       metavar="SECONDS",
                       help="pause after each cell (pacing knob for "
                            "kill/resume drills)")
        p.add_argument("--json", action="store_true")
        _store_args(p, toggle=False)

    psw_run = sweep_sub.add_parser(
        "run", help="run a phase-diagram grid, checkpointing every cell"
    )
    psw_run.add_argument("--name", default=None, help="sweep name")
    psw_run.add_argument("--spec", default=None, metavar="PATH",
                         help="JSON SweepSpec file (flags override --name)")
    psw_run.add_argument("--kind", choices=["convergence", "des"],
                         default="convergence")
    psw_run.add_argument("--algorithm", choices=["ssrmin", "dijkstra"],
                         default="ssrmin")
    psw_run.add_argument("--n-values", default="8", metavar="N1,N2|LO:HI",
                         help="ring sizes (default %(default)s)")
    psw_run.add_argument("--seeds", default="0:8", metavar="S1,S2|LO:HI",
                         help="seed axis (default %(default)s)")
    psw_run.add_argument("--daemons", default=None,
                         metavar="D1,D2",
                         help="daemon families (convergence): synchronous, "
                              "central, bernoulli:<p>")
    psw_run.add_argument("--loss-rates", default=None, metavar="P1,P2",
                         help="message-loss axis (des)")
    psw_run.add_argument("--delay-scales", default=None, metavar="S1,S2",
                         help="link-delay scale axis (des)")
    psw_run.add_argument("--duplication-rates", default=None,
                         metavar="P1,P2",
                         help="message-duplication axis (des)")
    psw_run.add_argument("--max-steps", type=int, default=0,
                         help="convergence budget override "
                              "(0 = 60n^2+600)")
    psw_run.add_argument("--resume", action="store_true",
                         help="keep checkpointed cells, run the rest")
    psw_run.add_argument("--fresh", action="store_true",
                         help="discard checkpointed cells and restart")
    _sweep_exec_args(psw_run)
    psw_run.set_defaults(fn=_cmd_sweep_run)

    psw_resume = sweep_sub.add_parser(
        "resume", help="resume a named sweep (only missing cells run)"
    )
    psw_resume.add_argument("name", help="sweep name")
    _sweep_exec_args(psw_resume)
    psw_resume.set_defaults(fn=_cmd_sweep_resume)

    psw_status = sweep_sub.add_parser(
        "status", help="cells-completed progress per recorded sweep"
    )
    psw_status.add_argument("name", nargs="?", default=None)
    _store_args(psw_status, toggle=False)
    psw_status.set_defaults(fn=_cmd_sweep_status)

    psw_report = sweep_sub.add_parser(
        "report", help="store-derived per-coordinate stats + scaling fit"
    )
    psw_report.add_argument("name", help="sweep name")
    psw_report.add_argument("--json", action="store_true")
    _store_args(psw_report, toggle=False)
    psw_report.set_defaults(fn=_cmd_sweep_report)

    p_live = sub.add_parser(
        "live", help="live asyncio ring deployment: run, chaos, status"
    )
    live_sub = p_live.add_subparsers(dest="live_command", required=True)

    def _live_common_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--algorithm", choices=["ssrmin", "dijkstra"],
                       default="ssrmin")
        p.add_argument("--n", type=int, default=5, help="ring size")
        p.add_argument("--K", type=int, default=None,
                       help="counter modulus (default: algorithm minimum)")
        p.add_argument("--transport",
                       choices=["loopback", "udp", "udp-batch"],
                       default="loopback",
                       help="udp-batch coalesces outbound datagrams "
                            "(the fleet fastpath)")
        p.add_argument("--wire", choices=["json", "binary"], default="json",
                       help="wire format: versioned JSON or the packed "
                            "binary fastpath (default json)")
        p.add_argument("--no-uvloop", action="store_true",
                       help="stay on the stdlib event loop even when "
                            "uvloop is installed")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--timer-interval", type=float, default=0.1,
                       metavar="SECONDS",
                       help="CST retransmission timer period (default 0.1)")
        p.add_argument("--initial", choices=["legitimate", "random"],
                       default="legitimate",
                       help="boot from a legitimate or arbitrary configuration")
        p.add_argument("--stabilize-timeout", type=float, default=10.0,
                       metavar="SECONDS")
        p.add_argument("--duration", type=float, default=2.0,
                       metavar="SECONDS",
                       help="steady-state run time after stabilization")
        p.add_argument("--telemetry-dir", default="runs", metavar="DIR")
        p.add_argument("--no-telemetry", action="store_true")
        _store_args(p)

    pl_run = live_sub.add_parser(
        "run", help="boot a live ring, stabilize, circulate, drain"
    )
    _live_common_args(pl_run)
    pl_run.add_argument("--rings", type=int, default=1,
                        help="deploy this many rings; >1 delegates to the "
                             "fleet layer (shared sockets, ring i uses "
                             "seed+i)")
    pl_run.set_defaults(fn=_cmd_live_run)

    pl_chaos = live_sub.add_parser(
        "chaos", help="run a scripted fault campaign against a live ring"
    )
    _live_common_args(pl_chaos)
    from repro.runtime.chaos import SCRIPTS as _LIVE_SCRIPTS

    pl_chaos.add_argument("--script", choices=sorted(_LIVE_SCRIPTS),
                          default="loss_burst")
    pl_chaos.set_defaults(fn=_cmd_live_chaos, n=8, transport="udp",
                          duration=0.0)

    pl_status = live_sub.add_parser(
        "status", help="summarize recorded live-run manifests"
    )
    pl_status.add_argument("--telemetry-dir", default="runs", metavar="DIR")
    pl_status.add_argument("--watch", action="store_true",
                           help="redraw dashboard rows (same renderer as "
                                "'repro top') every --interval seconds")
    pl_status.add_argument("--interval", type=float, default=2.0,
                           metavar="SECONDS")
    pl_status.add_argument("--iterations", type=int, default=None,
                           metavar="N",
                           help="with --watch: stop after N frames "
                                "(default: run until interrupted)")
    pl_status.set_defaults(fn=_cmd_live_status)

    p_fleet = sub.add_parser(
        "fleet", help="many concurrent rings over shared sockets: run, status"
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    pfl_run = fleet_sub.add_parser(
        "run", help="deploy N rings over a shared UDP socket pool"
    )
    pfl_run.add_argument("--rings", type=int, default=4,
                         help="fleet size (ring i uses seed+i)")
    pfl_run.add_argument("--algorithm", choices=["ssrmin", "dijkstra"],
                         default="ssrmin")
    pfl_run.add_argument("--n", type=int, default=5, help="ring size")
    pfl_run.add_argument("--K", type=int, default=None,
                         help="counter modulus (default: algorithm minimum)")
    pfl_run.add_argument("--wire", choices=["json", "binary"],
                         default="binary",
                         help="wire format (fleet default: binary fastpath)")
    pfl_run.add_argument("--transport", choices=["mux-udp", "loopback"],
                         default="mux-udp",
                         help="shared-socket mux, or private in-process "
                              "loopbacks (no sockets)")
    pfl_run.add_argument("--workers", type=int, default=1,
                         help=">1 shards whole rings across worker "
                              "processes (run store disabled)")
    pfl_run.add_argument("--sockets", type=int, default=1,
                         help="shared UDP socket pool size per process")
    pfl_run.add_argument("--duration", type=float, default=2.0,
                         metavar="SECONDS",
                         help="steady-state run time after stabilization")
    pfl_run.add_argument("--script", choices=sorted(_LIVE_SCRIPTS),
                         default=None,
                         help="play this chaos script against every ring")
    pfl_run.add_argument("--load-rate", type=float, default=0.0,
                         metavar="REQ_PER_SEC",
                         help="open-loop critical-section demand per ring "
                              "(0 = none)")
    pfl_run.add_argument("--seed", type=int, default=0,
                         help="base seed (ring i uses seed+i)")
    pfl_run.add_argument("--timer-interval", type=float, default=0.1,
                         metavar="SECONDS")
    pfl_run.add_argument("--stabilize-timeout", type=float, default=10.0,
                         metavar="SECONDS")
    pfl_run.add_argument("--no-uvloop", action="store_true",
                         help="stay on the stdlib event loop even when "
                              "uvloop is installed")
    pfl_run.add_argument("--no-batch", action="store_true",
                         help="send one datagram per message (disable "
                              "send-side coalescing)")
    pfl_run.add_argument("--telemetry-dir", default="runs", metavar="DIR")
    pfl_run.add_argument("--no-telemetry", action="store_true")
    _store_args(pfl_run)
    pfl_run.set_defaults(fn=_cmd_fleet_run)

    pfl_status = fleet_sub.add_parser(
        "status", help="summarize recorded fleet reports"
    )
    pfl_status.add_argument("--telemetry-dir", default="runs", metavar="DIR")
    pfl_status.set_defaults(fn=_cmd_fleet_status)

    p_top = sub.add_parser(
        "top", help="live terminal dashboard over an in-process ring fleet"
    )
    p_top.add_argument("--rings", type=int, default=2,
                       help="fleet size (default 2: one ring per algorithm)")
    p_top.add_argument("--algorithm", choices=["ssrmin", "dijkstra", "both"],
                       default="both",
                       help="'both' alternates SSRmin/Dijkstra rings, the "
                            "paper's graceful-vs-non-graceful contrast")
    p_top.add_argument("--n", type=int, default=5, help="ring size")
    p_top.add_argument("--K", type=int, default=None)
    p_top.add_argument("--seed", type=int, default=0,
                       help="base seed (ring i uses seed+i)")
    p_top.add_argument("--transport", choices=["loopback", "udp"],
                       default="loopback")
    p_top.add_argument("--timer-interval", type=float, default=0.1,
                       metavar="SECONDS")
    p_top.add_argument("--script", choices=sorted(_LIVE_SCRIPTS),
                       default=None,
                       help="play this chaos script against every ring")
    p_top.add_argument("--duration", type=float, default=10.0,
                       metavar="SECONDS", help="0 = run until q/interrupt")
    p_top.add_argument("--refresh", type=float, default=0.5,
                       metavar="SECONDS", help="dashboard redraw period")
    p_top.add_argument("--plain", action="store_true",
                       help="print frames instead of the curses screen")
    _store_args(p_top)
    p_top.set_defaults(fn=_cmd_top)

    p_runs = sub.add_parser(
        "runs", help="the persistent run store: list, show, query, backfill"
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    pr_list = runs_sub.add_parser("list", help="list recorded runs")
    pr_list.add_argument("--kind", default=None,
                         choices=["live", "experiment", "sweep_cell"])
    pr_list.add_argument("--algorithm", default=None,
                         help="substring filter, e.g. ssrmin")
    pr_list.add_argument("--limit", type=int, default=None)
    _store_args(pr_list, toggle=False)
    pr_list.set_defaults(fn=_cmd_runs_list)

    pr_show = runs_sub.add_parser(
        "show", help="one run's epochs, disturbances, incidents, samples"
    )
    pr_show.add_argument("run_id")
    pr_show.add_argument("--json", action="store_true")
    _store_args(pr_show, toggle=False)
    pr_show.set_defaults(fn=_cmd_runs_show)

    pr_query = runs_sub.add_parser(
        "query", help="run one read-only SELECT against the store"
    )
    pr_query.add_argument("sql", help="a single SELECT/WITH statement")
    pr_query.add_argument("--json", action="store_true")
    _store_args(pr_query, toggle=False)
    pr_query.set_defaults(fn=_cmd_runs_query)

    pr_backfill = runs_sub.add_parser(
        "backfill", help="import the runs/ JSONL tree into the store"
    )
    pr_backfill.add_argument("--dir", default="runs", metavar="DIR",
                             help="run-directory tree to import")
    pr_backfill.add_argument("--prune-empty", action="store_true",
                             help="delete orphan dirs holding only empty "
                                  "files")
    _store_args(pr_backfill, toggle=False)
    pr_backfill.set_defaults(fn=_cmd_runs_backfill)

    p_slo = sub.add_parser(
        "slo", help="service-level objectives graded against the run store"
    )
    slo_sub = p_slo.add_subparsers(dest="slo_command", required=True)

    ps_report = slo_sub.add_parser(
        "report", help="grade SLOs; non-zero exit when a budget is burned"
    )
    ps_report.add_argument("--spec", default=None, metavar="PATH",
                           help="JSON SLO spec list (default: the built-in "
                                "paper-grounded objectives)")
    ps_report.add_argument("--open-incidents", action="store_true",
                           help="record burned budgets as slo-burn incidents")
    ps_report.add_argument("--json", action="store_true")
    _store_args(ps_report, toggle=False)
    ps_report.set_defaults(fn=_cmd_slo_report)

    p_chaos = sub.add_parser(
        "chaos", help="declarative chaos campaigns against live rings"
    )
    chaos_sub = p_chaos.add_subparsers(dest="chaos_command", required=True)
    p_campaign = chaos_sub.add_parser(
        "campaign", help="fault-grid campaigns: run, status, report"
    )
    campaign_sub = p_campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    pc_run = campaign_sub.add_parser(
        "run",
        help="run a seeds x faults grid; non-zero exit when the error "
             "budget is exceeded",
    )
    pc_run.add_argument("--spec", default=None, metavar="PATH",
                        help="campaign spec file (JSON; YAML when PyYAML "
                             "is installed)")
    pc_run.add_argument("--fault", action="append", default=[],
                        metavar="TYPE[:SEV[:DUR]]",
                        help="typed fault for the grid (repeatable); e.g. "
                             "loss:0.6, partition, node-crash, wedge, "
                             "cache-corruption")
    pc_run.add_argument("--name", default="campaign",
                        help="campaign name (default %(default)s)")
    pc_run.add_argument("--algorithm", choices=["ssrmin", "dijkstra"],
                        default="ssrmin")
    pc_run.add_argument("-n", "--n", type=int, default=6, help="ring size")
    pc_run.add_argument("-K", type=int, default=None, help="counter modulus")
    pc_run.add_argument("--seeds", default="0", metavar="S1,S2,...",
                        help="comma-separated seeds (default %(default)s)")
    pc_run.add_argument("--budget", type=float, default=10.0,
                        help="re-stabilization budget per cell, seconds "
                             "(default %(default)s)")
    pc_run.add_argument("--error-budget", type=float, default=0.0,
                        help="fraction of cells allowed to fail "
                             "(default %(default)s)")
    pc_run.add_argument("--settle", type=float, default=1.0,
                        help="calm run-on after the last fault "
                             "(default %(default)ss)")
    pc_run.add_argument("--timer-interval", type=float, default=0.05)
    pc_run.add_argument("--transport", choices=["loopback", "udp"],
                        default="loopback")
    pc_run.add_argument("--wire", choices=["json", "binary"], default="json")
    pc_run.add_argument("--workers", type=int, default=1,
                        help="parallel cell processes (default 1)")
    pc_run.add_argument("--json", action="store_true")
    _store_args(pc_run)
    pc_run.set_defaults(fn=_cmd_chaos_campaign_run)

    pc_status = campaign_sub.add_parser(
        "status", help="list recorded campaigns"
    )
    _store_args(pc_status, toggle=False)
    pc_status.set_defaults(fn=_cmd_chaos_campaign_status)

    pc_report = campaign_sub.add_parser(
        "report", help="re-derive a campaign report from the run store"
    )
    pc_report.add_argument("name", help="campaign name")
    pc_report.add_argument("--json", action="store_true")
    _store_args(pc_report, toggle=False)
    pc_report.set_defaults(fn=_cmd_chaos_campaign_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
