"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``list`` — list the registered experiments;
* ``run <id> [...]`` — run experiments and print their tables; each run
  writes a reproducibility manifest + JSONL event trace under
  ``runs/<id>/`` (``--no-telemetry`` to skip);
* ``report [-o PATH]`` — run everything and write EXPERIMENTS.md;
* ``stats <trace.jsonl | manifest.json>`` — replay a telemetry artifact
  and print its metrics summary;
* ``demo`` — a 30-second terminal demo: the inchworm trace (Figure 4) and a
  message-passing timeline strip chart (Figure 13).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import list_experiments

    for eid in list_experiments():
        print(eid)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    failures = 0
    for eid in args.ids:
        if args.no_telemetry:
            from repro.experiments import run_experiment

            result = run_experiment(eid, fast=args.fast)
        else:
            from repro.experiments.registry import run_experiment_instrumented

            result, run_dir = run_experiment_instrumented(
                eid, fast=args.fast, outdir=args.telemetry_dir,
                trace=not args.no_trace,
            )
        print(result.render())
        if not args.no_telemetry:
            artifacts = "manifest.json" + (
                "" if args.no_trace else ", trace.jsonl")
            print(f"telemetry: {run_dir}/ ({artifacts})")
        print()
        if not result.match:
            failures += 1
    return 1 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    text = generate_report(path=args.output, fast=args.fast, verbose=True,
                           workers=args.parallel,
                           telemetry_dir=args.telemetry_dir,
                           trace=args.trace,
                           live_progress=args.live_progress)
    if args.output:
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import TraceStats, manifest_summary, read_manifest

    try:
        if args.trace.endswith(".json"):
            manifest = read_manifest(args.trace)
            for line in manifest_summary(manifest):
                print(line)
            return 0
        stats = TraceStats.from_file(args.trace)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc.strerror or exc}",
              file=sys.stderr)
        return 1
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {args.trace}: {exc}", file=sys.stderr)
        return 1
    print(stats.render())
    return 0 if stats.seq_monotonic else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.ssrmin import SSRmin
    from repro.algorithms.dijkstra import DijkstraKState
    from repro.algorithms.dijkstra_four_state import DijkstraFourState
    from repro.verification import TransitionSystem, check_self_stabilization

    if args.algorithm == "ssrmin":
        alg = SSRmin(args.n, args.K, allow_small_k=True) \
            if args.K and args.K <= args.n else SSRmin(args.n, args.K)
    elif args.algorithm == "dijkstra":
        alg = DijkstraKState(args.n, args.K, allow_small_k=True) \
            if args.K and args.K <= args.n else DijkstraKState(args.n, args.K)
    elif args.algorithm == "four-state":
        alg = DijkstraFourState(args.n)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.algorithm)

    ts = TransitionSystem(alg, daemon=args.daemon)
    print(
        f"exhaustively checking {args.algorithm} "
        f"(n={args.n}{f', K={alg.K}' if hasattr(alg, 'K') else ''}) "
        f"under the {args.daemon} daemon ..."
    )
    report = check_self_stabilization(ts)
    print(report.summary())
    return 0 if report.self_stabilizing else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.ssrmin import SSRmin
    from repro.experiments.runners_figures import _canonical_execution
    from repro.analysis.tracefmt import format_trace
    from repro.messagepassing.cst import transformed
    from repro.messagepassing.links import UniformDelay
    from repro.viz.ascii import render_timeline

    print("SSRmin inchworm on 5 processes (Figure 4):\n")
    alg = SSRmin(5, 6)
    result = _canonical_execution(alg, x=3, steps=15)
    print(format_trace(alg, result.execution))

    print("\nMessage-passing execution, own-view token holding (Figure 13):\n")
    net = transformed(alg, seed=13, delay_model=UniformDelay(0.5, 1.5))
    net.run(60.0)
    print(render_timeline(net.timeline, alg.n, columns=72))
    print(
        "\nEvery column has >= 1 holder: the graceful-handover guarantee "
        "(Theorem 3)."
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSRmin reproduction: experiments, reports and demos",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiment ids")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run experiments by id")
    p_run.add_argument("ids", nargs="+", help="experiment ids (see 'list')")
    p_run.add_argument("--fast", action="store_true", help="reduced trial counts")
    p_run.add_argument("--telemetry-dir", default="runs", metavar="DIR",
                       help="where run manifests/traces land (default runs/)")
    p_run.add_argument("--no-telemetry", action="store_true",
                       help="skip manifest + trace artifacts")
    p_run.add_argument("--no-trace", action="store_true",
                       help="write the manifest but not the JSONL trace")
    p_run.set_defaults(fn=_cmd_run)

    p_report = sub.add_parser("report", help="run everything, write EXPERIMENTS.md")
    p_report.add_argument("-o", "--output", default=None, help="output path")
    p_report.add_argument("--fast", action="store_true", help="reduced trial counts")
    p_report.add_argument("--parallel", type=int, default=1, metavar="N",
                          help="worker processes (default 1)")
    p_report.add_argument("--telemetry-dir", default=None, metavar="DIR",
                          help="also write per-experiment run manifests")
    p_report.add_argument("--trace", action="store_true",
                          help="with --telemetry-dir: also write JSONL traces")
    p_report.add_argument("--live-progress", action="store_true",
                          help="stream steps/sec + token census per experiment")
    p_report.set_defaults(fn=_cmd_report)

    p_stats = sub.add_parser(
        "stats", help="replay a JSONL trace (or manifest) and print metrics"
    )
    p_stats.add_argument("trace", help="path to trace.jsonl or manifest.json")
    p_stats.set_defaults(fn=_cmd_stats)

    p_demo = sub.add_parser("demo", help="terminal demo (trace + timeline)")
    p_demo.set_defaults(fn=_cmd_demo)

    p_verify = sub.add_parser(
        "verify", help="exhaustively model-check a small instance"
    )
    p_verify.add_argument(
        "algorithm", choices=["ssrmin", "dijkstra", "four-state"]
    )
    p_verify.add_argument("-n", type=int, default=3, help="ring size")
    p_verify.add_argument("-K", type=int, default=None,
                          help="counter modulus (ssrmin/dijkstra)")
    p_verify.add_argument("--daemon", choices=["central", "distributed"],
                          default="distributed")
    p_verify.set_defaults(fn=_cmd_verify)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
