"""SweepStore: durable checkpoints, reconcile, truncated tails, guards."""

import json
import os

import pytest

from repro.observability.store import RunStore
from repro.sweeps.spec import SweepSpec
from repro.sweeps.store import SweepStore, sweep_dir


def _spec(name="s", seeds=(0, 1, 2)):
    return SweepSpec(name=name, n_values=(5,), seeds=seeds)


def test_record_and_completed_roundtrip(tmp_path):
    base = str(tmp_path)
    with RunStore(":memory:") as rs:
        with SweepStore.create(_spec(), base, rs) as store:
            cells = store.spec.cells()
            store.record(cells[0], {"steps": 7, "converged": True},
                         "batched", 0.001)
            store.record(cells[2], {"steps": 9, "converged": True},
                         "batched", 0.002)
        with SweepStore.create(_spec(), base, rs, resume=True) as store:
            done = store.completed()
            assert sorted(done) == [0, 2]
            assert done[0]["result"] == {"steps": 7, "converged": True}
            assert done[2]["key"] == cells[2].key
        # The sqlite index agrees with the JSONL.
        row = rs.get_sweep("s")
        assert rs.sweep_cell_indexes(row["id"]) == [0, 2]


def test_truncated_tail_dropped_and_repaired(tmp_path):
    base = str(tmp_path)
    path = os.path.join(sweep_dir(base, "s"), "cells.jsonl")
    with RunStore(":memory:") as rs:
        with SweepStore.create(_spec(), base, rs) as store:
            store.record(store.spec.cells()[0],
                         {"steps": 3, "converged": True}, "batched", 0.0)
        with open(path, "a") as fh:
            fh.write('{"index": 1, "key": "half-writ')  # kill mid-write
        with SweepStore.create(_spec(), base, rs, resume=True) as store:
            done = store.completed()
            assert sorted(done) == [0]  # the torn line is dropped
            # Appending after the torn tail starts on a fresh line.
            store.record(store.spec.cells()[1],
                         {"steps": 4, "converged": True}, "batched", 0.0)
        lines = [json.loads(line) for line in open(path)
                 if _parses(line)]
        assert {rec["index"] for rec in lines} == {0, 1}


def _parses(line):
    try:
        json.loads(line)
        return True
    except ValueError:
        return False


def test_completed_repairs_sqlite_from_jsonl(tmp_path):
    base = str(tmp_path)
    with RunStore(":memory:") as rs:
        with SweepStore.create(_spec(), base, rs) as store:
            store.record(store.spec.cells()[1],
                         {"steps": 5, "converged": True}, "batched", 0.0)
            rs.reset_sweep_cells(store.sweep_id)  # simulate lost commits
            rs.flush()
            assert rs.sweep_cell_indexes(store.sweep_id) == []
            assert sorted(store.completed()) == [1]
            assert rs.sweep_cell_indexes(store.sweep_id) == [1]


def test_existing_cells_require_resume_or_fresh(tmp_path):
    base = str(tmp_path)
    with RunStore(":memory:") as rs:
        with SweepStore.create(_spec(), base, rs) as store:
            store.record(store.spec.cells()[0],
                         {"steps": 1, "converged": True}, "batched", 0.0)
        with pytest.raises(ValueError):
            SweepStore.create(_spec(), base, rs)
        with SweepStore.create(_spec(), base, rs, fresh=True) as store:
            assert store.completed() == {}


def test_grid_hash_mismatch_rejected(tmp_path):
    base = str(tmp_path)
    with RunStore(":memory:") as rs:
        SweepStore.create(_spec(seeds=(0, 1)), base, rs).close()
        with pytest.raises(ValueError):
            SweepStore.create(_spec(seeds=(0, 9)), base, rs, resume=True)


def test_attach_falls_back_to_store_row(tmp_path):
    base = str(tmp_path)
    with RunStore(":memory:") as rs:
        SweepStore.create(_spec(), base, rs).close()
        os.remove(os.path.join(sweep_dir(base, "s"), "spec.json"))
        store = SweepStore.attach("s", base, rs)
        assert store.spec == _spec()
        store.close()
        with pytest.raises(ValueError):
            SweepStore.attach("nonexistent", base, rs)


def test_finish_accumulates_wall_and_status(tmp_path):
    base = str(tmp_path)
    with RunStore(":memory:") as rs:
        with SweepStore.create(_spec(), base, rs) as store:
            store.finish(2, 1.5)
            assert rs.get_sweep("s")["status"] == "running"
            store.finish(3, 2.5)
        row = rs.get_sweep("s")
        assert row["status"] == "completed"
        assert row["wall_seconds"] == pytest.approx(4.0)
        assert row["completed"] == 3
