"""Kill-and-resume drill: SIGTERM the scheduler mid-grid, resume, compare.

The resumability contract, end to end and out of process:

* a SIGTERM mid-grid loses nothing durable — every checkpointed cell
  survives in ``cells.jsonl`` (the sqlite manifest may lag; resume
  reconciles it);
* ``repro sweep resume`` re-runs **exactly** the missing cells (the
  completed and re-run index sets are disjoint and together cover the
  grid);
* the stitched-together result set is bit-identical to an uninterrupted
  run of the same spec.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.sweeps import SweepSpec, run_sweep
from repro.sweeps.store import sweep_dir

IDENTITY = ("index", "key", "params", "seed", "result")
SPEC = dict(name="drill", n_values=(6,), seeds=tuple(range(24)))


def _cells(base):
    path = os.path.join(sweep_dir(base, "drill"), "cells.jsonl")
    if not os.path.isfile(path):
        return {}
    records = {}
    for line in open(path):
        try:
            rec = json.loads(line)
        except ValueError:
            continue  # torn tail from the kill
        records[rec["index"]] = rec
    return records


def _identity(rec):
    return {k: rec[k] for k in IDENTITY}


def _sweep_cmd(base, extra=()):
    return [
        sys.executable, "-m", "repro.cli", "sweep", *extra,
        "--dir", base, "--store", os.path.join(base, "store.sqlite"),
    ]


@pytest.mark.slow
def test_sigterm_mid_grid_then_resume_is_bit_identical(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), os.pardir,
                                     os.pardir, "src")
    interrupted = str(tmp_path / "interrupted")
    clean = str(tmp_path / "clean")

    # Throttled run: ~50ms per cell leaves a wide window to land the kill
    # strictly inside the grid.
    run_args = ["run", "--name", "drill", "--n-values", "6",
                "--seeds", "0:24", "--throttle", "0.05"]
    proc = subprocess.Popen(
        _sweep_cmd(interrupted, run_args), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 30
    while time.time() < deadline and len(_cells(interrupted)) < 5:
        if proc.poll() is not None:
            pytest.fail("sweep finished before the kill landed")
        time.sleep(0.02)
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=30)

    survived = _cells(interrupted)
    assert 0 < len(survived) < 24, "kill must land mid-grid"
    survived_ids = set(survived)

    # Resume: only the missing cells run.
    out = subprocess.run(
        _sweep_cmd(interrupted, ["resume", "drill"]), env=env,
        capture_output=True, text=True, timeout=120,
    )
    assert out.returncode == 0, out.stderr
    assert f"{len(survived_ids)} already done" in out.stdout

    final = _cells(interrupted)
    assert sorted(final) == list(range(24))
    rerun_ids = set(final) - survived_ids
    assert rerun_ids.isdisjoint(survived_ids)
    assert rerun_ids | survived_ids == set(range(24))
    for idx in survived_ids:  # checkpointed cells were not re-run
        assert final[idx] == survived[idx]

    # Bit-identical to a never-interrupted run of the same spec.
    run_sweep(SweepSpec(**SPEC), base_dir=clean)
    baseline = _cells(clean)
    assert sorted(baseline) == sorted(final)
    for idx in baseline:
        assert _identity(baseline[idx]) == _identity(final[idx])
