"""Sweep engine: batched == per-cell identity, resume, reports, telemetry."""

import json
import os

import pytest

from repro.observability.store import RunStore
from repro.sweeps import (
    SweepSpec,
    build_sweep_report,
    render_report,
    render_status,
    resume_sweep,
    run_sweep,
)
from repro.sweeps.store import sweep_dir

IDENTITY = ("index", "key", "params", "seed", "result")


def _cells(base, name):
    path = os.path.join(sweep_dir(base, name), "cells.jsonl")
    records = [json.loads(line) for line in open(path) if line.strip()]
    return sorted(records, key=lambda r: r["index"])


def _identity(rec):
    return {k: rec[k] for k in IDENTITY}


def test_batched_and_per_cell_modes_are_bit_identical(tmp_path):
    spec = SweepSpec(name="grid", n_values=(5, 8), seeds=tuple(range(6)),
                     daemons=("bernoulli:0.5", "central"))
    a = run_sweep(spec, base_dir=str(tmp_path / "a"), mode="batched")
    b = run_sweep(spec, base_dir=str(tmp_path / "b"), mode="per-cell")
    assert a["mode"] == "batched" and b["mode"] == "per-cell"
    assert a["completed"] == b["completed"] == spec.total_cells()
    for ra, rb in zip(_cells(str(tmp_path / "a"), "grid"),
                      _cells(str(tmp_path / "b"), "grid")):
        assert _identity(ra) == _identity(rb)
        assert ra["engine"] == "batched" and rb["engine"] == "per-cell"


def test_resume_runs_only_missing_cells(tmp_path):
    base = str(tmp_path)
    spec = SweepSpec(name="r", n_values=(5,), seeds=tuple(range(8)))
    full = run_sweep(spec, base_dir=base)
    assert full["ran"] == 8

    # Drop half the checkpoints, resume, and check the disjoint re-run.
    path = os.path.join(sweep_dir(base, "r"), "cells.jsonl")
    records = _cells(base, "r")
    kept = [r for r in records if r["index"] < 4]
    with open(path, "w") as fh:
        for rec in kept:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    with RunStore(os.path.join(base, "store.sqlite")) as rs:
        row = rs.get_sweep("r")
        rs.reset_sweep_cells(row["id"])
        rs.flush()

    summary = resume_sweep("r", base_dir=base)
    assert summary["skipped"] == 4 and summary["ran"] == 4
    resumed = _cells(base, "r")
    assert [r["index"] for r in resumed] == list(range(8))
    for before, after in zip(records, resumed):
        assert _identity(before) == _identity(after)


def test_des_sweep_runs_per_cell(tmp_path):
    spec = SweepSpec(
        name="d", kind="des", n_values=(4,), seeds=(0, 1),
        loss_rates=(0.0, 0.2), max_time=4000.0, gap_duration=10.0,
    )
    with pytest.raises(ValueError):
        run_sweep(spec, base_dir=str(tmp_path), mode="batched")
    summary = run_sweep(spec, base_dir=str(tmp_path))
    assert summary["mode"] == "per-cell"
    assert summary["completed"] == 4
    for rec in _cells(str(tmp_path), "d"):
        assert rec["result"]["stabilized_at"] >= 0.0
        assert rec["result"]["min_tokens"] >= 1


def test_report_is_store_derived(tmp_path):
    base = str(tmp_path)
    spec = SweepSpec(name="rep", n_values=(5, 8), seeds=tuple(range(4)))
    run_sweep(spec, base_dir=base)
    with RunStore(os.path.join(base, "store.sqlite")) as rs:
        report = build_sweep_report(rs, "rep")
        assert report["completed"] == 8
        assert report["metric"] == "steps"
        assert len(report["groups"]) == 2  # one per ring size
        for group in report["groups"]:
            assert group["stats"]["count"] == 4
        # Two ring sizes -> a Theorem-2-style fit is included.
        fit = report["scaling_fit"]
        assert fit["n_values"] == [5, 8]
        assert fit["exponent"] > 0
        text = render_report(report)
        assert "scaling fit" in text and "rep" in text
        assert "8/8 cells" in render_status(rs)
        with pytest.raises(ValueError):
            build_sweep_report(rs, "nope")


def test_invalid_mode_rejected(tmp_path):
    with pytest.raises(ValueError):
        run_sweep(SweepSpec(name="m"), base_dir=str(tmp_path),
                  mode="warp")


def test_progress_events_stream_per_cell(tmp_path):
    from repro.telemetry.session import telemetry_session

    spec = SweepSpec(name="t", n_values=(5,), seeds=(0, 1, 2))
    events = []
    with telemetry_session() as session:
        session.subscribe(events.append)
        run_sweep(spec, base_dir=str(tmp_path))
    progress = [e for e in events if e.kind == "sweep_progress"]
    # One opening event plus one per completed cell.
    assert len(progress) == 4
    assert progress[-1].payload["name"] == "t"
    assert progress[-1].payload["total"] == 3
    assert progress[-1].payload["cell_index"] == 2
