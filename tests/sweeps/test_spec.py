"""SweepSpec: validation, enumeration order, identity."""

import pytest

from repro.sweeps.spec import KIND_AXES, SweepSpec


def test_default_spec_enumerates_in_grid_order():
    spec = SweepSpec(name="s", n_values=(5, 8), seeds=(0, 1, 2))
    cells = spec.cells()
    assert spec.total_cells() == len(cells) == 6
    assert [c.index for c in cells] == list(range(6))
    assert cells[0].key == "n=5/daemon=bernoulli:0.5/seed=0"
    assert cells[-1].params == {"n": 8, "daemon": "bernoulli:0.5",
                               "seed": 2}
    assert all(c.seed == c.params["seed"] for c in cells)


def test_des_axes():
    spec = SweepSpec(
        name="d", kind="des", n_values=(4,), seeds=(0,),
        loss_rates=(0.0, 0.25), delay_scales=(1.0, 2.0),
        duplication_rates=(0.0, 0.1),
    )
    assert [a for a, _ in spec.axes()] == list(KIND_AXES["des"])
    assert spec.total_cells() == 8
    assert "loss=0.25" in spec.cells()[-1].key


def test_group_params_excludes_seed():
    cell = SweepSpec(name="s").cells()[0]
    assert dict(cell.group_params()) == {"n": 8,
                                         "daemon": "bernoulli:0.5"}


@pytest.mark.parametrize("kwargs", [
    {"name": ""},
    {"name": "a/b"},
    {"name": ".hidden"},
    {"name": "s", "kind": "mystery"},
    {"name": "s", "kind": "convergence", "algorithm": "dijkstra"},
    {"name": "s", "n_values": ()},
    {"name": "s", "seeds": ()},
    {"name": "s", "n_values": (2,)},
    {"name": "s", "daemons": ("lottery",)},
    # Foreign axes must stay at defaults.
    {"name": "s", "kind": "convergence", "loss_rates": (0.5,)},
    {"name": "s", "kind": "des", "daemons": ("central",)},
])
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(ValueError):
        SweepSpec(**kwargs)


def test_json_roundtrip_and_unknown_fields():
    spec = SweepSpec(name="s", n_values=[5, 8], seeds=[0, 1])
    clone = SweepSpec.from_json(spec.to_json())
    assert clone == spec
    assert clone.n_values == (5, 8)  # lists normalize to tuples
    with pytest.raises(ValueError):
        SweepSpec.from_json({"name": "s", "bogus": 1})


def test_grid_hash_tracks_the_grid():
    a = SweepSpec(name="s", seeds=(0, 1))
    b = SweepSpec(name="s", seeds=(0, 1))
    c = SweepSpec(name="s", seeds=(0, 2))
    assert a.grid_hash() == b.grid_hash()
    assert a.grid_hash() != c.grid_hash()
