"""Unit tests for modular ring addressing."""

import pytest

from repro.ring.addressing import pred, ring_distance, succ


class TestSucc:
    def test_interior(self):
        assert succ(2, 5) == 3

    def test_wraparound(self):
        assert succ(4, 5) == 0

    def test_single_hop_ring_of_two(self):
        assert succ(1, 2) == 0

    def test_invalid_ring_size(self):
        with pytest.raises(ValueError):
            succ(0, 0)


class TestPred:
    def test_interior(self):
        assert pred(3, 5) == 2

    def test_wraparound(self):
        assert pred(0, 5) == 4

    def test_invalid_ring_size(self):
        with pytest.raises(ValueError):
            pred(0, -1)

    def test_pred_inverts_succ(self):
        for n in (2, 3, 7):
            for i in range(n):
                assert pred(succ(i, n), n) == i


class TestRingDistance:
    def test_forward(self):
        assert ring_distance(1, 4, 5) == 3

    def test_wrapping(self):
        assert ring_distance(4, 1, 5) == 2

    def test_self_distance_zero(self):
        assert ring_distance(3, 3, 5) == 0

    def test_complementary(self):
        n = 7
        for i in range(n):
            for j in range(n):
                if i != j:
                    assert ring_distance(i, j, n) + ring_distance(j, i, n) == n

    def test_invalid_ring_size(self):
        with pytest.raises(ValueError):
            ring_distance(0, 1, 0)
