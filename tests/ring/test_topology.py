"""Unit tests for ring and general topologies."""

import pytest

from repro.ring.topology import GeneralTopology, RingTopology


class TestRingTopology:
    def test_rejects_tiny_ring(self):
        with pytest.raises(ValueError):
            RingTopology(1)

    def test_successor_predecessor(self):
        ring = RingTopology(4)
        assert ring.successor(3) == 0
        assert ring.predecessor(0) == 3

    def test_index_bounds(self):
        ring = RingTopology(4)
        with pytest.raises(IndexError):
            ring.successor(4)
        with pytest.raises(IndexError):
            ring.predecessor(-1)

    def test_bidirectional_readable_neighbors(self):
        ring = RingTopology(5, bidirectional=True)
        assert ring.readable_neighbors(0) == (4, 1)

    def test_unidirectional_readable_neighbors(self):
        ring = RingTopology(5, bidirectional=False)
        assert ring.readable_neighbors(2) == (1,)

    def test_unidirectional_message_flow_forward(self):
        ring = RingTopology(5, bidirectional=False)
        # P_i's state must reach its successor (who reads it).
        assert ring.message_neighbors(2) == (3,)

    def test_edges_count(self):
        assert len(RingTopology(6).edges()) == 6

    def test_equality_and_hash(self):
        assert RingTopology(4) == RingTopology(4)
        assert RingTopology(4) != RingTopology(4, bidirectional=False)
        assert hash(RingTopology(4)) == hash(RingTopology(4))

    def test_processes_iterates_all(self):
        assert list(RingTopology(3).processes()) == [0, 1, 2]


class TestGeneralTopology:
    def test_ring_factory_matches_ring(self):
        g = GeneralTopology.ring(5)
        assert g.neighbors(0) == (1, 4)
        assert g.degree(2) == 2

    def test_from_edges_canonicalizes(self):
        g = GeneralTopology.from_edges(3, [(1, 0), (0, 1), (1, 2)])
        assert g.edges() == ((0, 1), (1, 2))

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            GeneralTopology.from_edges(3, [(1, 1)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError):
            GeneralTopology.from_edges(3, [(0, 3)])

    def test_neighbors_out_of_range(self):
        with pytest.raises(IndexError):
            GeneralTopology.ring(3).neighbors(5)

    def test_star_degrees(self):
        g = GeneralTopology.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
