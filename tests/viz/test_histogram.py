"""Unit tests for the ASCII histogram renderer."""

import pytest

from repro.viz.histogram import render_histogram


class TestRenderHistogram:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_histogram([])

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            render_histogram([1, 2], bins=0)
        with pytest.raises(ValueError):
            render_histogram([1, 2], width=0)

    def test_bin_count(self):
        text = render_histogram(range(100), bins=5)
        bar_lines = [l for l in text.splitlines() if "|" in l]
        assert len(bar_lines) == 5

    def test_counts_sum_to_samples(self):
        samples = [1, 1, 2, 5, 5, 5, 9]
        text = render_histogram(samples, bins=4)
        counts = [int(l.rsplit(" ", 1)[1]) for l in text.splitlines() if "|" in l]
        assert sum(counts) == len(samples)

    def test_peak_bar_has_full_width(self):
        text = render_histogram([1] * 10 + [9], bins=2, width=20)
        lines = [l for l in text.splitlines() if "|" in l]
        assert "#" * 20 in lines[0]

    def test_title_and_footer(self):
        text = render_histogram([1, 2, 3], bins=2, title="steps")
        assert text.startswith("steps")
        assert "mean=2.0" in text
        assert "n=3" in text
