"""Unit tests for ASCII rendering."""

import pytest

from repro.messagepassing.timeline import TokenTimeline
from repro.viz.ascii import render_ring, render_timeline


class TestRenderRing:
    def test_marks_tokens(self):
        text = render_ring(3, primary=[0], secondary=[1])
        assert text == "[0:P-] [1:-S] [2:--]"

    def test_both_tokens_same_process(self):
        assert render_ring(2, primary=[0], secondary=[0]).startswith("[0:PS]")

    def test_empty(self):
        assert render_ring(2) == "[0:--] [1:--]"


class TestRenderTimeline:
    def make_timeline(self):
        tl = TokenTimeline()
        tl.record(0.0, [0])
        tl.record(5.0, [0, 1])
        tl.record(6.0, [1])
        tl.finish(10.0)
        return tl

    def test_grid_shape(self):
        text = render_timeline(self.make_timeline(), n=2, columns=10)
        lines = text.splitlines()
        assert len(lines) == 4  # 2 node rows + count row + axis
        assert lines[0].startswith("node  0")
        assert lines[2].startswith("count")

    def test_holder_marked(self):
        text = render_timeline(self.make_timeline(), n=2, columns=10)
        node0 = text.splitlines()[0]
        assert "#" in node0
        # Node 0 holds early, not late.
        cells = node0.split("|")[1]
        assert cells[0] == "#" and cells[-1] == "."

    def test_count_row_shows_overlap(self):
        text = render_timeline(self.make_timeline(), n=2, columns=10)
        counts = text.splitlines()[2].split("|")[1]
        assert "2" in counts  # the overlap cell
        assert "0" not in counts  # never token-less

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            render_timeline(self.make_timeline(), n=2, t_start=5.0, t_end=5.0)

    def test_custom_window(self):
        text = render_timeline(self.make_timeline(), n=2, t_start=6.0,
                               t_end=10.0, columns=8)
        node0 = text.splitlines()[0].split("|")[1]
        assert node0 == "........"  # node 0 inactive after t=6
