"""Unit tests for the token predicates (Algorithm 3, lines 36-41)."""

import pytest

from repro.core.state import Configuration
from repro.core.tokens import (
    holds_primary,
    holds_secondary,
    primary_condition,
    primary_holders,
    secondary_condition,
    secondary_holders,
    token_count,
    token_holders,
    weak_secondary_condition,
)


def cfg(*states):
    return Configuration(states)


class TestPrimaryCondition:
    def test_bottom_holds_when_equal(self):
        assert primary_condition(3, 3, is_bottom=True)

    def test_bottom_releases_when_distinct(self):
        assert not primary_condition(4, 3, is_bottom=True)

    def test_other_holds_when_distinct(self):
        assert primary_condition(3, 4, is_bottom=False)

    def test_other_releases_when_equal(self):
        assert not primary_condition(3, 3, is_bottom=False)


class TestSecondaryCondition:
    def test_tra_set_holds(self):
        assert secondary_condition((0, 1), (1, 1))

    def test_rts_with_quiet_successor_holds(self):
        assert secondary_condition((1, 0), (0, 0))

    def test_rts_with_busy_successor_releases(self):
        assert not secondary_condition((1, 0), (0, 1))
        assert not secondary_condition((1, 0), (1, 0))

    def test_idle_holds_nothing(self):
        assert not secondary_condition((0, 0), (0, 0))

    def test_weak_condition_is_tra_only(self):
        assert weak_secondary_condition((0, 1), (0, 0))
        assert not weak_secondary_condition((1, 0), (0, 0))


class TestGlobalPredicates:
    """Token placement on the legitimate shapes of Definition 1."""

    def test_both_tokens_via_tra(self):
        c = cfg((3, 0, 1), (3, 0, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0))
        assert holds_primary(c, 0) and holds_secondary(c, 0)
        assert token_holders(c) == (0,)

    def test_both_tokens_via_rts(self):
        c = cfg((3, 1, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0))
        assert holds_primary(c, 0) and holds_secondary(c, 0)
        assert token_holders(c) == (0,)

    def test_split_tokens(self):
        c = cfg((3, 1, 0), (3, 0, 1), (3, 0, 0), (3, 0, 0), (3, 0, 0))
        assert primary_holders(c) == (0,)
        assert secondary_holders(c) == (1,)
        assert token_holders(c) == (0, 1)
        assert token_count(c) == 2

    def test_interior_holder(self):
        c = cfg((4, 0, 0), (4, 0, 0), (3, 0, 1), (3, 0, 0), (3, 0, 0))
        assert primary_holders(c) == (2,)
        assert secondary_holders(c) == (2,)

    def test_wraparound_split(self):
        # P4 primary, P0 secondary (the gamma_{3n-1} shape of Lemma 1).
        c = cfg((4, 0, 1), (4, 0, 0), (4, 0, 0), (4, 0, 0), (3, 1, 0))
        assert primary_holders(c) == (4,)
        assert secondary_holders(c) == (0,)
        assert token_holders(c) == (0, 4)

    def test_matches_algorithm_methods(self, ssrmin5):
        import random

        rng = random.Random(3)
        for _ in range(200):
            c = ssrmin5.random_configuration(rng)
            assert token_holders(c) == ssrmin5.privileged(c)
            assert primary_holders(c) == ssrmin5.primary_holders(c)
            assert secondary_holders(c) == ssrmin5.secondary_holders(c)
