"""Unit tests for the guarded-command rule abstraction."""

import pytest

from repro.core.rules import Rule, RuleSet


def _rule(name, number, fires, value):
    return Rule(
        name=name,
        number=number,
        guard=lambda config, i: fires,
        command=lambda config, i: value,
    )


class TestRule:
    def test_enabled_delegates_to_guard(self):
        assert _rule("A", 1, True, 0).enabled((), 0)
        assert not _rule("A", 1, False, 0).enabled((), 0)

    def test_execute_returns_command_value(self):
        assert _rule("A", 1, True, 42).execute((), 0) == 42


class TestRuleSet:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RuleSet([])

    def test_rejects_duplicate_numbers(self):
        with pytest.raises(ValueError):
            RuleSet([_rule("A", 1, True, 0), _rule("B", 1, True, 0)])

    def test_priority_lowest_number_wins(self):
        rs = RuleSet([_rule("LOW", 5, True, 5), _rule("HIGH", 1, True, 1)])
        assert rs.enabled_rule((), 0).name == "HIGH"

    def test_priority_skips_disabled(self):
        rs = RuleSet([_rule("HIGH", 1, False, 1), _rule("LOW", 5, True, 5)])
        assert rs.enabled_rule((), 0).name == "LOW"

    def test_none_when_no_guard_holds(self):
        rs = RuleSet([_rule("A", 1, False, 0)])
        assert rs.enabled_rule((), 0) is None

    def test_rules_sorted_by_number(self):
        rs = RuleSet([_rule("B", 2, True, 0), _rule("A", 1, True, 0)])
        assert [r.name for r in rs.rules] == ["A", "B"]

    def test_all_enabled_guards_ignores_priority(self):
        rs = RuleSet([_rule("A", 1, True, 0), _rule("B", 2, True, 0)])
        assert [r.name for r in rs.all_enabled_guards((), 0)] == ["A", "B"]

    def test_by_name(self):
        rs = RuleSet([_rule("A", 1, True, 0)])
        assert rs.by_name("A").number == 1
        with pytest.raises(KeyError):
            rs.by_name("Z")
