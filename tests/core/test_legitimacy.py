"""Unit tests for Definition 1's legitimate configurations and Lemma 1."""

import pytest

from repro.core.legitimacy import (
    canonical_cycle,
    is_legitimate,
    legitimate_configurations,
)
from repro.core.ssrmin import SSRmin
from repro.core.state import Configuration


def cfg(text):
    return Configuration.parse(text)


class TestClosedForm:
    def test_shape_both_tokens_tra(self):
        assert is_legitimate(cfg("3.0.1 3.0.0 3.0.0 3.0.0 3.0.0"), 6)

    def test_shape_both_tokens_rts(self):
        assert is_legitimate(cfg("3.1.0 3.0.0 3.0.0 3.0.0 3.0.0"), 6)

    def test_shape_split(self):
        assert is_legitimate(cfg("3.1.0 3.0.1 3.0.0 3.0.0 3.0.0"), 6)

    def test_shape_interior(self):
        assert is_legitimate(cfg("4.0.0 4.0.0 3.0.1 3.0.0 3.0.0"), 6)
        assert is_legitimate(cfg("4.0.0 4.0.0 3.1.0 3.0.1 3.0.0"), 6)

    def test_shape_wraparound(self):
        assert is_legitimate(cfg("4.0.1 4.0.0 4.0.0 4.0.0 3.1.0"), 6)

    def test_modular_wraparound_of_x(self):
        # x = 5, x+1 = 0 (mod 6).
        assert is_legitimate(cfg("0.0.0 5.0.1 5.0.0 5.0.0 5.0.0"), 6)

    def test_rejects_illegitimate_x_vector(self):
        assert not is_legitimate(cfg("4.0.1 3.0.0 5.0.0 3.0.0 3.0.0"), 6)

    def test_rejects_stray_flags(self):
        assert not is_legitimate(cfg("3.0.1 3.0.1 3.0.0 3.0.0 3.0.0"), 6)
        assert not is_legitimate(cfg("3.1.1 3.0.0 3.0.0 3.0.0 3.0.0"), 6)

    def test_rejects_flags_away_from_token(self):
        assert not is_legitimate(cfg("4.0.0 4.0.0 3.0.0 3.0.0 3.0.1"), 6)

    def test_rejects_two_x_steps(self):
        assert not is_legitimate(cfg("5.0.1 4.0.0 3.0.0 3.0.0 3.0.0"), 6)

    def test_rejects_all_quiet(self):
        assert not is_legitimate(cfg("3.0.0 3.0.0 3.0.0 3.0.0 3.0.0"), 6)


class TestEnumeration:
    def test_count_is_3nk(self):
        assert len(list(legitimate_configurations(5, 6))) == 3 * 5 * 6
        assert len(list(legitimate_configurations(3, 4))) == 3 * 3 * 4

    def test_every_enumerated_config_passes_checker(self):
        for c in legitimate_configurations(4, 5):
            assert is_legitimate(c, 5), c

    def test_no_duplicates(self):
        configs = [c.states for c in legitimate_configurations(5, 6)]
        assert len(configs) == len(set(configs))

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            list(legitimate_configurations(2, 4))

    def test_exhaustive_equivalence_small_instance(self):
        """The closed-form checker accepts EXACTLY the enumerated set."""
        alg = SSRmin(3, 4)
        enumerated = {c.states for c in legitimate_configurations(3, 4)}
        accepted = {
            tuple(c) for c in alg.configuration_space() if alg.is_legitimate(c)
        }
        assert accepted == enumerated


class TestCanonicalCycle:
    def test_cycle_length(self):
        cyc = canonical_cycle(5, 6, x=0)
        assert len(cyc) == 3 * 5 + 1

    def test_cycle_advances_x_by_one(self):
        cyc = canonical_cycle(5, 6, x=3)
        assert cyc[-1].x_vector() == (4, 4, 4, 4, 4)
        assert cyc[-1].states == SSRmin(5, 6).initial_configuration(4).states

    def test_cycle_visits_only_legitimate(self):
        for c in canonical_cycle(5, 6, x=2):
            assert is_legitimate(c, 6)

    def test_full_rotation_returns_to_start(self):
        cyc = canonical_cycle(3, 4, x=0, cycles=4)  # K laps
        assert cyc[0].states == cyc[-1].states

    def test_cycle_union_equals_closed_form(self):
        union = set()
        for x in range(4):
            union.update(c.states for c in canonical_cycle(3, 4, x=x)[:-1])
        closed = {c.states for c in legitimate_configurations(3, 4)}
        assert union == closed

    def test_exactly_one_token_holder_or_two_adjacent(self):
        alg = SSRmin(5, 6)
        for c in canonical_cycle(5, 6):
            holders = alg.privileged(c)
            assert 1 <= len(holders) <= 2
            if len(holders) == 2:
                i, j = holders
                assert (i + 1) % 5 == j or (j + 1) % 5 == i
