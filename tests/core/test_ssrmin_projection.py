"""Unit tests for the embedded-Dijkstra projection view (Lemmas 7-8)."""

import random

from repro.algorithms.dijkstra import is_dijkstra_legitimate
from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon


class TestProjection:
    def test_dimensions(self, ssrmin5):
        proj = ssrmin5.dijkstra_projection()
        assert proj.n == 5
        assert proj.K == 6

    def test_x_vector_extraction(self, ssrmin5):
        config = ssrmin5.initial_configuration(3)
        proj = ssrmin5.dijkstra_projection()
        assert proj.x_vector(config) == (3, 3, 3, 3, 3)

    def test_legitimacy_matches_dijkstra_checker(self, ssrmin5, rng):
        proj = ssrmin5.dijkstra_projection()
        for _ in range(200):
            config = ssrmin5.random_configuration(rng)
            assert proj.is_legitimate(config) == is_dijkstra_legitimate(
                proj.x_vector(config), ssrmin5.K
            )

    def test_token_holders_are_guard_true_processes(self, ssrmin5, rng):
        proj = ssrmin5.dijkstra_projection()
        for _ in range(100):
            config = ssrmin5.random_configuration(rng)
            holders = proj.token_holders(config)
            for i in range(5):
                assert (i in holders) == ssrmin5.G(config, i)

    def test_ssrmin_legitimate_implies_projection_legitimate(self, ssrmin5):
        from repro.core.legitimacy import legitimate_configurations

        proj = ssrmin5.dijkstra_projection()
        for config in legitimate_configurations(5, 6):
            assert proj.is_legitimate(config)

    def test_projection_stays_legitimate_once_converged(self, ssrmin5):
        """The x-part's legitimacy is closed under SSRmin steps — the
        foundation of the two-phase convergence argument."""
        rng = random.Random(5)
        daemon = RandomSubsetDaemon(seed=5)
        proj = ssrmin5.dijkstra_projection()
        config = ssrmin5.random_configuration(rng)
        seen_legit = False
        for step in range(400):
            if proj.is_legitimate(config):
                seen_legit = True
            if seen_legit:
                assert proj.is_legitimate(config)
            enabled = ssrmin5.enabled_processes(config)
            config = ssrmin5.step(config, daemon.select(enabled, config, step))
        assert seen_legit
