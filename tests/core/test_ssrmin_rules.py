"""Unit tests for SSRmin's five rules (Algorithm 3), guard by guard."""

import pytest

from repro.core.ssrmin import SSRmin
from repro.core.state import Configuration


@pytest.fixture
def alg():
    return SSRmin(5, 6)


def cfg(*states):
    return Configuration(states)


class TestConstruction:
    def test_rejects_n_below_3(self):
        with pytest.raises(ValueError):
            SSRmin(2, 5)

    def test_rejects_k_not_exceeding_n(self):
        with pytest.raises(ValueError):
            SSRmin(5, 5)

    def test_allow_small_k_escape_hatch(self):
        assert SSRmin(5, 4, allow_small_k=True).K == 4

    def test_default_k_is_n_plus_1(self):
        assert SSRmin(7).K == 8

    def test_rejects_k_below_2(self):
        with pytest.raises(ValueError):
            SSRmin(3, 1, allow_small_k=True)


class TestDijkstraMacros:
    def test_bottom_guard_true_when_equal(self, alg):
        c = cfg((3, 0, 0), (0, 0, 0), (0, 0, 0), (0, 0, 0), (3, 0, 0))
        assert alg.G(c, 0)

    def test_bottom_guard_false_when_distinct(self, alg):
        c = cfg((3, 0, 0), (0, 0, 0), (0, 0, 0), (0, 0, 0), (4, 0, 0))
        assert not alg.G(c, 0)

    def test_other_guard_true_when_distinct(self, alg):
        c = cfg((3, 0, 0), (4, 0, 0), (0, 0, 0), (0, 0, 0), (0, 0, 0))
        assert alg.G(c, 1)

    def test_bottom_command_increments_mod_k(self, alg):
        c = cfg((5, 0, 0), (0, 0, 0), (0, 0, 0), (0, 0, 0), (5, 0, 0))
        assert alg.C(c, 0) == 0  # (5 + 1) mod 6

    def test_other_command_copies_predecessor(self, alg):
        c = cfg((3, 0, 0), (4, 0, 0), (0, 0, 0), (0, 0, 0), (0, 0, 0))
        assert alg.C(c, 1) == 3


class TestRule1:
    """R1: G_i and own handshake in {00, 01, 11} -> 1.0."""

    @pytest.mark.parametrize("own", [(0, 0), (0, 1), (1, 1)])
    def test_fires_for_eligible_handshakes(self, alg, own):
        c = cfg((3, *own), (3, 0, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0))
        rule = alg.enabled_rule(c, 0)
        assert rule is not None and rule.name == "R1"
        assert rule.execute(c, 0) == (3, 1, 0)

    def test_does_not_fire_on_10(self, alg):
        c = cfg((3, 1, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0))
        rule = alg.enabled_rule(c, 0)
        assert rule is None or rule.name != "R1"

    def test_requires_g_true(self, alg):
        c = cfg((3, 0, 1), (3, 0, 0), (3, 0, 0), (3, 0, 0), (4, 0, 0))
        # G_0 false (x0 != x4): R1 must not fire.
        rule = alg.enabled_rule(c, 0)
        assert rule is None or rule.name != "R1"

    def test_preserves_x(self, alg):
        c = cfg((5, 0, 1), (5, 0, 0), (5, 0, 0), (5, 0, 0), (5, 0, 0))
        assert alg.enabled_rule(c, 0).execute(c, 0)[0] == 5


class TestRule2:
    """R2: G_i, own 1.0, successor 0.1 -> 0.0 and C_i."""

    def test_fires_and_advances_counter(self, alg):
        c = cfg((3, 1, 0), (3, 0, 1), (3, 0, 0), (3, 0, 0), (3, 0, 0))
        rule = alg.enabled_rule(c, 0)
        assert rule.name == "R2"
        assert rule.execute(c, 0) == (4, 0, 0)

    def test_non_bottom_copies_predecessor(self, alg):
        c = cfg((4, 0, 0), (3, 1, 0), (3, 0, 1), (3, 0, 0), (3, 0, 0))
        rule = alg.enabled_rule(c, 1)
        assert rule.name == "R2"
        assert rule.execute(c, 1) == (4, 0, 0)

    def test_waits_for_successor_acknowledgement(self, alg):
        # Successor still 0.0: P_i must wait (no rule fires; R4's triple
        # exception covers exactly this stable waiting state).
        c = cfg((3, 1, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0))
        assert alg.enabled_rule(c, 0) is None


class TestRule3:
    """R3: not G_i, predecessor 1.0, own in {00, 10, 11} -> 0.1."""

    @pytest.mark.parametrize("own", [(0, 0), (1, 0), (1, 1)])
    def test_fires_for_eligible_handshakes(self, alg, own):
        c = cfg((3, 1, 0), (3, *own), (3, 0, 0), (3, 0, 0), (4, 0, 0))
        rule = alg.enabled_rule(c, 1)
        assert rule.name == "R3"
        assert rule.execute(c, 1) == (3, 0, 1)

    def test_does_not_fire_when_own_01(self, alg):
        c = cfg((3, 1, 0), (3, 0, 1), (3, 0, 0), (3, 0, 0), (4, 0, 0))
        rule = alg.enabled_rule(c, 1)
        assert rule is None or rule.name != "R3"

    def test_requires_predecessor_ready(self, alg):
        c = cfg((3, 0, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0), (4, 0, 0))
        assert alg.enabled_rule(c, 1) is None


class TestRule4:
    """R4: G_i and the triple differs from <00, 10, 00> -> fix and C_i."""

    def test_fires_on_inconsistent_neighbourhood(self, alg):
        # Own 1.0 with predecessor also 1.0 while G_1 holds.
        c = cfg((4, 1, 0), (3, 1, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0))
        rule = alg.enabled_rule(c, 1)
        assert rule.name == "R4"
        assert rule.execute(c, 1) == (4, 0, 0)

    def test_quiescent_waiting_state_excluded(self, alg):
        # The exact triple <00, 10, 00> with G true is the legitimate
        # "waiting for the handshake" state and must NOT trigger R4.
        c = cfg((4, 0, 0), (3, 1, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0))
        assert alg.enabled_rule(c, 1) is None

    def test_lower_priority_than_r2(self, alg):
        # Both R2 and R4 guards hold; R2 must win.
        c = cfg((4, 1, 0), (3, 1, 0), (3, 0, 1), (3, 0, 0), (3, 0, 0))
        assert alg.enabled_rule(c, 1).name == "R2"


class TestRule5:
    """R5: not G_i, own not 00, not (pred 10 and own 01) -> reset."""

    def test_fires_on_stray_tra(self, alg):
        c = cfg((3, 0, 0), (3, 0, 1), (3, 0, 0), (3, 0, 0), (4, 0, 0))
        rule = alg.enabled_rule(c, 1)
        assert rule.name == "R5"
        assert rule.execute(c, 1) == (3, 0, 0)

    def test_secondary_holder_state_excluded(self, alg):
        # pred 1.0 and own 0.1 is the legitimate secondary-holder state.
        c = cfg((3, 1, 0), (3, 0, 1), (3, 0, 0), (3, 0, 0), (4, 0, 0))
        assert alg.enabled_rule(c, 1) is None

    def test_own_00_excluded(self, alg):
        c = cfg((3, 0, 0), (3, 0, 0), (3, 0, 0), (3, 0, 0), (4, 0, 0))
        assert alg.enabled_rule(c, 1) is None

    def test_lower_priority_than_r3(self, alg):
        # pred 1.0 and own 1.0: both R3 and R5 raw guards hold; R3 wins.
        c = cfg((3, 1, 0), (3, 1, 0), (3, 0, 0), (3, 0, 0), (4, 0, 0))
        assert alg.enabled_rule(c, 1).name == "R3"


class TestAtMostOneRule:
    """Algorithm 3: each process is enabled by at most one rule."""

    def test_priority_makes_rule_unique_everywhere(self, alg):
        import itertools

        hs = [(0, 0), (0, 1), (1, 0), (1, 1)]
        for own_hs, pred_hs, succ_hs in itertools.product(hs, repeat=3):
            for g_true in (True, False):
                x1 = 1 if g_true else 0
                c = cfg((0, *pred_hs), (x1, *own_hs), (0, *succ_hs),
                        (0, 0, 0), (0, 0, 0))
                rule = alg.enabled_rule(c, 1)
                # enabled_rule already applies priority; just confirm it is
                # deterministic and never raises.
                if rule is not None:
                    assert rule.name in {"R1", "R2", "R3", "R4", "R5"}


class TestStateSpace:
    def test_4k_states_per_process(self, alg):
        assert alg.state_count_per_process() == 4 * alg.K

    def test_local_state_space_is_exact(self, alg):
        space = set(alg.local_state_space())
        assert (0, 0, 0) in space and (5, 1, 1) in space
        assert (6, 0, 0) not in space

    def test_random_configuration_in_domain(self, alg, ):
        import random

        rng = random.Random(0)
        for _ in range(50):
            c = alg.random_configuration(rng)
            for x, rts, tra in c:
                assert 0 <= x < alg.K and rts in (0, 1) and tra in (0, 1)
