"""Unit tests for local states and configurations."""

import pytest

from repro.core.state import Configuration, SSRminState


class TestSSRminState:
    def test_roundtrip_tuple(self):
        s = SSRminState(3, 1, 0)
        assert SSRminState.from_tuple(s.as_tuple()) == s

    def test_parse_dotted_notation(self):
        assert SSRminState.parse("4.0.1") == SSRminState(4, 0, 1)

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            SSRminState.parse("4.0")

    def test_str_matches_paper_notation(self):
        assert str(SSRminState(3, 1, 0)) == "3.1.0"

    def test_rejects_invalid_flags(self):
        with pytest.raises(ValueError):
            SSRminState(0, 2, 0)
        with pytest.raises(ValueError):
            SSRminState(0, 0, -1)

    def test_rejects_negative_x(self):
        with pytest.raises(ValueError):
            SSRminState(-1, 0, 0)

    def test_ordering_is_lexicographic(self):
        assert SSRminState(1, 0, 0) < SSRminState(2, 0, 0)
        assert SSRminState(1, 0, 1) < SSRminState(1, 1, 0)


class TestConfiguration:
    def test_parse_and_str(self):
        c = Configuration.parse("3.0.1 3.0.0 3.0.0")
        assert str(c) == "(3.0.1, 3.0.0, 3.0.0)"
        assert c.n == 3

    def test_accessors(self):
        c = Configuration.parse("3.0.1, 2.1.0, 0.0.0")
        assert c.x(1) == 2
        assert c.rts(1) == 1
        assert c.tra(0) == 1
        assert c.x_vector() == (3, 2, 0)
        assert c.handshake_vector() == ((0, 1), (1, 0), (0, 0))

    def test_accepts_ssrmin_states(self):
        c = Configuration([SSRminState(1, 0, 0), (2, 1, 1), (0, 0, 1)])
        assert c[0] == (1, 0, 0)
        assert c[1] == (2, 1, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Configuration([])

    def test_rejects_bad_flags(self):
        with pytest.raises(ValueError):
            Configuration([(0, 3, 0)])

    def test_hash_equality_with_tuple(self):
        c = Configuration([(1, 0, 0), (2, 0, 1)])
        assert c == ((1, 0, 0), (2, 0, 1))
        assert hash(c) == hash(((1, 0, 0), (2, 0, 1)))

    def test_replace_is_pure(self):
        c = Configuration([(1, 0, 0), (2, 0, 1)])
        c2 = c.replace(0, (5, 1, 0))
        assert c.x(0) == 1
        assert c2.x(0) == 5

    def test_replace_many_atomic(self):
        c = Configuration([(1, 0, 0), (2, 0, 1), (3, 1, 0)])
        c2 = c.replace_many({0: (9, 0, 0), 2: (8, 0, 0)})
        assert c2.x_vector() == (9, 2, 8)

    def test_sequence_protocol(self):
        c = Configuration([(1, 0, 0), (2, 0, 1)])
        assert len(c) == 2
        assert list(c) == [(1, 0, 0), (2, 0, 1)]
