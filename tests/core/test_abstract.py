"""Unit tests for the abstract inchworm reference model (section 3.1)."""

import pytest

from repro.core.abstract import AbstractInchworm, Phase


class TestConstruction:
    def test_rejects_small_ring(self):
        with pytest.raises(ValueError):
            AbstractInchworm(2)

    def test_rejects_inconsistent_positions(self):
        with pytest.raises(ValueError):
            AbstractInchworm(5, primary=0, secondary=2, phase=Phase.SPLIT)
        with pytest.raises(ValueError):
            AbstractInchworm(5, primary=0, secondary=1, phase=Phase.TOGETHER)

    def test_rejects_out_of_range_primary(self):
        with pytest.raises(ValueError):
            AbstractInchworm(5, primary=5, secondary=5)


class TestAdvance:
    def test_alpha1_raises_rts(self):
        w = AbstractInchworm(5)
        w2 = w.advance()
        assert w2.phase is Phase.READY
        assert w2.holders() == (0,)

    def test_beta_moves_secondary(self):
        w = AbstractInchworm(5).advance().advance()
        assert w.phase is Phase.SPLIT
        assert w.primary == 0 and w.secondary == 1
        assert w.holders() == (0, 1)

    def test_alpha2_moves_primary(self):
        w = AbstractInchworm(5).advance().advance().advance()
        assert w.phase is Phase.TOGETHER
        assert w.holders() == (1,)

    def test_full_lap_returns_home(self):
        w = AbstractInchworm(4)
        for _ in range(w.steps_per_lap()):
            w = w.advance()
        assert w.primary == 0 and w.secondary == 0
        assert w.phase is Phase.TOGETHER

    def test_wraparound(self):
        w = AbstractInchworm(3, primary=2, secondary=2)
        w = w.advance().advance()  # alpha_1 then beta
        assert w.secondary == 0 and w.primary == 2
        w = w.advance()  # alpha_2
        assert w.primary == 0

    def test_acting_process(self):
        w = AbstractInchworm(5)
        assert w.acting_process() == 0  # alpha_1 by holder
        w = w.advance()
        assert w.acting_process() == 1  # beta by successor
        w = w.advance()
        assert w.acting_process() == 0  # alpha_2 by holder

    def test_holders_always_one_or_two_adjacent(self):
        w = AbstractInchworm(6)
        for _ in range(3 * 6 * 2):
            h = w.holders()
            assert 1 <= len(h) <= 2
            if len(h) == 2:
                assert (h[0] + 1) % 6 == h[1] or (h[1] + 1) % 6 == h[0]
            w = w.advance()
