"""Replay every checked-in conformance witness on every test run.

The ``*.jsonl`` files next to this test are deterministic repro scenarios
(see ``docs/TESTING.md``): worst-case convergence paths from the model
checker, channel-fault model-gap scenarios, chaos recovery, and any shrunk
witness of a past divergence.  Each file states its own expectation; a
failure here means either a regression (an ``expect: pass`` file diverged)
or a stale repro (an ``expect: divergence`` file no longer reproduces and
should be deleted or flipped).

Point ``REPRO_CORPUS_DIR`` at another directory to replay an external
corpus (e.g. one emitted by a long fuzz campaign) with the same harness.
"""

import os

import pytest

from repro.verification.conformance import (
    corpus_files,
    replay_witness_file,
    seed_corpus,
)

CORPUS_DIR = os.environ.get(
    "REPRO_CORPUS_DIR", os.path.dirname(os.path.abspath(__file__))
)
FILES = corpus_files(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert FILES, f"no witness files in {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", FILES, ids=[os.path.basename(p) for p in FILES]
)
def test_corpus_witness_replays(path):
    outcome = replay_witness_file(path)
    assert outcome.ok, f"{os.path.basename(path)}: {outcome.message}"


def test_seed_corpus_regenerates_checked_in_files(tmp_path):
    """The generator reproduces byte-identical seed files (so regenerating
    after an algorithm change shows up as a reviewable diff)."""
    paths = seed_corpus(str(tmp_path), verify=False)
    for path in paths:
        name = os.path.basename(path)
        checked_in = os.path.join(CORPUS_DIR, name)
        if not os.path.exists(checked_in):
            continue  # external corpus via REPRO_CORPUS_DIR
        with open(path) as regenerated, open(checked_in) as existing:
            assert regenerated.read() == existing.read(), (
                f"{name} is stale — regenerate with "
                f"`python -m repro fuzz seed-corpus`"
            )
