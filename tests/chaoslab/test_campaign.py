"""Campaign specs, RunStore persistence (schema v2), and grid reports."""

import json
import math
import sqlite3

import pytest

from repro.chaoslab import (
    CampaignSpec,
    FaultConfig,
    FaultType,
    build_campaign_report,
    load_campaign_spec,
    render_campaign_report,
    run_campaign,
)
from repro.observability import RunStore
from repro.observability.store import SCHEMA_VERSION


def _spec(**overrides):
    kwargs = dict(
        name="test-campaign",
        faults=(
            FaultConfig(FaultType.LOSS, at=0.2, duration=0.3, severity=0.4),
            FaultConfig(FaultType.NODE_CRASH, at=0.3),
        ),
        seeds=(7,),
        n=4,
        settle=0.6,
        budget=15.0,
        timer_interval=0.05,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestCampaignSpec:
    def test_grid_expansion(self):
        spec = _spec(seeds=(1, 2, 3))
        experiments = spec.experiments()
        assert spec.cells == len(experiments) == 6
        names = [e.name for e in experiments]
        assert len(set(names)) == 6
        assert "test-campaign/loss-0.4/seed2" in names
        assert "test-campaign/node-crash/seed3" in names

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one fault"):
            CampaignSpec(name="x", faults=())
        with pytest.raises(ValueError, match="at least one seed"):
            _spec(seeds=())
        with pytest.raises(ValueError, match="error_budget"):
            _spec(error_budget=1.5)

    def test_json_roundtrip(self):
        spec = _spec(error_budget=0.25, seeds=(1, 9))
        clone = CampaignSpec.from_json(spec.to_json())
        assert clone == spec

    def test_load_spec_json_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(_spec().to_json()))
        assert load_campaign_spec(str(path)) == _spec()

    def test_load_spec_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "campaign.yaml"
        path.write_text(yaml.safe_dump(_spec().to_json()))
        assert load_campaign_spec(str(path)) == _spec()

    def test_load_spec_rejects_non_mapping(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="mapping"):
            load_campaign_spec(str(path))


class TestStoreSchemaV2:
    def test_fresh_store_has_campaigns_table(self):
        with RunStore(":memory:") as store:
            assert store.counts()["campaigns"] == 0

    def test_v1_store_migrates_in_place(self, tmp_path):
        """A v1-era store (no campaign column, no campaigns table) opens
        cleanly and gains both without touching existing rows."""
        path = str(tmp_path / "v1.sqlite")
        conn = sqlite3.connect(path)
        conn.executescript("""
            CREATE TABLE runs (
                id INTEGER PRIMARY KEY, run_id TEXT NOT NULL UNIQUE,
                kind TEXT NOT NULL, algorithm TEXT, n INTEGER, k INTEGER,
                seed INTEGER, transport TEXT, script TEXT,
                started_utc TEXT, wall_seconds REAL, stabilized INTEGER,
                vacancy_instants INTEGER, violations INTEGER,
                restarts INTEGER, source TEXT, extra TEXT
            );
            INSERT INTO runs (run_id, kind) VALUES ('old-run', 'live');
            PRAGMA user_version = 1;
        """)
        conn.commit()
        conn.close()
        with RunStore(path) as store:
            run = store.get_run("old-run")
            assert run is not None and run["campaign"] is None
            store.insert_campaign("fresh", cells=0)
            assert store.get_campaign("fresh")["cells"] == 0
        version = sqlite3.connect(path).execute(
            "PRAGMA user_version"
        ).fetchone()[0]
        assert version == SCHEMA_VERSION

    def test_newer_schema_refused(self, tmp_path):
        path = str(tmp_path / "future.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(RuntimeError, match="newer"):
            RunStore(path)

    def test_campaign_supersede_drops_member_runs(self):
        with RunStore(":memory:") as store:
            store.insert_campaign("camp", cells=1)
            run_db_id = store.insert_run(
                "camp/loss/seed0", kind="chaos-cell", campaign="camp",
            )
            store.add_epoch(run_db_id, 0, "boot", "boot", 0.0, 0.1)
            assert store.counts()["runs"] == 1
            # Re-inserting the campaign wipes its runs (and, via FK
            # cascade, their children) before the new cells land.
            store.insert_campaign("camp", cells=2)
            store.flush()
            assert store.counts()["runs"] == 0
            assert store.counts()["epochs"] == 0
            assert store.get_campaign("camp")["cells"] == 2


class TestRunCampaign:
    def test_two_cell_campaign_persists_and_reports(self):
        spec = _spec()
        with RunStore(":memory:") as store:
            report = run_campaign(spec, store=store)
            row = store.get_campaign("test-campaign")
            assert row["cells"] == 2
            assert row["completed"] == 2 and row["aborted"] == 0
            assert row["report"]["ok"] is True
            runs = store.campaign_runs("test-campaign")
            assert len(runs) == 2
            for run in runs:
                assert run["kind"] == "chaos-cell"
                assert run["stabilized"] == 1
                assert store.epochs_for(run["id"])  # epochs landed
                assert store.disturbances_for(run["id"])  # ops landed
                assert store.samples_for(run["id"])  # observations landed
        assert report["ok"] and report["failed"] == 0
        assert set(report["classes"]) == {"loss", "node-crash"}
        for stats in report["classes"].values():
            assert not math.isnan(stats["p50"])
            assert stats["p50"] <= stats["p99"] <= stats["max"]
        assert any("time-to-restabilize" in line
                   for line in render_campaign_report(report))

    def test_report_rederives_from_store_alone(self):
        spec = _spec()
        with RunStore(":memory:") as store:
            first = run_campaign(spec, store=store)
            again = build_campaign_report(store, "test-campaign")
        assert again == first

    def test_missing_campaign_report_raises(self):
        with RunStore(":memory:") as store:
            with pytest.raises(ValueError, match="no campaign"):
                build_campaign_report(store, "nope")

    def test_ephemeral_campaign_needs_no_store(self):
        report = run_campaign(_spec(name="ephemeral"))
        assert report["campaign"] == "ephemeral"
        assert report["cells"] == 2


@pytest.mark.slow
def test_acceptance_six_cell_grid_with_store_quantiles():
    """ISSUE acceptance: a declarative >=6-cell fault grid runs against
    live rings and the per-fault-class p50/p99 report derives from the
    RunStore's epochs."""
    spec = CampaignSpec(
        name="acceptance-grid",
        faults=(
            FaultConfig(FaultType.LOSS, at=0.2, duration=0.3, severity=0.5),
            FaultConfig(FaultType.PARTITION, at=0.2, duration=0.3,
                        severity=0.3),
            FaultConfig(FaultType.NODE_CRASH, at=0.3),
        ),
        seeds=(3, 5),
        n=4,
        settle=0.8,
        budget=15.0,
        timer_interval=0.05,
        error_budget=0.0,
    )
    assert spec.cells >= 6
    with RunStore(":memory:") as store:
        report = run_campaign(spec, store=store)
        # The store is the source of truth: quantiles recompute from
        # its epochs table, not from in-memory results.
        rederived = build_campaign_report(store, "acceptance-grid")
        assert rederived["classes"] == report["classes"]
        assert store.counts()["campaigns"] == 1
        assert len(store.campaign_runs("acceptance-grid")) == 6
    assert report["ok"]
    assert report["cells"] == 6 and report["failed"] == 0
    assert set(report["classes"]) == {"loss", "partition", "node-crash"}
    for stats in report["classes"].values():
        assert stats["cells"] >= 2
        assert 0.0 <= stats["p50"] <= stats["p99"] <= stats["max"] < 15.0
