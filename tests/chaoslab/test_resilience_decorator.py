"""The resilience_test decorator: signature surgery and outcome injection."""

import inspect

import pytest

from repro.chaoslab import (
    ChaosExperiment,
    ExperimentStatus,
    FaultConfig,
    FaultType,
    resilience_test,
)
from repro.chaoslab.testing import _coerce_faults


class TestFaultCoercion:
    def test_accepts_configs_members_and_strings(self):
        faults = _coerce_faults([
            FaultConfig(FaultType.LOSS, severity=0.9),
            FaultType.WEDGE,
            "partition:0.3:0.5",
        ])
        assert [f.fault_type for f in faults] == [
            FaultType.LOSS, FaultType.WEDGE, FaultType.PARTITION,
        ]
        assert faults[2].severity == 0.3 and faults[2].duration == 0.5

    def test_single_spec_wraps_into_tuple(self):
        (fault,) = _coerce_faults("node-crash")
        assert fault.fault_type is FaultType.NODE_CRASH


class TestDecorator:
    def test_outcome_is_stripped_from_signature(self):
        """pytest must not see ``outcome`` (it would look like a fixture)."""

        @resilience_test("loss:0.5:0.3", n=4, settle=0.5)
        def probe(tmp_path, outcome):
            pass

        params = list(inspect.signature(probe).parameters)
        assert params == ["tmp_path"]

    def test_missing_outcome_parameter_rejected_at_decoration(self):
        with pytest.raises(TypeError, match="'outcome' parameter"):
            @resilience_test("loss", n=4)
            def no_outcome():
                pass

    def test_make_experiment_is_fresh_per_call(self):
        @resilience_test("node-crash", n=4, seed=5)
        def probe(outcome):
            pass

        first = probe.make_experiment()
        second = probe.make_experiment()
        assert first is not second
        assert first.status is ExperimentStatus.PENDING
        assert isinstance(first, ChaosExperiment)
        assert first.name == "probe" and first.seed == 5

    def test_outcome_injected_and_test_body_runs(self):
        ran = {}

        @resilience_test(
            [FaultConfig(FaultType.LOSS, at=0.2, duration=0.3,
                         severity=0.5)],
            n=4, seed=11, settle=0.5, budget=15.0,
        )
        def probe(outcome):
            ran["status"] = outcome.status
            ran["ok"] = outcome.ok
            return "verdict"

        assert probe() == "verdict"
        assert ran["status"] is ExperimentStatus.COMPLETED
        assert ran["ok"] is True

    def test_fixture_arguments_pass_through(self, tmp_path):
        @resilience_test("node-crash", n=4, settle=0.5, budget=15.0)
        def probe(path, outcome):
            assert outcome.status is ExperimentStatus.COMPLETED
            return path

        assert probe(tmp_path) == tmp_path
