"""Experiment lifecycle, the abort-on-breach path, and clean teardown."""

import pytest

from repro.chaoslab import (
    ChaosExperiment,
    ExperimentResult,
    ExperimentScheduler,
    ExperimentStatus,
    FaultConfig,
    FaultType,
    PredicatePoint,
    default_points,
    persist_experiment,
    run_experiment,
)
from repro.observability import RunStore


def _loss_experiment(**overrides):
    kwargs = dict(
        name="exp/loss",
        faults=(FaultConfig(FaultType.LOSS, at=0.2, duration=0.3,
                            severity=0.5),),
        n=4,
        seed=11,
        settle=0.5,
        budget=15.0,
        timer_interval=0.05,
    )
    kwargs.update(overrides)
    return ChaosExperiment(**kwargs)


def _loss_tripwire():
    """A fatal observation point that fires on the first loss epoch."""
    return PredicatePoint(
        "loss-tripwire",
        lambda ctx: (
            ctx.event == "epoch_open"
            and ctx.payload["epoch"].label.startswith("loss")
        ),
        fatal=True,
    )


class TestLifecycle:
    def test_pending_to_completed(self):
        experiment = _loss_experiment()
        assert experiment.status is ExperimentStatus.PENDING
        result = run_experiment(experiment)
        assert experiment.status is ExperimentStatus.COMPLETED
        assert result.status is ExperimentStatus.COMPLETED
        assert result.ok
        assert result.report["health"]["stabilized"]
        assert result.time_to_restabilize is not None
        # The canonical panel sampled every boundary.
        points = {obs.point for obs in result.observations}
        assert "restabilize-budget" in points
        assert "token-census" in points
        assert "vacancy" in points

    def test_compile_merges_and_sorts_faults(self):
        experiment = ChaosExperiment(
            name="exp/multi",
            faults=(
                FaultConfig(FaultType.NODE_CRASH, at=1.0),
                FaultConfig(FaultType.LOSS, at=0.3, duration=0.2),
            ),
            n=4,
        )
        script = experiment.compile()
        assert [op.at for op in script.ops] == sorted(
            op.at for op in script.ops
        )
        assert {op.kind for op in script.ops} == {"crash", "loss"}

    def test_budget_overrun_is_nonfatal_breach(self):
        """Zero budget: the cell fails its verdict but still completes."""
        result = run_experiment(_loss_experiment(budget=0.0))
        assert result.status is ExperimentStatus.COMPLETED
        assert not result.fatal
        assert not result.ok
        assert any(
            o.point == "restabilize-budget" and o.breach and not o.fatal
            for o in result.observations
        )

    def test_result_json_roundtrip(self):
        result = run_experiment(_loss_experiment())
        clone = ExperimentResult.from_json(result.to_json())
        assert clone.status is result.status
        assert clone.ok == result.ok
        assert clone.experiment.name == result.experiment.name
        assert [o.to_json() for o in clone.observations] == [
            o.to_json() for o in result.observations
        ]


class TestAbortPath:
    def test_breach_aborts_cancels_script_and_tears_down_clean(self):
        # The second loss window sits far in the future: reaching
        # ABORTED quickly proves the tripwire cancelled the director
        # instead of playing the script out.
        experiment = _loss_experiment(
            name="exp/abort",
            faults=(
                FaultConfig(FaultType.LOSS, at=0.2, duration=0.3,
                            severity=0.6),
                FaultConfig(FaultType.LOSS, at=30.0, duration=0.5,
                            severity=0.6),
            ),
            settle=30.0,
        )
        result = run_experiment(
            experiment, points=default_points() + [_loss_tripwire()],
        )
        assert experiment.status is ExperimentStatus.ABORTED
        assert result.status is ExperimentStatus.ABORTED
        assert result.fatal
        assert not result.ok
        # The run never reached the 30s ops: abort was immediate.
        assert result.report["wall_clock"] < 10.0
        # Clean teardown: no asyncio tasks survived the supervisor.
        assert result.leaked_tasks == 0

    def test_abort_disabled_runs_to_completion(self):
        experiment = _loss_experiment(
            name="exp/no-abort", abort_on_breach=False,
        )
        result = run_experiment(
            experiment, points=default_points() + [_loss_tripwire()],
        )
        assert result.status is ExperimentStatus.COMPLETED
        assert result.fatal  # the tripwire still fired and was recorded
        assert not result.ok

    def test_persisted_abort_opens_exactly_one_critical_incident(self):
        experiment = _loss_experiment(name="exp/abort-incident")
        result = run_experiment(
            experiment, points=default_points() + [_loss_tripwire()],
        )
        assert result.status is ExperimentStatus.ABORTED
        with RunStore(":memory:") as store:
            store.insert_campaign("abort-campaign", cells=1)
            run_db_id = persist_experiment(store, "abort-campaign", result)
            incidents = store.incidents(run_db_id)
            assert len(incidents) == 1
            (incident,) = incidents
            assert incident["severity"] == "critical"
            assert incident["kind"] == "invariant-breach"
            assert "loss-tripwire" in incident["title"]
            # The run row carries the aborted status for the report.
            run = store.get_run("exp/abort-incident")
            assert run["extra"]["status"] == "aborted"
            assert run["campaign"] == "abort-campaign"

    def test_completed_cell_opens_no_incident(self):
        result = run_experiment(_loss_experiment(name="exp/clean"))
        with RunStore(":memory:") as store:
            store.insert_campaign("clean-campaign", cells=1)
            run_db_id = persist_experiment(store, "clean-campaign", result)
            assert store.incidents(run_db_id) == []


class TestScheduler:
    def test_sequential_batch_preserves_order_and_status(self):
        experiments = [
            _loss_experiment(name=f"batch/{i}", seed=i) for i in range(2)
        ]
        seen = []
        scheduler = ExperimentScheduler(
            workers=1,
            on_progress=lambda i, r, done, total: seen.append(
                (i, r.status, done, total)
            ),
        )
        results = scheduler.run(experiments)
        assert [r.experiment.name for r in results] == [
            "batch/0", "batch/1"
        ]
        assert all(
            r.status is ExperimentStatus.COMPLETED for r in results
        )
        assert seen == [
            (0, ExperimentStatus.COMPLETED, 1, 2),
            (1, ExperimentStatus.COMPLETED, 2, 2),
        ]

    def test_parallel_rejects_custom_points(self):
        with pytest.raises(ValueError, match="process boundary"):
            ExperimentScheduler(workers=2, points=[_loss_tripwire()])
