"""FaultType/FaultConfig: parsing, validation, and lowering to ChaosOps."""

import pytest

from repro.chaoslab.faults import (
    FaultConfig,
    FaultType,
    WINDOW_TYPES,
    parse_fault_flag,
)
from repro.runtime.chaos import (
    ChaosScript,
    POINT_KINDS,
    WINDOW_KINDS,
    build_script,
)


class TestFaultType:
    def test_parse_accepts_values_names_and_members(self):
        assert FaultType.parse("loss") is FaultType.LOSS
        assert FaultType.parse("node-crash") is FaultType.NODE_CRASH
        assert FaultType.parse("NODE_CRASH") is FaultType.NODE_CRASH
        assert FaultType.parse(FaultType.WEDGE) is FaultType.WEDGE

    def test_parse_rejects_unknown_with_catalog(self):
        with pytest.raises(ValueError, match="unknown fault type") as exc:
            FaultType.parse("gremlins")
        assert "loss" in str(exc.value)
        assert "wedge" in str(exc.value)

    def test_taxonomy_covers_every_runtime_primitive(self):
        """Every ChaosOp kind is reachable from some fault type."""
        kinds = set()
        for fault_type in FaultType:
            for op in FaultConfig(fault_type).compile(n=6):
                kinds.add(op.kind)
        assert set(WINDOW_KINDS) <= kinds
        assert set(POINT_KINDS) <= kinds


class TestFaultConfig:
    def test_severity_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            FaultConfig(FaultType.LOSS, severity=1.5)

    def test_window_faults_need_positive_duration(self):
        with pytest.raises(ValueError, match="positive duration"):
            FaultConfig(FaultType.PARTITION, duration=0.0)
        # Point faults don't care.
        FaultConfig(FaultType.NODE_CRASH, duration=0.0)

    def test_loss_lowering_uses_severity_as_probability(self):
        (op,) = FaultConfig(
            FaultType.LOSS, at=0.2, duration=0.4, severity=0.7
        ).compile(n=4)
        assert (op.at, op.kind, op.duration) == (0.2, "loss", 0.4)
        assert op.params == {"p": 0.7}

    def test_partition_edges_validated_against_ring_size(self):
        with pytest.raises(ValueError, match="outside the 3-ring"):
            FaultConfig(
                FaultType.PARTITION, params={"edges": [(0, 7)]}
            ).compile(n=3)

    def test_partition_severity_picks_cut_width(self):
        (single,) = FaultConfig(
            FaultType.PARTITION, severity=0.2
        ).compile(n=6)
        (bisect,) = FaultConfig(
            FaultType.PARTITION, severity=0.9
        ).compile(n=6)
        assert len(single.params["edges"]) == 1
        assert len(bisect.params["edges"]) == 2

    def test_wedge_and_crash_target_nodes_stay_in_ring(self):
        for fault_type in (FaultType.NODE_CRASH, FaultType.WEDGE):
            (op,) = FaultConfig(
                fault_type, params={"node": 11}
            ).compile(n=4)
            assert 0 <= op.params["node"] < 4

    def test_cache_corruption_defaults_match_named_script(self):
        """The default volley IS the cache_scramble script, op for op."""
        ops = FaultConfig(FaultType.CACHE_CORRUPTION, at=0.5).compile(n=6)
        golden = build_script("cache_scramble", 6).ops
        assert [op.to_json() for op in ops] == [
            op.to_json() for op in golden
        ]

    def test_compile_is_deterministic(self):
        for fault_type in FaultType:
            config = FaultConfig(fault_type)
            first = [op.to_json() for op in config.compile(n=5, seed=3)]
            again = [op.to_json() for op in config.compile(n=5, seed=3)]
            assert first == again

    def test_json_roundtrip(self):
        config = FaultConfig(
            FaultType.REORDER, at=1.5, duration=2.0, severity=0.25,
            params={"jitter": 0.1},
        )
        assert FaultConfig.from_json(config.to_json()) == config

    def test_from_json_requires_type(self):
        with pytest.raises(ValueError, match="'type'"):
            FaultConfig.from_json({"at": 0.5})

    def test_every_fault_compiles_into_a_valid_script(self):
        """Compiled ops always satisfy ChaosScript/ChaosOp invariants."""
        for fault_type in FaultType:
            for n in (1, 2, 3, 8):
                ops = FaultConfig(fault_type).compile(n=n)
                script = ChaosScript(name="x", ops=ops)
                assert script.duration >= 0.0


class TestParseFaultFlag:
    def test_type_only(self):
        config = parse_fault_flag("wedge")
        assert config.fault_type is FaultType.WEDGE
        assert config.severity == 0.5

    def test_type_severity_duration(self):
        config = parse_fault_flag("loss:0.8:1.5")
        assert config.fault_type is FaultType.LOSS
        assert config.severity == 0.8
        assert config.duration == 1.5

    def test_empty_segments_keep_defaults(self):
        config = parse_fault_flag("partition::0.4")
        assert config.severity == 0.5
        assert config.duration == 0.4

    def test_too_many_segments_rejected(self):
        with pytest.raises(ValueError, match="--fault takes"):
            parse_fault_flag("loss:0.5:1.0:extra")

    def test_slug_distinguishes_severity_for_window_types(self):
        assert parse_fault_flag("loss:0.8").slug == "loss-0.8"
        assert parse_fault_flag("node-crash").slug == "node-crash"
        assert FaultType.PARTITION in WINDOW_TYPES
        assert parse_fault_flag("partition:0.9").slug == "partition"
