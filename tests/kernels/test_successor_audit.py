"""Exhaustive small-n audit of the shared successor/execution arithmetic.

Both former carriers of the digit-delta arithmetic — the shared-memory
fastpath (``simulation/fastpath/ssrmin_kernel.py``) and the
message-passing codec (``messagepassing/fastpath/codecs.py``) — now
delegate to :mod:`repro.kernels.successor`.  This audit walks *every*
packed configuration of a small ring and asserts the two call sites
produce bit-identical words through the shared module, for SSRmin and
Dijkstra alike.
"""

from itertools import product

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.kernels.successor import (
    execute_dijkstra_word,
    execute_ssrmin_word,
    next_x,
)
from repro.messagepassing.fastpath.codecs import (
    DijkstraMPCodec,
    SSRminMPCodec,
)
from repro.simulation.fastpath.dijkstra_kernel import DijkstraKernel
from repro.simulation.fastpath.ssrmin_kernel import SSRminKernel

N, K = 3, 4


def _ssrmin_configs():
    """Every packed (x, h) configuration of the n=3, K=4 ring."""
    digits = [(x, h) for x in range(K) for h in range(4)]
    return product(digits, repeat=N)


def test_ssrmin_call_sites_agree_exhaustively():
    alg = SSRmin(N, K)
    kernel = SSRminKernel(alg)
    codec = SSRminMPCodec(alg)
    checked = 0
    for config in _ssrmin_configs():
        states = tuple(
            (x, h >> 1, h & 1) for x, h in config
        )
        kernel.load(states)
        for i in kernel.enabled():
            rid = kernel.rule_id(i)
            own = (config[i][0] << 2) | config[i][1]
            pred = (config[i - 1][0] << 2) | config[i - 1][1]
            succ = (config[(i + 1) % N][0] << 2) | config[(i + 1) % N][1]
            # The codec resolves the same rule on the coherent view...
            assert codec.rule_id(own, pred, succ, i) == rid
            # ...and both call sites execute it to the same packed word
            # through the one shared module.
            shared = execute_ssrmin_word(rid, own, pred, i, K)
            assert codec.execute(rid, own, pred, succ, i) == shared
            x, rts, tra = kernel.update(i)
            assert (x << 2) | (rts << 1) | tra == shared
            checked += 1
    assert checked > 1000  # every enabled process of all (4*4)^3 configs


def test_dijkstra_call_sites_agree_exhaustively():
    alg = DijkstraKState(N, K)
    kernel = DijkstraKernel(alg)
    codec = DijkstraMPCodec(alg)
    checked = 0
    for config in product(range(K), repeat=N):
        kernel.load(config)
        for i in kernel.enabled():
            rid = kernel.rule_id(i)
            pred = config[i - 1]
            assert codec.rule_id(config[i], pred, 0, i) == rid
            shared = execute_dijkstra_word(rid, pred, K)
            assert codec.execute(rid, config[i], pred, 0, i) == shared
            assert kernel.update(i) == shared
            checked += 1
    assert checked > 50


def test_next_x_is_the_only_successor_rule():
    for pred in range(K):
        assert next_x(pred, 0, K) == (pred + 1) % K  # bottom increments
        for i in range(1, N):
            assert next_x(pred, i, K) == pred  # others copy


def test_execute_rejects_unknown_rule_ids():
    with pytest.raises(ValueError):
        execute_ssrmin_word(0, 0, 0, 0, K)
    with pytest.raises(ValueError):
        execute_ssrmin_word(6, 0, 0, 0, K)
    with pytest.raises(ValueError):
        execute_dijkstra_word(0, 0, K)
