"""The vectorized convergence backend vs the scalar engines.

``run_convergence_cells`` is the batched-cell workhorse of the sweep
engine; these tests pin its two load-bearing contracts:

* **group-composition invariance** — a cell's result is identical whether
  it runs alone or inside any batch (the per-cell-seed determinism the
  resumable store relies on);
* **cross-engine agreement** — under the synchronous daemon the
  trajectory is a deterministic function of the initial configuration, so
  the batched backend must report exactly the step count the scalar
  fastpath engine measures from the same start.
"""

import numpy as np
import pytest

from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import SynchronousDaemon
from repro.kernels.batched import (
    DAEMON_FAMILIES,
    STREAM_INIT_H,
    STREAM_INIT_X,
    parse_daemon,
    run_convergence_cells,
)
from repro.kernels.prng import grid_integers
from repro.simulation.convergence import converge


@pytest.mark.parametrize("daemon", ["synchronous", "central",
                                    "bernoulli:0.5"])
def test_group_composition_invariance(daemon):
    seeds = list(range(10))
    together = run_convergence_cells(6, seeds, daemon)
    for seed, expected in zip(seeds, together):
        alone = run_convergence_cells(6, [seed], daemon)[0]
        assert alone == expected
    shuffled = run_convergence_cells(6, seeds[::-1], daemon)
    assert shuffled == together[::-1]


def test_all_daemon_families_converge():
    for daemon in ("synchronous", "central", "bernoulli:0.3",
                   "bernoulli:0.9"):
        results = run_convergence_cells(5, range(6), daemon)
        assert all(r["converged"] for r in results)
        assert all(r["steps"] >= 0 for r in results)


def test_synchronous_agrees_with_scalar_engine():
    n, K, seeds = 6, 7, list(range(8))
    X = grid_integers(seeds, STREAM_INIT_X, 0, n, K)
    H = grid_integers(seeds, STREAM_INIT_H, 0, n, 4)
    batched = run_convergence_cells(n, seeds, "synchronous", K=K)
    alg = SSRmin(n, K)
    for row, result in enumerate(batched):
        init = tuple(
            (int(X[row, i]), int(H[row, i]) >> 1, int(H[row, i]) & 1)
            for i in range(n)
        )
        scalar = converge(alg, SynchronousDaemon(), init)
        assert scalar.converged
        assert scalar.steps == result["steps"]


def test_budget_exhaustion_reports_unconverged():
    # A 2-step budget cannot converge every random start at n=8.
    results = run_convergence_cells(8, range(32), "central", budget=2)
    assert any(not r["converged"] for r in results)
    for r in results:
        assert r["budget"] == 2
        if not r["converged"]:
            assert r["steps"] == -1


def test_daemon_parsing():
    assert parse_daemon("synchronous")[0] == "synchronous"
    assert parse_daemon("central")[0] == "central"
    assert parse_daemon("bernoulli:0.25") == ("bernoulli", 0.25)
    assert set(DAEMON_FAMILIES) == {"synchronous", "central", "bernoulli"}
    with pytest.raises(ValueError):
        parse_daemon("lottery")
    with pytest.raises(ValueError):
        parse_daemon("bernoulli:0")
    with pytest.raises(ValueError):
        parse_daemon("bernoulli:1.5")


def test_parameter_validation():
    with pytest.raises(ValueError):
        run_convergence_cells(2, [0])
    with pytest.raises(ValueError):
        run_convergence_cells(5, [0], K=5)
