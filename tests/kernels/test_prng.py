"""Counter-based PRNG: determinism, composition independence, bounds."""

import numpy as np

from repro.kernels.prng import counter_keys, grid_integers, grid_uniforms


def test_same_key_same_stream():
    a = grid_uniforms([1, 2, 3], stream=2, step=7, lanes=5)
    b = grid_uniforms([1, 2, 3], stream=2, step=7, lanes=5)
    assert np.array_equal(a, b)


def test_batch_composition_independence():
    """A seed's draws never depend on which other seeds share the batch."""
    together = grid_uniforms([11, 22, 33], stream=0, step=4, lanes=8)
    for row, seed in enumerate((11, 22, 33)):
        alone = grid_uniforms([seed], stream=0, step=4, lanes=8)
        assert np.array_equal(together[row], alone[0])


def test_streams_and_steps_decorrelate():
    base = grid_uniforms([5], stream=0, step=1, lanes=16)
    assert not np.array_equal(base, grid_uniforms([5], 1, 1, 16))
    assert not np.array_equal(base, grid_uniforms([5], 0, 2, 16))
    assert not np.array_equal(base, grid_uniforms([6], 0, 1, 16))


def test_uniforms_in_unit_interval():
    u = grid_uniforms(list(range(64)), stream=3, step=9, lanes=32)
    assert u.shape == (64, 32)
    assert float(u.min()) >= 0.0
    assert float(u.max()) < 1.0


def test_integers_cover_range_without_overflow():
    draws = grid_integers(list(range(200)), stream=1, step=0, lanes=4,
                          bound=7)
    assert draws.shape == (200, 4)
    assert int(draws.min()) >= 0
    assert int(draws.max()) <= 6
    # All residues show up across 800 draws of a 7-way die.
    assert set(np.unique(draws)) == set(range(7))


def test_negative_seeds_are_legal_keys():
    keys = counter_keys([-1, -2], stream=0, step=0)
    assert keys.dtype == np.uint64
    a = grid_uniforms([-1], stream=0, step=3, lanes=2)
    b = grid_uniforms([-1], stream=0, step=3, lanes=2)
    assert np.array_equal(a, b)
