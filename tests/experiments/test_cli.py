"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig04" in out and "thm2" in out and "ext4" in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "lem1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out
        assert "lem1" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "lem1", "fig02", "--fast"]) == 0
        out = capsys.readouterr().out
        assert out.count("REPRODUCED") == 2

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "nope"])


class TestReport:
    def test_report_writes_file(self, tmp_path, capsys):
        # Restrict to a cheap subset via direct generate_report to keep the
        # test fast; the CLI path itself is exercised with one experiment.
        from repro.experiments.report import generate_report

        path = tmp_path / "EXP.md"
        text = generate_report(path=str(path), fast=True,
                               experiment_ids=["lem1", "fig03"])
        assert path.exists()
        assert path.read_text() == text
        assert "lem1" in text and "fig03" in text
        assert "2/2 experiments reproduced" in text


class TestDemo:
    def test_demo_renders(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "3.0.1PS/1" in out       # Figure 4 first cell
        assert "node  0" in out         # timeline strip
        assert "graceful-handover" in out


class TestArgparse:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestVerify:
    def test_ssrmin_passes(self, capsys):
        assert main(["verify", "ssrmin", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "SELF-STABILIZING" in out
        assert "worst-case convergence steps" in out

    def test_small_k_dijkstra_fails_with_nonzero_exit(self, capsys):
        assert main(["verify", "dijkstra", "-n", "3", "-K", "2"]) == 1
        out = capsys.readouterr().out
        assert "NOT self-stabilizing" in out

    def test_four_state(self, capsys):
        assert main(["verify", "four-state", "-n", "3"]) == 0

    def test_central_daemon_option(self, capsys):
        assert main(["verify", "dijkstra", "-n", "3", "--daemon",
                     "central"]) == 0
