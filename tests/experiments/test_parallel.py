"""Unit tests for the parallel experiment runner."""

import pytest

from repro.experiments.parallel import results_by_id, run_experiments_parallel


class TestRunParallel:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            run_experiments_parallel(["lem1"], workers=0)

    def test_sequential_degenerate_case(self):
        results = run_experiments_parallel(["lem1", "fig02"], fast=True,
                                           workers=1)
        assert [r.experiment_id for r in results] == ["lem1", "fig02"]
        assert all(r.match for r in results)

    def test_two_workers_match_sequential(self):
        seq = run_experiments_parallel(["lem1", "fig02", "fig03"], fast=True,
                                       workers=1)
        par = run_experiments_parallel(["lem1", "fig02", "fig03"], fast=True,
                                       workers=2)
        assert [r.experiment_id for r in par] == [r.experiment_id for r in seq]
        for a, b in zip(par, seq):
            assert a.match == b.match
            assert a.rows == b.rows  # experiments are seeded: bit-identical

    def test_results_by_id(self):
        results = run_experiments_parallel(["lem1"], fast=True, workers=1)
        indexed = results_by_id(results)
        assert set(indexed) == {"lem1"}

    def test_default_runs_whole_registry_ids(self):
        from repro.experiments import list_experiments

        # Only check the id plumbing (don't actually run everything here).
        ids = list_experiments()
        assert len(ids) >= 29
