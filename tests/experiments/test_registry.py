"""Unit tests for the experiment registry and result rendering."""

import pytest

from repro.experiments.registry import (
    ExperimentResult,
    REGISTRY,
    get_experiment,
    list_experiments,
    run_experiment,
)


class TestRegistry:
    def test_all_index_ids_registered(self):
        expected = {
            "fig01", "fig02", "fig03", "fig04", "fig11", "fig12", "fig13",
            "thm1", "thm2", "lem1", "lem2", "lem3", "lem4", "lem5", "thm4",
            "abl1", "abl2", "abl3", "abl4", "abl5", "app1",
            "ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext9",
        }
        assert set(list_experiments()) == expected
        assert set(REGISTRY) == expected

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_runners_resolve(self):
        for eid in list_experiments():
            assert callable(get_experiment(eid))

    def test_run_experiment_returns_result(self):
        result = run_experiment("lem1", fast=True)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "lem1"


class TestExperimentResult:
    def make(self, match=True):
        return ExperimentResult(
            experiment_id="x",
            title="Title",
            paper_claim="claim",
            measured="measured",
            match=match,
            header=["a", "b"],
            rows=[["1", "22"], ["333", "4"]],
            notes="note",
        )

    def test_table_alignment(self):
        table = self.make().table()
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_table_empty_without_header(self):
        r = ExperimentResult("x", "t", "c", "m", True)
        assert r.table() == ""

    def test_render_verdicts(self):
        assert "[REPRODUCED]" in self.make(True).render()
        assert "[MISMATCH]" in self.make(False).render()

    def test_render_includes_notes_and_claim(self):
        text = self.make().render()
        assert "claim" in text and "note" in text
