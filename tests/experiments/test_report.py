"""Unit tests for the EXPERIMENTS.md report generator."""

from repro.experiments.registry import ExperimentResult
from repro.experiments.report import generate_report, render_markdown


def make_result(eid="x1", match=True):
    return ExperimentResult(
        experiment_id=eid,
        title=f"Title {eid}",
        paper_claim="the claim",
        measured="the measurement",
        match=match,
        header=["a", "b"],
        rows=[["1", "2"]],
        notes="a note",
    )


class TestRenderMarkdown:
    def test_summary_counts(self):
        text = render_markdown([make_result("a"), make_result("b", False)])
        assert "1/2 experiments reproduced" in text

    def test_sections_per_experiment(self):
        text = render_markdown([make_result("a"), make_result("b")])
        assert "## a — Title a" in text
        assert "## b — Title b" in text

    def test_verdict_rendering(self):
        text = render_markdown([make_result(match=False)])
        assert "MISMATCH" in text

    def test_claim_measured_notes_present(self):
        text = render_markdown([make_result()])
        assert "**Paper claim:** the claim" in text
        assert "**Measured:** the measurement" in text
        assert "**Notes:** a note" in text

    def test_table_in_code_fence(self):
        text = render_markdown([make_result()])
        assert "```" in text
        assert "a  b" in text


class TestGenerateReport:
    def test_subset_generation(self, tmp_path):
        path = tmp_path / "out.md"
        text = generate_report(path=str(path), fast=True,
                               experiment_ids=["fig02"])
        assert "fig02" in text
        assert path.read_text() == text

    def test_no_path_returns_text_only(self):
        text = generate_report(path=None, fast=True, experiment_ids=["fig02"])
        assert text.startswith("# EXPERIMENTS")
