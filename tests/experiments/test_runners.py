"""Every registered experiment must reproduce its paper claim (fast mode).

This is the suite-level statement of deliverable (d): all figures, theorems
and ablations regenerate with the paper's shape.
"""

import pytest

from repro.experiments.registry import list_experiments, run_experiment

# thm2/thm4/abl2 take a few seconds even in fast mode; still worth running.
ALL_IDS = list_experiments()


@pytest.mark.parametrize("eid", ALL_IDS)
def test_experiment_reproduces(eid):
    result = run_experiment(eid, fast=True)
    assert result.match, result.render()


def test_fig04_trace_is_exact():
    """The strictest check: Figure 4 byte-for-byte (cells)."""
    from repro.experiments.runners_figures import FIG4_EXPECTED, run_fig04

    result = run_fig04(fast=True)
    assert result.match
    assert len(FIG4_EXPECTED) == 16
    assert [row[1:] for row in result.rows] == FIG4_EXPECTED


def test_results_have_tables():
    for eid in ("fig01", "thm1", "abl3"):
        result = run_experiment(eid, fast=True)
        assert result.rows, f"{eid} produced no table rows"
        assert result.header
