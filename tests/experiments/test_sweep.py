"""Unit tests for the parameter-sweep utility."""

import pytest

from repro.experiments.sweep import Sweep, SweepPoint, table


class TestSweep:
    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            Sweep(lambda p, s: 0.0, trials=0)

    def test_runs_all_points(self):
        sweep = Sweep(lambda p, s: float(p), trials=3, seed=0)
        results = sweep.run([1, 2, 3])
        assert [sp.point for sp in results] == [1, 2, 3]
        assert [sp.summary.mean for sp in results] == [1.0, 2.0, 3.0]

    def test_seeds_are_deterministic_and_distinct(self):
        seen = []
        sweep = Sweep(lambda p, s: seen.append(s) or 0.0, trials=2, seed=100)
        sweep.run(["a", "b"])
        assert seen == [100, 101, 10_100, 10_101]
        seen2 = []
        Sweep(lambda p, s: seen2.append(s) or 0.0, trials=2, seed=100).run(
            ["a", "b"]
        )
        assert seen == seen2

    def test_adding_points_keeps_earlier_seeds(self):
        """Stable seeding: extending the sweep must not reshuffle existing
        measurements."""
        record = {}

        def trial(p, s):
            record.setdefault(p, []).append(s)
            return 0.0

        Sweep(trial, trials=2, seed=7).run([10])
        first = list(record[10])
        record.clear()
        Sweep(trial, trials=2, seed=7).run([10, 20])
        assert record[10] == first

    def test_run_dict(self):
        sweep = Sweep(lambda p, s: p * 2.0, trials=2, seed=0)
        d = sweep.run_dict([1, 4])
        assert d[1].mean == 2.0
        assert d[4].mean == 8.0

    def test_real_convergence_trial(self):
        """End-to-end: sweep SSRmin convergence steps over ring sizes."""
        from repro.core.ssrmin import SSRmin
        from repro.daemons.distributed import RandomSubsetDaemon
        from repro.simulation.convergence import converge
        import random

        def trial(n, seed):
            alg = SSRmin(n, n + 1)
            init = alg.random_configuration(random.Random(seed))
            res = converge(alg, RandomSubsetDaemon(seed=seed), init)
            assert res.converged
            return float(res.steps)

        results = Sweep(trial, trials=5, seed=1).run([4, 8])
        assert all(sp.summary.mean >= 0 for sp in results)


class TestTable:
    def test_header_and_rows(self):
        sweep = Sweep(lambda p, s: float(p), trials=2, seed=0)
        header, rows = table(sweep.run([3, 5]), header_label="n")
        assert header == ["n", "mean", "max", "std"]
        assert rows[0][0] == "3"
        assert rows[1][1] == "5.0"
