"""Unit tests for composed fault scenarios."""

import pytest

from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon
from repro.faults.scenarios import FaultScenario, burst_fault, periodic_faults


class TestBurstFault:
    def test_single_burst_recovers(self):
        alg = SSRmin(5, 6)
        result = burst_fault(alg, RandomSubsetDaemon(seed=0), faults=3, seed=0)
        assert len(result.records) == 1
        assert result.records[0].corrupted_processes == 3
        assert result.records[0].recovery_steps >= 0

    def test_recovery_within_quadratic_budget(self):
        alg = SSRmin(6, 7)
        for seed in range(5):
            result = burst_fault(alg, RandomSubsetDaemon(seed=seed),
                                 faults=6, seed=seed)
            assert result.max_recovery <= 10 * 36 + 100


class TestPeriodicFaults:
    def test_rounds_counted(self):
        alg = SSRmin(4, 5)
        result = periodic_faults(alg, RandomSubsetDaemon(seed=1), rounds=5,
                                 seed=1)
        assert len(result.records) == 5

    def test_availability_between_zero_and_one(self):
        alg = SSRmin(4, 5)
        result = periodic_faults(alg, RandomSubsetDaemon(seed=2), rounds=8,
                                 seed=2)
        assert 0.0 <= result.availability <= 1.0
        assert result.total_steps > 0

    def test_single_fault_recovery_fast(self):
        """A single corrupted process recovers much faster than the worst
        case — typically within a lap or two."""
        alg = SSRmin(6, 7)
        result = periodic_faults(alg, RandomSubsetDaemon(seed=3), rounds=10,
                                 seed=3)
        assert result.max_recovery <= 6 * alg.n * alg.n


class TestFaultScenario:
    def test_explicit_initial(self):
        alg = SSRmin(4, 5)
        scenario = FaultScenario(alg, RandomSubsetDaemon(seed=4),
                                 faults_per_injection=1, injections=2, seed=4)
        result = scenario.run(initial=alg.initial_configuration())
        assert len(result.records) == 2

    def test_records_sequenced(self):
        alg = SSRmin(4, 5)
        scenario = FaultScenario(alg, RandomSubsetDaemon(seed=5),
                                 faults_per_injection=2, injections=3, seed=5)
        result = scenario.run()
        assert [r.fault_index for r in result.records] == [0, 1, 2]
        assert all(r.corrupted_processes == 2 for r in result.records)
