"""Unit tests for fault injectors."""

import random

import pytest

from repro.core.ssrmin import SSRmin
from repro.faults.injection import FaultInjector, corrupt_process, corrupt_processes
from repro.messagepassing.cst import transformed


class TestCorruptProcess:
    def test_stays_in_domain(self, ssrmin5, rng):
        config = ssrmin5.initial_configuration()
        for _ in range(50):
            config = corrupt_process(ssrmin5, config, 2, rng)
            x, rts, tra = config[2]
            assert 0 <= x < ssrmin5.K and rts in (0, 1) and tra in (0, 1)

    def test_only_target_changes(self, ssrmin5, rng):
        config = ssrmin5.initial_configuration()
        corrupted = corrupt_process(ssrmin5, config, 3, rng)
        for i in range(5):
            if i != 3:
                assert corrupted[i] == config[i]

    def test_works_on_plain_tuple_configs(self, rng):
        from repro.algorithms.dijkstra import DijkstraKState

        alg = DijkstraKState(4, 5)
        config = alg.initial_configuration()
        corrupted = corrupt_process(alg, config, 1, rng)
        assert isinstance(corrupted, tuple)
        assert 0 <= corrupted[1] < 5

    def test_corrupt_many(self, ssrmin5, rng):
        config = ssrmin5.initial_configuration()
        corrupted = corrupt_processes(ssrmin5, config, [0, 1, 2], rng)
        assert corrupted.n == 5


class TestFaultInjector:
    def test_hit_config_logs(self, ssrmin5):
        inj = FaultInjector(ssrmin5, seed=0)
        inj.hit_config(ssrmin5.initial_configuration(), count=3)
        assert len(inj.log) == 3
        assert all(kind == "state" for kind, _ in inj.log)

    def test_deterministic_under_seed(self, ssrmin5):
        a = FaultInjector(ssrmin5, seed=1)
        b = FaultInjector(ssrmin5, seed=1)
        ca = a.hit_config(ssrmin5.initial_configuration(), count=5)
        cb = b.hit_config(ssrmin5.initial_configuration(), count=5)
        assert ca.states == cb.states

    def test_hit_network_state(self, ssrmin5):
        net = transformed(ssrmin5, seed=2)
        net.start()
        inj = FaultInjector(ssrmin5, seed=2)
        inj.hit_network_state(net, count=2)
        assert sum(1 for kind, _ in inj.log if kind == "node-state") == 2

    def test_hit_network_cache(self, ssrmin5):
        net = transformed(ssrmin5, seed=3)
        net.start()
        inj = FaultInjector(ssrmin5, seed=3)
        inj.hit_network_cache(net, count=2)
        targets = [t for kind, t in inj.log if kind == "cache"]
        assert len(targets) == 2
        for node, neighbor in targets:
            assert neighbor in ((node - 1) % 5, (node + 1) % 5)
