"""Unit tests for the camera-network application layer."""

import pytest

from repro.apps.energy import EnergyModel
from repro.apps.monitoring import CameraNetwork


class TestCleanBoot:
    def test_continuous_observation(self):
        cam = CameraNetwork(5, seed=0)
        report = cam.run(150.0)
        assert report.coverage == 1.0
        assert report.min_active >= 1
        assert report.max_active <= 2
        assert report.continuous_observation

    def test_all_handovers_graceful(self):
        cam = CameraNetwork(5, seed=1)
        report = cam.run(200.0)
        assert report.handovers > 0
        assert report.graceful_handovers == report.handovers

    def test_energy_report_optional(self):
        cam = CameraNetwork(5, seed=2)
        assert cam.run(50.0).energy is None

    def test_energy_report_present(self):
        cam = CameraNetwork(5, seed=3)
        report = cam.run(100.0, energy_model=EnergyModel())
        assert report.energy is not None
        assert len(report.energy.duty_cycle) == 5

    def test_duty_cycle_near_two_over_n(self):
        """Two tokens shared by n nodes: each is active ~2/n of the time
        (counting the overlap periods)."""
        n = 6
        cam = CameraNetwork(n, seed=4)
        report = cam.run(400.0, energy_model=EnergyModel())
        for duty in report.energy.duty_cycle:
            assert 0.5 / n < duty < 4.0 / n

    def test_active_cameras_query(self):
        cam = CameraNetwork(5, seed=5)
        cam.network.start()
        assert len(cam.active_cameras()) >= 1


class TestDirtyBoot:
    def test_start_unclean_eventually_covers(self):
        cam = CameraNetwork(5, seed=6, start_clean=False)
        cam.network.run(200.0)  # stabilization warmup
        report = cam.run(200.0, warmup=200.0)
        assert report.coverage == 1.0
        assert report.min_active >= 1

    def test_rejects_small_ring(self):
        with pytest.raises(ValueError):
            CameraNetwork(2)
