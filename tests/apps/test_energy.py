"""Unit tests for the energy model."""

import pytest

from repro.apps.energy import EnergyModel, integrate_energy
from repro.messagepassing.timeline import TokenTimeline


def timeline(points, end):
    tl = TokenTimeline()
    for t, h in points:
        tl.record(t, h)
    tl.finish(end)
    return tl


class TestEnergyModel:
    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            EnergyModel(active_power=-1)

    def test_rejects_overfull_battery(self):
        with pytest.raises(ValueError):
            EnergyModel(capacity=10, initial_charge=20)


class TestIntegrateEnergy:
    def test_requires_intervals(self):
        tl = TokenTimeline()
        tl.finish(0.0)
        with pytest.raises(ValueError):
            integrate_energy(EnergyModel(), tl, 3)

    def test_active_node_drains_idle_node_charges(self):
        model = EnergyModel(active_power=10, idle_power=0, harvest_rate=2,
                            capacity=100, initial_charge=50)
        tl = timeline([(0.0, [0])], end=5.0)
        report = integrate_energy(model, tl, 2)
        # Node 0: 50 + (2 - 10) * 5 = 10; node 1: 50 + 2*5 = 60.
        assert report.final_charge[0] == pytest.approx(10.0)
        assert report.final_charge[1] == pytest.approx(60.0)

    def test_charge_clamped_to_capacity(self):
        model = EnergyModel(active_power=10, idle_power=0, harvest_rate=5,
                            capacity=60, initial_charge=50)
        tl = timeline([(0.0, [0])], end=10.0)
        report = integrate_energy(model, tl, 2)
        assert report.final_charge[1] == 60.0  # clamped

    def test_charge_clamped_at_zero(self):
        model = EnergyModel(active_power=100, idle_power=0, harvest_rate=0,
                            capacity=50, initial_charge=10)
        tl = timeline([(0.0, [0])], end=10.0)
        report = integrate_energy(model, tl, 1)
        assert report.final_charge[0] == 0.0
        assert report.min_charge[0] == 0.0
        assert not report.sustainable

    def test_duty_cycle_and_active_time(self):
        model = EnergyModel()
        tl = timeline([(0.0, [0]), (4.0, [1])], end=10.0)
        report = integrate_energy(model, tl, 2)
        assert report.active_time[0] == pytest.approx(4.0)
        assert report.active_time[1] == pytest.approx(6.0)
        assert report.duty_cycle[0] == pytest.approx(0.4)

    def test_saving_factor(self):
        model = EnergyModel(active_power=10, idle_power=0, harvest_rate=0,
                            capacity=1000, initial_charge=500)
        tl = timeline([(0.0, [0])], end=10.0)
        report = integrate_energy(model, tl, 4)
        # Baseline: 4 nodes * 10 * 10 = 400; actual: 1 active * 10 * 10.
        assert report.baseline_energy == pytest.approx(400.0)
        assert report.actual_energy == pytest.approx(100.0)
        assert report.saving_factor == pytest.approx(4.0)

    def test_overlap_counts_both_nodes(self):
        model = EnergyModel(active_power=10, idle_power=0, harvest_rate=0,
                            capacity=1000, initial_charge=500)
        tl = timeline([(0.0, [0, 1])], end=5.0)
        report = integrate_energy(model, tl, 3)
        assert report.active_time[0] == report.active_time[1] == 5.0
        assert report.actual_energy == pytest.approx(100.0)
