"""Unit tests for the critical-section service API."""

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.apps.mutex import CriticalSectionService, Session
from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay


class TestSession:
    def test_duration(self):
        s = Session(node=0, start=1.0, end=3.5)
        assert s.duration == 2.5
        assert not s.open

    def test_open_session_has_no_duration(self):
        s = Session(node=0, start=1.0)
        assert s.open
        with pytest.raises(ValueError):
            _ = s.duration


class TestServiceOverSSRmin:
    def make(self, seed=0, duration=150.0):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=seed, delay_model=UniformDelay(0.5, 1.5))
        service = CriticalSectionService(net)
        net.run(duration)
        return service

    def test_sessions_recorded_for_every_node(self):
        service = self.make()
        counts = service.session_counts()
        assert all(counts[i] > 0 for i in range(5))

    def test_sessions_are_well_formed(self):
        service = self.make(seed=1)
        for s in service.closed_sessions():
            assert s.end is not None and s.end >= s.start

    def test_callbacks_fire_in_pairs(self):
        events = []
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=2, delay_model=UniformDelay(0.5, 1.5))
        CriticalSectionService(
            net,
            on_enter=lambda i, t: events.append(("enter", i, t)),
            on_exit=lambda i, t: events.append(("exit", i, t)),
        )
        net.run(100.0)
        # Per node: enters and exits alternate, starting with enter.
        for i in range(5):
            mine = [(kind, t) for kind, j, t in events if j == i]
            for k, (kind, _) in enumerate(mine):
                assert kind == ("enter" if k % 2 == 0 else "exit")

    def test_graceful_handover_overlap_is_total(self):
        service = self.make(seed=3, duration=200.0)
        assert service.overlapping_handover_fraction() == 1.0

    def test_occupancy_positive_and_balanced(self):
        service = self.make(seed=4, duration=300.0)
        occ = [service.occupancy(i) for i in range(5)]
        assert all(o > 0 for o in occ)
        assert max(occ) < 3 * min(occ)  # roughly fair rotation


class TestServiceOverSSToken:
    def test_sstoken_handover_never_overlaps(self):
        alg = DijkstraKState(5, 6)
        net = transformed(alg, seed=5, delay_model=UniformDelay(0.5, 1.5))
        service = CriticalSectionService(net)
        net.run(200.0)
        assert service.closed_sessions()
        assert service.overlapping_handover_fraction() == 0.0
