"""Unit tests for handover extraction and gracefulness."""

from repro.apps.handover import all_graceful, extract_handovers, handover_stats
from repro.messagepassing.timeline import TokenTimeline


def timeline(points, end):
    tl = TokenTimeline()
    for t, h in points:
        tl.record(t, h)
    tl.finish(end)
    return tl


class TestExtractHandovers:
    def test_graceful_overlap(self):
        tl = timeline([(0.0, [0]), (2.0, [0, 1]), (3.0, [1])], end=5.0)
        events = extract_handovers(tl)
        assert len(events) == 2  # {0} -> {0,1} -> {1}, both transfers covered
        assert all(e.graceful for e in events)
        assert all_graceful(tl)

    def test_abrupt_gap(self):
        tl = timeline([(0.0, [0]), (2.0, []), (3.0, [1])], end=5.0)
        events = extract_handovers(tl)
        assert len(events) == 1
        assert not events[0].graceful
        assert events[0].gap == 1.0
        assert events[0].from_holders == (0,)
        assert events[0].to_holders == (1,)
        assert not all_graceful(tl)

    def test_no_handover_single_holder(self):
        tl = timeline([(0.0, [2])], end=10.0)
        assert extract_handovers(tl) == []

    def test_empty_timeline(self):
        tl = TokenTimeline()
        tl.finish(1.0)
        assert extract_handovers(tl) == []

    def test_multiple_cycles(self):
        tl = timeline(
            [(0.0, [0]), (1.0, [0, 1]), (2.0, [1]), (3.0, [1, 2]), (4.0, [2])],
            end=5.0,
        )
        events = extract_handovers(tl)
        assert len(events) == 4
        assert all(e.graceful for e in events)


class TestHandoverStats:
    def test_counts(self):
        tl = timeline(
            [(0.0, [0]), (1.0, []), (2.0, [1]), (3.0, [1, 2]), (4.0, [2])],
            end=5.0,
        )
        stats = handover_stats(tl)
        assert stats["handovers"] == 3
        assert stats["abrupt"] == 1
        assert stats["graceful"] == 2
        assert stats["total_gap"] == 1.0
        assert stats["max_gap"] == 1.0

    def test_empty(self):
        tl = timeline([(0.0, [0])], end=1.0)
        stats = handover_stats(tl)
        assert stats["handovers"] == 0
        assert stats["max_gap"] == 0.0
