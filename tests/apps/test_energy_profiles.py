"""Unit tests for time-varying harvest profiles."""

import math

import pytest

from repro.apps.energy import (
    EnergyModel,
    constant_harvest,
    diurnal_harvest,
    integrate_energy,
)
from repro.messagepassing.timeline import TokenTimeline


def timeline(points, end):
    tl = TokenTimeline()
    for t, h in points:
        tl.record(t, h)
    tl.finish(end)
    return tl


class TestProfiles:
    def test_constant(self):
        p = constant_harvest(3.0)
        assert p(0.0) == p(100.0) == 3.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            constant_harvest(-1.0)

    def test_diurnal_shape(self):
        p = diurnal_harvest(peak=10.0, day_length=24.0)
        assert p(0.0) == pytest.approx(0.0, abs=1e-9)      # sunrise
        assert p(6.0) == pytest.approx(10.0)               # solar noon
        assert p(12.0) == pytest.approx(0.0, abs=1e-9)     # sunset
        assert p(18.0) == 0.0                              # midnight

    def test_diurnal_periodicity(self):
        p = diurnal_harvest(peak=5.0, day_length=10.0)
        for t in (1.0, 3.3, 7.9):
            assert p(t) == pytest.approx(p(t + 10.0))

    def test_diurnal_sunrise_offset(self):
        p = diurnal_harvest(peak=4.0, day_length=8.0, sunrise=2.0)
        assert p(2.0) == pytest.approx(0.0, abs=1e-9)
        assert p(4.0) == pytest.approx(4.0)

    def test_diurnal_rejects_bad_params(self):
        with pytest.raises(ValueError):
            diurnal_harvest(peak=-1.0, day_length=10.0)
        with pytest.raises(ValueError):
            diurnal_harvest(peak=1.0, day_length=0.0)


class TestIntegrationWithProfiles:
    def test_constant_profile_matches_flat_model(self):
        model = EnergyModel(active_power=5, idle_power=1, harvest_rate=2,
                            capacity=100, initial_charge=50)
        tl = timeline([(0.0, [0]), (4.0, [1])], end=10.0)
        flat = integrate_energy(model, tl, 2)
        profiled = integrate_energy(model, tl, 2,
                                    harvest_profile=constant_harvest(2.0))
        for a, b in zip(flat.final_charge, profiled.final_charge):
            assert a == pytest.approx(b, abs=1e-6)

    def test_night_drains_day_recovers(self):
        """With diurnal harvest, charge dips at night and recovers by day."""
        model = EnergyModel(active_power=0.0, idle_power=1.0,
                            harvest_rate=0.0, capacity=1000,
                            initial_charge=500)
        day = diurnal_harvest(peak=4.0, day_length=20.0)
        # No one active: pure idle drain vs harvest.
        tl = timeline([(0.0, [])], end=20.0)
        report = integrate_energy(model, tl, 1, harvest_profile=day,
                                  max_slice=0.1)
        # Mean harvest over daylight half = 4 * 2/pi ~ 2.55 over 10 units
        # = 25.5 in; drain 1.0 * 20 = 20 out -> net positive.
        assert report.final_charge[0] > 500
        # The minimum occurs during the night (charge dipped below final).
        assert report.min_charge[0] <= 500

    def test_energy_balance_accounting(self):
        model = EnergyModel(active_power=2.0, idle_power=0.0,
                            harvest_rate=0.0, capacity=10_000,
                            initial_charge=5_000)
        tl = timeline([(0.0, [0])], end=10.0)
        report = integrate_energy(model, tl, 3,
                                  harvest_profile=constant_harvest(0.0))
        assert report.actual_energy == pytest.approx(20.0)
        assert report.final_charge[0] == pytest.approx(5_000 - 20.0)
