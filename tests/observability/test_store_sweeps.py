"""RunStore schema v3: sweeps / sweep_cells accessors and migration."""

import sqlite3

import pytest

from repro.observability.store import SCHEMA_VERSION, RunStore


def test_schema_version_is_three():
    assert SCHEMA_VERSION == 3


def test_upsert_sweep_keeps_cells_and_updates_columns():
    with RunStore(":memory:") as store:
        sweep_id = store.upsert_sweep(
            "grid", spec={"name": "grid"}, cells=10, status="running",
        )
        store.upsert_sweep_cell(sweep_id, 0, cell_key="n=5/seed=0",
                                params={"n": 5, "seed": 0}, seed=0,
                                engine="batched", wall_seconds=0.01,
                                result={"steps": 4})
        # Re-upserting the sweep row must NOT clear its cells (unlike
        # campaigns, sweeps accumulate across run/resume passes).
        again = store.upsert_sweep("grid", completed=1, status="completed")
        assert again == sweep_id
        store.flush()
        row = store.get_sweep("grid")
        assert row["status"] == "completed"
        assert row["spec"] == {"name": "grid"}  # untouched columns survive
        cells = store.sweep_cells_for(sweep_id)
        assert len(cells) == 1
        assert cells[0]["result"] == {"steps": 4}
        assert cells[0]["params"] == {"n": 5, "seed": 0}


def test_sweep_cell_upsert_is_idempotent_per_index():
    with RunStore(":memory:") as store:
        sweep_id = store.upsert_sweep("s", cells=2)
        store.upsert_sweep_cell(sweep_id, 1, result={"steps": 9}, seed=1)
        store.upsert_sweep_cell(sweep_id, 1, result={"steps": 9}, seed=1,
                                engine="batched")
        store.flush()
        assert store.sweep_cell_indexes(sweep_id) == [1]
        cell = store.sweep_cells_for(sweep_id)[0]
        assert cell["engine"] == "batched"


def test_reset_sweep_cells():
    with RunStore(":memory:") as store:
        sweep_id = store.upsert_sweep("s", cells=2)
        store.upsert_sweep_cell(sweep_id, 0, result={})
        store.upsert_sweep_cell(sweep_id, 1, result={})
        store.reset_sweep_cells(sweep_id)
        store.flush()
        assert store.sweep_cell_indexes(sweep_id) == []


def test_list_sweeps_and_counts():
    with RunStore(":memory:") as store:
        a = store.upsert_sweep("a", cells=1)
        store.upsert_sweep("b", cells=2)
        store.upsert_sweep_cell(a, 0, result={"steps": 1})
        store.flush()
        names = [row["name"] for row in store.list_sweeps()]
        assert set(names) == {"a", "b"}
        counts = store.counts()
        assert counts["sweeps"] == 2
        assert counts["sweep_cells"] == 1


def test_migration_from_v2_store(tmp_path):
    """A pre-sweep (v2) store upgrades in place, additively."""
    path = str(tmp_path / "store.sqlite")
    with RunStore(path) as store:
        store.insert_run("r1", kind="experiment", algorithm="SSRmin")
    # Downgrade the file to the v2 shape: no sweep tables, version 2.
    conn = sqlite3.connect(path)
    conn.executescript(
        "DROP TABLE sweep_cells; DROP TABLE sweeps; PRAGMA user_version = 2;"
    )
    conn.commit()
    conn.close()
    with RunStore(path) as store:
        # Reopen migrated: sweep tables exist, old rows intact.
        sweep_id = store.upsert_sweep("post-upgrade", cells=1)
        store.upsert_sweep_cell(sweep_id, 0, result={"steps": 2})
        store.flush()
        assert store.get_run("r1")["algorithm"] == "SSRmin"
        assert store.sweep_cell_indexes(sweep_id) == [0]
    conn = sqlite3.connect(path)
    assert conn.execute("PRAGMA user_version").fetchone()[0] == 3
    conn.close()


def test_newer_store_rejected(tmp_path):
    path = str(tmp_path / "store.sqlite")
    RunStore(path).close()
    conn = sqlite3.connect(path)
    conn.execute("PRAGMA user_version = 99")
    conn.commit()
    conn.close()
    with pytest.raises(RuntimeError, match="newer"):
        RunStore(path)
