"""CLI-level tests: runs, slo, top, live --store, live status --watch."""

import json

from repro import cli
from repro.observability.store import RunStore


def _record_run(tmp_path, algorithm="ssrmin", seed=3):
    store = str(tmp_path / "store.sqlite")
    rc = cli.main([
        "live", "chaos", "--script", "loss_burst",
        "--algorithm", algorithm, "--n", "4",
        "--transport", "loopback", "--seed", str(seed),
        "--timer-interval", "0.05", "--stabilize-timeout", "20",
        "--telemetry-dir", str(tmp_path), "--store", store,
    ])
    assert rc == 0
    return store


def test_live_chaos_records_into_store_and_slo_report_passes(
        tmp_path, capsys):
    store = _record_run(tmp_path)
    capsys.readouterr()

    rc = cli.main(["runs", "list", "--store", store])
    out = capsys.readouterr().out
    assert rc == 0
    assert "live-chaos-loss_burst-ssrmin-n4-seed3" in out

    rc = cli.main(["slo", "report", "--store", store])
    out = capsys.readouterr().out
    assert rc == 0
    assert "p99" in out
    assert "ssrmin-zero-vacancy" in out
    assert "OK" in out


def test_no_store_flag_skips_recording(tmp_path):
    store = str(tmp_path / "store.sqlite")
    rc = cli.main([
        "live", "run", "--n", "4", "--transport", "loopback",
        "--seed", "1", "--timer-interval", "0.05",
        "--stabilize-timeout", "20", "--duration", "0.2",
        "--telemetry-dir", str(tmp_path), "--store", store, "--no-store",
    ])
    assert rc == 0
    assert not (tmp_path / "store.sqlite").exists()


def test_runs_show_and_query(tmp_path, capsys):
    store = _record_run(tmp_path)
    capsys.readouterr()

    rc = cli.main(["runs", "show", "live-chaos-loss_burst-ssrmin-n4-seed3",
                   "--store", store])
    out = capsys.readouterr().out
    assert rc == 0
    assert "epochs (" in out and "incidents (" in out
    assert "loss_burst" in out

    rc = cli.main(["runs", "query",
                   "SELECT algorithm, vacancy_instants FROM runs",
                   "--store", store, "--json"])
    rows = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert rows[0]["algorithm"] == "SSRmin"
    assert rows[0]["vacancy_instants"] == 0

    rc = cli.main(["runs", "query", "DELETE FROM runs", "--store", store])
    assert rc == 1

    rc = cli.main(["runs", "show", "no-such-run", "--store", store])
    assert rc == 1


def test_runs_commands_fail_cleanly_without_store(tmp_path, capsys):
    rc = cli.main(["runs", "list", "--store",
                   str(tmp_path / "missing.sqlite")])
    assert rc == 1
    assert "no run store" in capsys.readouterr().err


def test_runs_backfill_cli(tmp_path, capsys):
    run_dir = tmp_path / "runs" / "demo"
    run_dir.mkdir(parents=True)
    (run_dir / "manifest.json").write_text(json.dumps({
        "experiment_id": "demo", "created_utc": "2026-08-01T00:00:00Z",
        "runs": [{"algorithm": "SSRmin", "n": 5}],
    }))
    store = str(tmp_path / "store.sqlite")
    rc = cli.main(["runs", "backfill", "--dir", str(tmp_path / "runs"),
                   "--store", store])
    out = capsys.readouterr().out
    assert rc == 0
    assert "imported 1 run(s)" in out
    with RunStore(store) as opened:
        assert opened.get_run("demo")["kind"] == "experiment"


def test_slo_report_burns_on_failed_run(tmp_path, capsys):
    store_path = str(tmp_path / "store.sqlite")
    with RunStore(store_path) as store:
        rid = store.insert_run(
            "live-bad", kind="live", algorithm="SSRmin", n=4,
            stabilized=0, vacancy_instants=3, violations=0,
        )
        store.add_epoch(rid, 0, "boot", "boot", 0.0)
    rc = cli.main(["slo", "report", "--store", store_path,
                   "--open-incidents"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "BURN" in out
    with RunStore(store_path) as store:
        assert any(i["kind"] == "slo-burn" for i in store.incidents())


def test_top_plain_cli(tmp_path, capsys):
    store = str(tmp_path / "store.sqlite")
    rc = cli.main([
        "top", "--plain", "--rings", "2", "--n", "4",
        "--duration", "0.4", "--refresh", "0.1",
        "--timer-interval", "0.05", "--store", store,
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "repro top — frame" in out
    assert "ssrmin-0" in out and "dijkstra-1" in out
    with RunStore(store) as opened:
        assert {r["run_id"] for r in opened.list_runs()} == \
            {"top-ssrmin-0", "top-dijkstra-1"}


def test_live_status_watch_renders_dashboard_rows(tmp_path, capsys):
    _record_run(tmp_path)
    capsys.readouterr()
    rc = cli.main(["live", "status", "--watch", "--iterations", "1",
                   "--telemetry-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "live status — frame 1" in out
    # The same columns `repro top` renders (shared renderer).
    assert "RING" in out and "CENSUS" in out and "STATUS" in out
    assert "STABLE" in out


def test_live_status_watch_empty_dir_exits_nonzero(tmp_path, capsys):
    rc = cli.main(["live", "status", "--watch", "--iterations", "1",
                   "--telemetry-dir", str(tmp_path)])
    assert rc == 1
