"""Dashboard: the shared row renderer and the plain-text top frontend."""

from repro.observability.dashboard import (
    RingRow,
    TopRingSpec,
    render_rows,
    top_plain,
)
from repro.observability.store import RunStore

LIVE_BLOCK = {
    "algorithm": "SSRmin", "n": 4, "restarts": 1,
    "health": {
        "stabilized": True,
        "vacancy_instants": 0,
        "guarantee_violations": [],
        "epochs": [
            {"label": "boot", "started_at": 0.0, "stabilized_at": 0.01},
            {"label": "loss@1.00s", "started_at": 1.0, "stabilized_at": 1.25,
             "time_to_stabilize": 0.25},
        ],
    },
}


def test_ring_row_from_live_report():
    row = RingRow.from_live_report("demo", LIVE_BLOCK)
    assert row.algorithm == "SSRmin"
    assert row.status == "STABLE"
    assert row.epoch_label == "loss@1.00s"
    assert row.clock == 0.25
    assert row.restarts == 1


def test_ring_row_flags_breach_and_failure():
    block = {
        "algorithm": "SSRmin", "n": 4,
        "health": {"stabilized": False, "epochs": [
            {"label": "boot", "started_at": 0.0, "stabilized_at": None},
        ]},
    }
    assert RingRow.from_live_report("x", block).status == "FAIL"
    block["health"]["stabilized"] = True
    block["health"]["guarantee_violations"] = [{"epoch_index": 0}]
    assert RingRow.from_live_report("x", block).status == "BREACH"


def test_render_rows_is_fixed_width_table():
    lines = render_rows([RingRow.from_live_report("demo", LIVE_BLOCK)])
    assert lines[0].startswith("RING")
    assert "CENSUS" in lines[0] and "VAC" in lines[0]
    assert len(lines) == 3  # header, rule, one ring
    assert "SSRmin" in lines[2] and "STABLE" in lines[2]


def test_top_plain_streams_frames_and_records_runs():
    store = RunStore(":memory:")
    frames = []
    specs = [
        TopRingSpec(name="a", algorithm="ssrmin", n=4, seed=1,
                    timer_interval=0.05),
        TopRingSpec(name="b", algorithm="dijkstra", n=4, seed=2,
                    timer_interval=0.05),
    ]
    reports = top_plain(specs, duration=0.5, refresh=0.1,
                        store=store, out=frames.append)
    assert len(reports) == 2
    assert all(r["health"]["stabilized"] for r in reports)
    text = "\n".join(frames)
    assert "repro top — frame" in text
    assert "ssrmin-a" not in text  # names are used verbatim
    assert "a" in text and "b" in text
    # Every ring left a queryable run behind.
    runs = {r["run_id"] for r in store.list_runs()}
    assert runs == {"top-a", "top-b"}
    store.close()
