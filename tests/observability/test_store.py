"""Unit tests for the sqlite run store."""

import sqlite3

import pytest

from repro.observability.store import SCHEMA_VERSION, RunStore


def test_schema_version_stamped(tmp_path):
    path = str(tmp_path / "store.sqlite")
    with RunStore(path):
        pass
    conn = sqlite3.connect(path)
    assert conn.execute("PRAGMA user_version").fetchone()[0] == SCHEMA_VERSION
    conn.close()


def test_insert_run_upserts_by_run_id():
    with RunStore(":memory:") as store:
        a = store.insert_run("run-1", kind="live", algorithm="SSRmin", n=4)
        b = store.insert_run("run-1", kind="live", algorithm="SSRmin", n=8)
        assert a == b
        rows = store.list_runs()
        assert len(rows) == 1
        assert rows[0]["n"] == 8


def test_epoch_lifecycle_and_time_to_stabilize():
    with RunStore(":memory:") as store:
        rid = store.insert_run("run-1", kind="live", algorithm="SSRmin")
        store.add_epoch(rid, idx=0, label="boot", cls="boot", started_at=0.0)
        store.add_epoch(rid, idx=1, label="loss@1.00s", cls="loss",
                        started_at=1.0)
        store.stabilize_epoch(rid, idx=1, stabilized_at=1.25)
        epochs = store.epochs_for(rid)
        assert epochs[0]["stabilized_at"] is None
        assert epochs[1]["time_to_stabilize"] == pytest.approx(0.25)


def test_incident_open_update_resolve_reopen():
    with RunStore(":memory:") as store:
        rid = store.insert_run("run-1", kind="live")
        iid = store.open_incident(
            run_db_id=rid, opened_at=1.0, kind="disturbance",
            severity="warning", title="t", details={"labels": ["loss"]},
        )
        assert store.incidents(rid, open_only=True)
        store.update_incident(iid, resolved_at=2.0, severity="critical")
        assert not store.incidents(rid, open_only=True)
        inc = store.incidents(rid)[0]
        assert inc["severity"] == "critical"
        assert inc["details"] == {"labels": ["loss"]}
        store.update_incident(iid, reopen=True)
        assert store.incidents(rid, open_only=True)


def test_samples_roundtrip_and_counts():
    with RunStore(":memory:") as store:
        rid = store.insert_run("run-1", kind="live")
        store.add_samples(rid, [(1.0, "m", 3.0, {"ring": "a"}),
                                (2.0, "m", 4.0, None)])
        rows = store.samples_for(rid, name="m")
        assert [r["value"] for r in rows] == [3.0, 4.0]
        assert rows[0]["labels"] == {"ring": "a"}
        assert store.counts()["samples"] == 2


def test_query_rejects_writes():
    with RunStore(":memory:") as store:
        store.insert_run("run-1", kind="live")
        assert store.query("SELECT run_id FROM runs")[0]["run_id"] == "run-1"
        with pytest.raises(ValueError):
            store.query("DELETE FROM runs")
        with pytest.raises(ValueError):
            store.query("UPDATE runs SET kind='x'")


def test_buffered_writes_reach_disk_after_close(tmp_path):
    path = str(tmp_path / "store.sqlite")
    store = RunStore(path)
    rid = store.insert_run("run-1", kind="live")
    store.add_disturbance(rid, at=0.5, kind="loss", duration=1.0,
                          params={"p": 0.6})
    store.close()
    with RunStore(path) as reopened:
        assert reopened.counts()["disturbances"] == 1
        d = reopened.disturbances_for(rid)[0]
        assert d["params"] == {"p": 0.6}
