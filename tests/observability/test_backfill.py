"""Backfill importer: manifests, traces, orphans, idempotency."""

import json
import os

from repro.observability.backfill import backfill_runs, import_manifest
from repro.observability.store import RunStore

LIVE_MANIFEST = {
    "experiment_id": "live-chaos-demo",
    "created_utc": "2026-08-01T00:00:00Z",
    "command": "repro live chaos",
    "wall_seconds": 4.0,
    "metrics": {"counters": {
        "live_messages_sent_total": {"series": [{"value": 321.0}]},
        "untouched_total": {"series": [{"value": 0.0}]},
    }},
    "extra": {"live": {
        "algorithm": "SSRmin", "n": 4, "K": 5, "seed": 3,
        "transport": "loopback", "restarts": 0,
        "script": {"name": "loss_burst"},
        "health": {
            "stabilized": True,
            "vacancy_instants": 0,
            "guarantee_violations": [
                {"time": 1.1, "epoch": "loss@1.00s", "epoch_index": 1},
            ],
            "epochs": [
                {"label": "boot", "started_at": 0.0, "stabilized_at": 0.01},
                {"label": "loss@1.00s", "started_at": 1.0,
                 "stabilized_at": None},
                {"label": "loss-healed@2.00s", "started_at": 2.0,
                 "stabilized_at": 2.2},
            ],
        },
    }},
}

EXPERIMENT_MANIFEST = {
    "experiment_id": "fig02",
    "created_utc": "2026-08-01T00:00:00Z",
    "wall_seconds": 1.0,
    "runs": [{"algorithm": "SSRmin", "n": 5, "K": 6, "seed": 0}],
    "metrics": {"counters": {
        "steps_total": {"series": [{"value": 1500.0}]},
    }},
}


def _write(run_dir, name, payload):
    os.makedirs(run_dir, exist_ok=True)
    with open(os.path.join(run_dir, name), "w") as fh:
        json.dump(payload, fh)


def test_import_live_manifest_expands_health_block(tmp_path):
    _write(str(tmp_path / "live-chaos-demo"), "manifest.json", LIVE_MANIFEST)
    with RunStore(":memory:") as store:
        run_id = import_manifest(
            store, str(tmp_path / "live-chaos-demo" / "manifest.json"))
        run = store.get_run(run_id)
        assert run["kind"] == "live"
        assert run["script"] == "loss_burst"
        assert run["violations"] == 1
        epochs = store.epochs_for(run["id"])
        assert [e["class"] for e in epochs] == ["boot", "loss", "loss"]
        incidents = store.incidents(run["id"])
        kinds = sorted(i["kind"] for i in incidents)
        # One merged-outage incident + the recorded guarantee breach.
        assert kinds == ["disturbance", "guarantee-breach"]
        disturbance = next(
            i for i in incidents if i["kind"] == "disturbance")
        assert disturbance["resolved_at"] == 2.2
        assert disturbance["details"]["backfilled"] is True
        samples = {s["name"] for s in store.samples_for(run["id"])}
        assert samples == {"live_messages_sent_total"}  # zero total skipped


def test_backfill_tree_imports_orphans_and_prunes(tmp_path):
    base = tmp_path / "runs"
    _write(str(base / "live-chaos-demo"), "manifest.json", LIVE_MANIFEST)
    _write(str(base / "fig02"), "manifest.json", EXPERIMENT_MANIFEST)
    os.makedirs(base / "nope")
    (base / "nope" / "trace.jsonl").touch()  # empty: an interrupted run
    with RunStore(":memory:") as store:
        report = backfill_runs(store, str(base), prune_empty=True)
        assert sorted(report.imported) == ["fig02", "live-chaos-demo"]
        assert report.orphans == [str(base / "nope")]
        assert report.pruned == [str(base / "nope")]
        assert not os.path.exists(base / "nope")
        assert report.ok
        fig02 = store.get_run("fig02")
        assert fig02["kind"] == "experiment"
        assert fig02["algorithm"] == "SSRmin"

        # Idempotent: a second pass refreshes rows, no duplicates.
        again = backfill_runs(store, str(base))
        assert sorted(again.imported) == ["fig02", "live-chaos-demo"]
        assert store.counts()["runs"] == 2
        assert store.counts()["epochs"] == 3  # superseded, not duplicated
        assert "imported 2 run(s)" in again.summary()


def test_backfill_missing_dir_reports_error(tmp_path):
    with RunStore(":memory:") as store:
        report = backfill_runs(store, str(tmp_path / "absent"))
        assert not report.ok


def test_backfill_skips_non_run_dirs_with_warning(tmp_path):
    """Sweep checkpoints and stray user trees are not orphans."""
    base = tmp_path / "runs"
    _write(str(base / "fig02"), "manifest.json", EXPERIMENT_MANIFEST)
    # The sweep layer's checkpoint tree: a nested non-run directory.
    os.makedirs(base / "sweeps" / "grid")
    with open(base / "sweeps" / "grid" / "cells.jsonl", "w") as fh:
        fh.write('{"index": 0}\n')
    # A flat dir with non-telemetry content.
    os.makedirs(base / "notes")
    with open(base / "notes" / "todo.txt", "w") as fh:
        fh.write("not a run\n")
    with RunStore(":memory:") as store:
        report = backfill_runs(store, str(base), prune_empty=True)
    assert report.imported == ["fig02"]
    assert report.orphans == []
    assert report.pruned == []
    assert sorted(report.skipped) == [str(base / "notes"),
                                      str(base / "sweeps")]
    assert len(report.warnings) == 2
    assert all("not a run directory" in w for w in report.warnings)
    # Nothing was deleted: skipping is observational, never destructive.
    assert os.path.isfile(base / "sweeps" / "grid" / "cells.jsonl")
    assert os.path.isfile(base / "notes" / "todo.txt")
    assert report.ok  # warnings are not errors
    assert "skipped 2 non-run dir(s)" in report.summary()
    assert report.to_json()["skipped"] == report.skipped
