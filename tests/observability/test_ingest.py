"""Live ingestion: runtime events and sweep cells land in the store."""

from repro.observability.ingest import StoreSubscriber
from repro.observability.store import RunStore
from repro.runtime.chaos import ChaosOp, ChaosScript
from repro.runtime.harness import live_chaos, live_run
from repro.telemetry import telemetry_session
from repro.telemetry.events import Event

STABILIZE_TIMEOUT = 20.0

MINI_LOSS = ChaosScript(name="mini_loss", ops=(
    ChaosOp(at=0.2, kind="loss", duration=0.4, params={"rate": 0.6}),
))


def test_live_chaos_run_lands_in_store_without_step_detail():
    store = RunStore(":memory:")
    with telemetry_session() as tel:
        subscriber = StoreSubscriber(store, run_id="t-1", session=tel)
        tel.subscribe(subscriber, detail=False)
        # The run-store subscriber must NOT flip the engines into per-step
        # event publishing — that's the whole overhead story.
        assert not tel.step_detail
        live_chaos(
            script=MINI_LOSS, algorithm="ssrmin", n=4, seed=7,
            transport="loopback", timer_interval=0.05,
            stabilize_timeout=STABILIZE_TIMEOUT,
        )
        subscriber.close()
    store.flush()
    run = store.get_run("t-1")
    assert run["kind"] == "live"
    assert run["algorithm"] == "SSRmin"
    assert run["script"] == "mini_loss"
    assert run["stabilized"] == 1
    assert run["vacancy_instants"] == 0
    epochs = store.epochs_for(run["id"])
    # boot + loss window open + loss-healed boundary, all stabilized.
    assert [e["class"] for e in epochs] == ["boot", "loss", "loss"]
    assert all(e["stabilized_at"] is not None for e in epochs)
    assert len(store.disturbances_for(run["id"])) == 1
    incidents = store.incidents(run["id"])
    # The whole loss window is ONE incident (healed boundary re-opens it).
    assert len(incidents) == 1
    assert incidents[0]["resolved_at"] is not None
    names = {s["name"] for s in store.samples_for(run["id"])}
    assert "live_messages_sent_total" in names
    store.close()


def test_second_run_in_same_session_gets_own_row():
    store = RunStore(":memory:")
    with telemetry_session() as tel:
        subscriber = StoreSubscriber(store, run_id="first", session=tel)
        tel.subscribe(subscriber, detail=False)
        live_run(algorithm="ssrmin", n=4, seed=1, transport="loopback",
                 duration=0.2, timer_interval=0.05,
                 stabilize_timeout=STABILIZE_TIMEOUT)
        live_run(algorithm="ssrmin", n=4, seed=2, transport="loopback",
                 duration=0.2, timer_interval=0.05,
                 stabilize_timeout=STABILIZE_TIMEOUT)
        subscriber.close()
    runs = store.list_runs()
    assert len(runs) == 2
    # The second run derives its id from the run_start payload.
    assert {r["run_id"] for r in runs} == {"first", "live-ssrmin-n4-seed2"}
    store.close()


def test_truncated_run_closes_with_null_stabilized():
    store = RunStore(":memory:")
    subscriber = StoreSubscriber(store, run_id="cut-short")
    subscriber(Event(seq=0, time=0.0, layer="runtime", kind="run_start",
                     payload={"algorithm": "SSRmin", "n": 4, "seed": 0}))
    # No run_end: the session died.  close() keeps the partial row.
    subscriber.close()
    run = store.get_run("cut-short")
    assert run is not None
    assert run["stabilized"] is None
    store.close()


def test_sweep_cell_events_become_runs():
    store = RunStore(":memory:")
    subscriber = StoreSubscriber(store, source="test")
    subscriber(Event(
        seq=0, time=1.0, layer="experiment", kind="sweep_cell",
        payload={"algorithm": "SSRmin", "n": 8, "loss": 0.2, "seed": 3,
                 "stabilized_at": 41.5, "min_tokens": 1, "max_tokens": 2,
                 "zero_time": 0.0, "events": 1200, "wall_seconds": 0.05},
    ))
    subscriber.close()
    run = store.get_run("sweep-SSRmin-n8-loss0.2-seed3")
    assert run["kind"] == "sweep_cell"
    assert run["stabilized"] == 1
    epoch = store.epochs_for(run["id"])[0]
    assert epoch["stabilized_at"] == 41.5
    names = {s["name"] for s in store.samples_for(run["id"])}
    assert {"min_tokens", "max_tokens", "zero_time", "events"} <= names
    store.close()
