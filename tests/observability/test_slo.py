"""SLO engine: classes, merging, quantiles, budgets, incidents."""

import math

import pytest

from repro.observability.slo import (
    SloSpec,
    default_slos,
    disturbance_class,
    evaluate_slos,
    load_slo_specs,
    merge_epochs,
    quantile,
    render_slo_report,
    restabilize_stats,
    vacancy_stats,
)
from repro.observability.store import RunStore


@pytest.mark.parametrize("label,cls", [
    ("boot", "boot"),
    ("loss@0.60s", "loss"),
    ("loss-healed@1.60s", "loss"),
    ("crash-5", "crash"),
    ("restart-3", "restart"),
    ("corrupt-state-1", "corrupt-state"),
    ("partition@2.00s", "partition"),
    ("weird stuff", "other"),
])
def test_disturbance_class(label, cls):
    assert disturbance_class(label) == cls


def test_merge_epochs_keeps_stabilized_epochs_separate():
    merged = merge_epochs([
        {"label": "boot", "started_at": 0.0, "stabilized_at": 0.1},
        {"label": "loss@1.00s", "started_at": 1.0, "stabilized_at": 1.3},
    ])
    assert len(merged) == 2
    assert merged[1]["time_to_stabilize"] == pytest.approx(0.3)


def test_merge_epochs_collapses_unstabilized_prefix():
    merged = merge_epochs([
        {"label": "boot", "started_at": 0.0, "stabilized_at": 0.1},
        {"label": "loss@1.00s", "started_at": 1.0, "stabilized_at": None},
        {"label": "crash-2", "started_at": 1.5, "stabilized_at": None},
        {"label": "restart-2", "started_at": 1.8, "stabilized_at": 2.0},
    ])
    assert len(merged) == 2
    outage = merged[1]
    assert outage["labels"] == ["loss@1.00s", "crash-2", "restart-2"]
    assert outage["class"] == "restart"
    assert outage["first_started_at"] == 1.0
    assert outage["time_to_stabilize"] == pytest.approx(0.2)


def test_quantile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert quantile(values, 0.0) == 1.0
    assert quantile(values, 1.0) == 4.0
    assert quantile(values, 0.5) == pytest.approx(2.5)
    assert math.isnan(quantile([], 0.5))
    with pytest.raises(ValueError):
        quantile(values, 1.5)


def test_slo_spec_validation():
    with pytest.raises(ValueError):
        SloSpec(name="x", metric="nope")
    with pytest.raises(ValueError):
        SloSpec(name="x", metric="vacancy", target=0.0)
    with pytest.raises(ValueError):
        SloSpec.from_json({"name": "x", "metric": "vacancy", "bogus": 1})


def test_load_slo_specs_roundtrip(tmp_path):
    path = tmp_path / "slos.json"
    path.write_text(
        '[{"name": "fast", "metric": "restabilize", '
        '"target": 0.9, "threshold": 1.0}]'
    )
    specs = load_slo_specs(str(path))
    assert specs[0].name == "fast"
    assert specs[0].threshold == 1.0


def _seeded_store():
    store = RunStore(":memory:")
    good = store.insert_run(
        "live-good", kind="live", algorithm="SSRmin", n=4,
        stabilized=1, vacancy_instants=0, violations=0,
    )
    store.add_epoch(good, 0, "boot", "boot", 0.0, stabilized_at=0.01)
    store.add_epoch(good, 1, "loss@1.00s", "loss", 1.0, stabilized_at=1.2)
    bad = store.insert_run(
        "live-bad", kind="live", algorithm="DijkstraKState", n=4,
        stabilized=0, vacancy_instants=17, violations=1,
    )
    store.add_epoch(bad, 0, "boot", "boot", 0.0, stabilized_at=0.01)
    store.add_epoch(bad, 1, "crash-2", "crash", 1.0)  # never restabilized
    return store


def test_evaluate_slos_burns_budget_and_reports_offenders():
    with _seeded_store() as store:
        results = {r.spec.name: r for r in evaluate_slos(store, default_slos())}
    # The zero-width vacancy budget only grades ssrmin runs: still clean.
    assert results["ssrmin-zero-vacancy"].ok
    # The crashed run never restabilized: availability + restabilize burn.
    assert not results["availability"].ok
    assert not results["restabilize-10s"].ok
    assert results["restabilize-10s"].offenders
    # Census counts the Dijkstra run's violation with an all-run filter.
    census = results["census-in-bounds"]
    assert census.bad == 1 and math.isinf(census.budget_burn)


def test_evaluate_slos_opens_burn_incidents_once():
    with _seeded_store() as store:
        evaluate_slos(store, default_slos(), open_incidents=True, now=9.0)
        evaluate_slos(store, default_slos(), open_incidents=True, now=9.5)
        burns = [i for i in store.incidents() if i["kind"] == "slo-burn"]
        # One incident per burned spec, deduped across re-evaluations.
        assert len(burns) == len(
            {i["title"] for i in burns}
        ) == 3  # availability + restabilize + census
        assert all(i["severity"] == "critical" for i in burns)


def test_stats_and_report_render():
    with _seeded_store() as store:
        stats = restabilize_stats(store)
        vac = vacancy_stats(store)
        lines = render_slo_report(store, evaluate_slos(store, default_slos()))
    loss = next(s for s in stats
                if s["algorithm"] == "SSRmin" and s["class"] == "loss")
    assert loss["p99"] == pytest.approx(0.2)
    crash = next(s for s in stats if s["class"] == "crash")
    assert math.isinf(crash["p99"])  # never stabilized
    dijkstra = next(v for v in vac if v["algorithm"] == "DijkstraKState")
    assert dijkstra["vacancy_instants"] == 17
    text = "\n".join(lines)
    assert "p99" in text and "BURN" in text and "vacancy_instants" in text
