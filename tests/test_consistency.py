"""Repository consistency gates.

The registry, the benchmarks directory and DESIGN.md's per-experiment index
describe the same set of experiments from three angles; these tests keep
them synchronized as the repository grows.
"""

import pathlib
import re

from repro.experiments import list_experiments

ROOT = pathlib.Path(__file__).resolve().parents[1]


def bench_sources():
    text = {}
    for path in (ROOT / "benchmarks").glob("bench_*.py"):
        text[path.name] = path.read_text()
    return text


def test_every_experiment_has_a_bench():
    benches = bench_sources()
    missing = []
    for eid in list_experiments():
        if not any(f'"{eid}"' in src for src in benches.values()):
            missing.append(eid)
    assert not missing, f"experiments without benches: {missing}"


def test_every_experiment_bench_targets_known_id():
    ids = set(list_experiments())
    stray = []
    for name, src in bench_sources().items():
        for match in re.findall(r'run_and_check\(benchmark, "(\w+)"', src):
            if match not in ids:
                stray.append((name, match))
    assert not stray, f"benches targeting unknown experiments: {stray}"


def test_every_experiment_indexed_in_design():
    design = (ROOT / "DESIGN.md").read_text()
    missing = [eid for eid in list_experiments() if f"| {eid} |" not in design]
    assert not missing, f"experiments missing from DESIGN.md index: {missing}"


def test_every_example_listed_in_readme():
    readme = (ROOT / "README.md").read_text()
    missing = [
        p.name
        for p in (ROOT / "examples").glob("*.py")
        if p.name not in readme
    ]
    assert not missing, f"examples not mentioned in README.md: {missing}"


def test_experiments_md_exists_and_covers_registry():
    path = ROOT / "EXPERIMENTS.md"
    assert path.exists(), "run `python -m repro report -o EXPERIMENTS.md`"
    text = path.read_text()
    missing = [eid for eid in list_experiments() if f"## {eid} " not in text]
    assert not missing, f"EXPERIMENTS.md missing sections: {missing}"
