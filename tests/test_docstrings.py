"""Documentation gate: every public item in the library has a docstring.

Deliverable (e) requires doc comments on every public item; this test walks
the whole ``repro`` package and fails on any public module, class, function
or method without one — keeping the guarantee durable as the code grows.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        yield importlib.import_module(info.name)


def is_public(name: str) -> bool:
    return not name.startswith("_")


def test_every_module_has_docstring():
    missing = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if not is_public(name):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def _documented_in_base(cls, name: str) -> bool:
    """Whether some base class documents a member of this name.

    Overrides of a documented contract (``Daemon.select``,
    ``Monitor.on_step``, ``DelayModel.sample`` ...) inherit its docstring in
    the conventional Python sense.
    """
    for base in cls.__mro__[1:]:
        member = base.__dict__.get(name)
        if member is not None and (getattr(member, "__doc__", "") or "").strip():
            return True
    return False


def test_every_public_method_documented():
    missing = []
    for module in iter_modules():
        for cls_name, cls in vars(module).items():
            if not is_public(cls_name) or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module.__name__:
                continue
            for name, member in vars(cls).items():
                if not is_public(name):
                    continue
                if inspect.isfunction(member):
                    if not (member.__doc__ or "").strip() and \
                            not _documented_in_base(cls, name):
                        missing.append(f"{module.__name__}.{cls_name}.{name}")
    assert not missing, f"undocumented public methods: {missing}"
