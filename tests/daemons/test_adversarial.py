"""Unit tests for the adversarial lookahead daemon."""

import random

import pytest

from repro.core.ssrmin import SSRmin
from repro.daemons.adversarial import AdversarialDaemon
from repro.daemons.distributed import RandomSubsetDaemon
from repro.simulation.convergence import converge


class TestConstruction:
    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            AdversarialDaemon(SSRmin(3, 4), depth=0)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            AdversarialDaemon(SSRmin(3, 4), max_subsets=0)


class TestSelection:
    def test_selects_subset_of_enabled(self):
        alg = SSRmin(4, 5)
        d = AdversarialDaemon(alg, depth=1, seed=0)
        rng = random.Random(0)
        for step in range(20):
            config = alg.random_configuration(rng)
            enabled = alg.enabled_processes(config)
            if not enabled:
                continue
            sel = d.select(enabled, config, step)
            assert sel and set(sel) <= set(enabled)

    def test_deterministic_under_seed(self):
        alg = SSRmin(4, 5)
        rng = random.Random(1)
        config = alg.random_configuration(rng)
        enabled = alg.enabled_processes(config)
        a = AdversarialDaemon(alg, depth=1, seed=7).select(enabled, config, 0)
        b = AdversarialDaemon(alg, depth=1, seed=7).select(enabled, config, 0)
        assert a == b

    def test_cannot_prevent_convergence(self):
        """Lemma 6 under adversarial pressure: still converges."""
        for seed in range(5):
            alg = SSRmin(4, 5)
            rng = random.Random(seed)
            d = AdversarialDaemon(alg, depth=2, seed=seed)
            res = converge(alg, d, alg.random_configuration(rng))
            assert res.converged

    def test_adversary_slows_convergence_vs_random(self):
        """On average the adversary should need at least as many steps."""
        alg_n, trials = 5, 15
        adv_total = rnd_total = 0
        for seed in range(trials):
            alg = SSRmin(alg_n, alg_n + 1)
            rng = random.Random(seed)
            init = alg.random_configuration(rng)
            adv = converge(alg, AdversarialDaemon(alg, depth=1, seed=seed), init)
            rnd = converge(alg, RandomSubsetDaemon(seed=seed), init)
            assert adv.converged and rnd.converged
            adv_total += adv.steps
            rnd_total += rnd.steps
        assert adv_total >= rnd_total


class TestCandidates:
    def test_candidates_include_singletons_and_full_set(self):
        alg = SSRmin(4, 5)
        d = AdversarialDaemon(alg, depth=1, seed=0)
        cands = d._candidates((0, 1, 2))
        assert (0,) in cands and (1,) in cands and (2,) in cands
        assert (0, 1, 2) in cands

    def test_candidates_deduplicated(self):
        alg = SSRmin(4, 5)
        d = AdversarialDaemon(alg, depth=1, seed=0, max_subsets=20)
        cands = d._candidates((0, 1, 2, 3, 4))
        assert len(cands) == len(set(cands))
