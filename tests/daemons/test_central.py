"""Unit tests for central daemons."""

import pytest

from repro.daemons.base import Daemon
from repro.daemons.central import (
    FixedPriorityDaemon,
    RandomCentralDaemon,
    RoundRobinDaemon,
)


class TestValidation:
    def test_rejects_empty_selection(self):
        with pytest.raises(ValueError):
            Daemon.validate_selection([], [0, 1])

    def test_rejects_disabled_process(self):
        with pytest.raises(ValueError):
            Daemon.validate_selection([2], [0, 1])

    def test_sorts_and_dedupes(self):
        assert Daemon.validate_selection([1, 0, 1], [0, 1, 2]) == (0, 1)


class TestRandomCentral:
    def test_selects_exactly_one_enabled(self):
        d = RandomCentralDaemon(seed=0)
        for step in range(50):
            sel = d.select([1, 3, 5], None, step)
            assert len(sel) == 1 and sel[0] in (1, 3, 5)

    def test_deterministic_under_seed(self):
        a = [RandomCentralDaemon(seed=9).select([0, 1, 2], None, s) for s in range(20)]
        b = [RandomCentralDaemon(seed=9).select([0, 1, 2], None, s) for s in range(20)]
        assert a == b

    def test_reset_restores_sequence(self):
        d = RandomCentralDaemon(seed=4)
        first = [d.select([0, 1, 2, 3], None, s) for s in range(10)]
        d.reset()
        second = [d.select([0, 1, 2, 3], None, s) for s in range(10)]
        assert first == second

    def test_is_central(self):
        assert RandomCentralDaemon().distributed is False


class TestRoundRobin:
    def test_cycles_through_enabled(self):
        d = RoundRobinDaemon()
        picks = [d.select([0, 1, 2], None, s)[0] for s in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_disabled(self):
        d = RoundRobinDaemon()
        assert d.select([1, 3], None, 0) == (1,)
        assert d.select([1, 3], None, 1) == (3,)
        assert d.select([1, 3], None, 2) == (1,)

    def test_fairness_every_enabled_eventually_selected(self):
        d = RoundRobinDaemon()
        seen = set()
        for step in range(10):
            seen.add(d.select([0, 2, 4], None, step)[0])
        assert seen == {0, 2, 4}

    def test_reset(self):
        d = RoundRobinDaemon()
        d.select([0, 1], None, 0)
        d.reset()
        assert d.select([0, 1], None, 0) == (0,)


class TestFixedPriority:
    def test_picks_lowest(self):
        assert FixedPriorityDaemon().select([3, 1, 4], None, 0) == (1,)

    def test_reverse_picks_highest(self):
        assert FixedPriorityDaemon(reverse=True).select([3, 1, 4], None, 0) == (4,)

    def test_is_unfair_starves_high_indices(self):
        d = FixedPriorityDaemon()
        picks = {d.select([0, 5], None, s)[0] for s in range(20)}
        assert picks == {0}
