"""Unit tests for the replay daemon."""

import pytest

from repro.daemons.replay import ReplayDaemon


class TestReplay:
    def test_replays_int_schedule(self):
        d = ReplayDaemon([0, 1, 2])
        assert d.select([0, 1, 2], None, 0) == (0,)
        assert d.select([0, 1, 2], None, 1) == (1,)

    def test_replays_set_schedule(self):
        d = ReplayDaemon([(0, 2), (1,)])
        assert d.select([0, 1, 2], None, 0) == (0, 2)
        assert d.select([0, 1, 2], None, 1) == (1,)

    def test_exhaustion_raises(self):
        d = ReplayDaemon([0])
        d.select([0], None, 0)
        with pytest.raises(IndexError):
            d.select([0], None, 1)

    def test_divergence_detected(self):
        d = ReplayDaemon([3])
        with pytest.raises(ValueError):
            d.select([0, 1], None, 0)

    def test_reset_rewinds(self):
        d = ReplayDaemon([0, 1])
        d.select([0, 1], None, 0)
        d.reset()
        assert d.select([0, 1], None, 0) == (0,)
        assert d.remaining == 1

    def test_len_and_remaining(self):
        d = ReplayDaemon([0, 1, 2])
        assert len(d) == 3
        d.select([0, 1, 2], None, 0)
        assert d.remaining == 2

    def test_roundtrip_with_execution(self, ssrmin5):
        """An execution's recorded selections replay to the same trace."""
        from repro.daemons.distributed import RandomSubsetDaemon
        from repro.simulation.engine import SharedMemorySimulator

        sim = SharedMemorySimulator(ssrmin5, RandomSubsetDaemon(seed=6))
        import random

        init = ssrmin5.random_configuration(random.Random(6))
        first = sim.run(init, max_steps=40)

        replay = SharedMemorySimulator(
            ssrmin5, ReplayDaemon(first.execution.selections())
        )
        second = replay.run(init, max_steps=40)
        assert [c.states for c in first.execution.configurations] == [
            c.states for c in second.execution.configurations
        ]
