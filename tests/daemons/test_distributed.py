"""Unit tests for distributed daemons."""

import pytest

from repro.daemons.distributed import (
    BernoulliDaemon,
    RandomSubsetDaemon,
    SynchronousDaemon,
)


class TestSynchronous:
    def test_selects_everything(self):
        d = SynchronousDaemon()
        assert d.select([0, 2, 4], None, 0) == (0, 2, 4)

    def test_single_enabled(self):
        assert SynchronousDaemon().select([3], None, 0) == (3,)


class TestRandomSubset:
    def test_never_empty(self):
        d = RandomSubsetDaemon(seed=0)
        for step in range(200):
            assert len(d.select([0, 1, 2, 3], None, step)) >= 1

    def test_subset_of_enabled(self):
        d = RandomSubsetDaemon(seed=1)
        enabled = [1, 4, 7]
        for step in range(100):
            assert set(d.select(enabled, None, step)) <= set(enabled)

    def test_eventually_selects_all_subset_sizes(self):
        d = RandomSubsetDaemon(seed=2)
        sizes = {len(d.select([0, 1, 2], None, s)) for s in range(200)}
        assert sizes == {1, 2, 3}

    def test_deterministic_under_seed(self):
        a = RandomSubsetDaemon(seed=5)
        b = RandomSubsetDaemon(seed=5)
        for step in range(50):
            assert a.select([0, 1, 2, 3], None, step) == b.select(
                [0, 1, 2, 3], None, step
            )

    def test_reset(self):
        d = RandomSubsetDaemon(seed=3)
        first = [d.select([0, 1, 2], None, s) for s in range(10)]
        d.reset()
        assert [d.select([0, 1, 2], None, s) for s in range(10)] == first


class TestBernoulli:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BernoulliDaemon(0.0)
        with pytest.raises(ValueError):
            BernoulliDaemon(1.5)

    def test_never_empty_even_with_tiny_p(self):
        d = BernoulliDaemon(0.01, seed=0)
        for step in range(100):
            assert len(d.select([0, 1], None, step)) >= 1

    def test_p_one_is_synchronous(self):
        d = BernoulliDaemon(1.0, seed=0)
        assert d.select([0, 1, 2], None, 0) == (0, 1, 2)

    def test_small_p_mostly_singletons(self):
        d = BernoulliDaemon(0.05, seed=1)
        singletons = sum(
            1 for s in range(200) if len(d.select(list(range(8)), None, s)) == 1
        )
        assert singletons > 100

    def test_reset(self):
        d = BernoulliDaemon(0.5, seed=2)
        first = [d.select([0, 1, 2, 3], None, s) for s in range(20)]
        d.reset()
        assert [d.select([0, 1, 2, 3], None, s) for s in range(20)] == first
