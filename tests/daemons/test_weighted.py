"""Tests for the weighted-unfair daemon (the fuzzer's fourth family)."""

import random
from collections import Counter

import pytest

from repro.daemons.weighted import WeightedUnfairDaemon


class TestValidation:
    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError, match="bias"):
            WeightedUnfairDaemon(bias=1.0)

    def test_rejects_bad_multi_p(self):
        with pytest.raises(ValueError, match="multi_p"):
            WeightedUnfairDaemon(multi_p=1.0)


class TestSelection:
    def test_selections_are_valid_subsets(self):
        daemon = WeightedUnfairDaemon(seed=1)
        enabled = (0, 2, 5, 7)
        for step in range(200):
            sel = daemon.select(enabled, None, step)
            assert sel
            assert set(sel) <= set(enabled)
            assert len(set(sel)) == len(sel)

    def test_bias_starves_high_indices(self):
        daemon = WeightedUnfairDaemon(bias=4.0, multi_p=0.0, seed=2)
        enabled = tuple(range(8))
        counts = Counter()
        for step in range(3000):
            counts.update(daemon.select(enabled, None, step))
        # Geometric bias: process 0 should dominate process 7 heavily.
        assert counts[0] > 50 * max(1, counts[7])
        assert counts[0] > counts[1] > counts[3]

    def test_explicit_weights_override_bias(self):
        daemon = WeightedUnfairDaemon(
            weights={0: 0.0, 1: 1.0}, multi_p=0.0, seed=3
        )
        for step in range(100):
            assert daemon.select((0, 1), None, step) == (1,)

    def test_multi_p_yields_multi_process_selections(self):
        daemon = WeightedUnfairDaemon(bias=2.0, multi_p=0.5, seed=4)
        enabled = tuple(range(6))
        sizes = {len(daemon.select(enabled, None, s)) for s in range(300)}
        assert 1 in sizes
        assert any(k > 1 for k in sizes)


class TestDeterminism:
    def test_reset_restores_the_sequence(self):
        daemon = WeightedUnfairDaemon(seed=5)
        enabled = (1, 3, 4)
        first = [daemon.select(enabled, None, s) for s in range(50)]
        daemon.reset()
        second = [daemon.select(enabled, None, s) for s in range(50)]
        assert first == second

    def test_describe_names_the_family(self):
        d = WeightedUnfairDaemon(bias=3.0, multi_p=0.25, seed=6)
        desc = d.describe()
        assert desc["name"] == "WeightedUnfairDaemon"
        assert desc["distributed"] is True
        assert desc["bias"] == 3.0
