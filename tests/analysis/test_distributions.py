"""Unit tests for distribution comparisons."""

import numpy as np
import pytest

from repro.analysis.distributions import (
    DistributionComparison,
    compare_distributions,
    effect_size,
)


class TestEffectSize:
    def test_identical_samples_zero(self):
        assert effect_size([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_dominant_sample_positive(self):
        assert effect_size([10, 11], [1, 2]) == 1.0

    def test_dominated_sample_negative(self):
        assert effect_size([1, 2], [10, 11]) == -1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            effect_size([], [1])


class TestCompareDistributions:
    def test_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            compare_distributions([1], [1, 2])

    def test_same_distribution_indistinguishable(self):
        rng = np.random.default_rng(0)
        a = rng.normal(10, 2, 200)
        b = rng.normal(10, 2, 200)
        cmp = compare_distributions(a, b)
        assert not cmp.distinguishable(alpha=0.001)

    def test_shifted_distribution_detected(self):
        rng = np.random.default_rng(1)
        a = rng.normal(14, 2, 200)
        b = rng.normal(10, 2, 200)
        cmp = compare_distributions(a, b)
        assert cmp.distinguishable()
        assert cmp.a_stochastically_larger()
        assert cmp.cliffs_delta > 0.5


class TestOnRealWorkloads:
    def test_adversary_is_stochastically_slower_than_random(self):
        """abl2's narrative as a statistical claim: the adversarial daemon's
        convergence-step distribution dominates the random daemon's."""
        from repro.core.ssrmin import SSRmin
        from repro.daemons.adversarial import AdversarialDaemon
        from repro.daemons.distributed import RandomSubsetDaemon
        from repro.simulation.convergence import convergence_steps

        n = 5
        adv = convergence_steps(
            algorithm_factory=lambda: SSRmin(n, n + 1),
            daemon_factory=lambda alg, s: AdversarialDaemon(alg, depth=1,
                                                            seed=s),
            trials=40,
            seed=0,
        )
        rnd = convergence_steps(
            algorithm_factory=lambda: SSRmin(n, n + 1),
            daemon_factory=lambda alg, s: RandomSubsetDaemon(seed=s),
            trials=40,
            seed=0,
        )
        cmp = compare_distributions(adv, rnd)
        assert cmp.cliffs_delta > 0  # adversary tends slower

    def test_k_insensitivity_statistically(self):
        """abl5 as a statistical claim: K=n+1 vs K=16n convergence-step
        distributions are NOT meaningfully separated."""
        from repro.simulation.batch import batch_convergence_steps

        n = 8
        a = batch_convergence_steps(n=n, trials=300, K=n + 1, seed=0)
        b = batch_convergence_steps(n=n, trials=300, K=16 * n, seed=1)
        cmp = compare_distributions(a, b)
        assert abs(cmp.cliffs_delta) < 0.3
