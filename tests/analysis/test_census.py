"""Unit tests for the rule-execution census (Lemma 5/8 bookkeeping)."""

import random

from repro.analysis.census import census_execution
from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon, SynchronousDaemon
from repro.simulation.engine import SharedMemorySimulator
from repro.simulation.execution import Execution, Move


def synthetic_execution(rule_steps):
    """Build an execution from a list of per-step rule-name lists."""
    e = Execution()
    e.start("c0")
    for t, rules in enumerate(rule_steps):
        e.record([Move(j, r) for j, r in enumerate(rules)], f"c{t + 1}")
    return e


class TestSyntheticCensus:
    def test_counts(self):
        e = synthetic_execution([["R1"], ["R3"], ["R2"], ["R1"], ["R4"]])
        c = census_execution(e, n=5)
        assert c.rule_counts == {"R1": 2, "R3": 1, "R2": 1, "R4": 1}
        assert c.w24 == 2 and c.w135 == 3

    def test_longest_run_resets_on_w24(self):
        e = synthetic_execution([["R1"], ["R3"], ["R2"], ["R1"], ["R5"],
                                 ["R3"], ["R4"]])
        c = census_execution(e, n=5)
        assert c.longest_w135_run == 3

    def test_mixed_step_with_w24_breaks_run(self):
        e = synthetic_execution([["R1"], ["R1", "R2"], ["R3"]])
        c = census_execution(e, n=5)
        assert c.longest_w135_run == 1

    def test_domination_ratio(self):
        e = synthetic_execution([["R1"], ["R3"], ["R2"]])
        assert census_execution(e, n=5).domination_ratio == 2.0

    def test_no_w24_gives_infinite_ratio(self):
        e = synthetic_execution([["R1"], ["R3"]])
        c = census_execution(e, n=5)
        assert c.domination_ratio == float("inf")
        assert c.lemma5_holds  # 2 <= 15

    def test_lemma5_bound(self):
        c = census_execution(synthetic_execution([["R1"]]), n=4)
        assert c.lemma5_bound == 12


class TestRealExecutions:
    def test_lemma5_on_legitimate_lap(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        res = sim.run(ssrmin5.initial_configuration(), max_steps=45)
        c = census_execution(res.execution, ssrmin5.n)
        assert c.lemma5_holds
        # One lap = n each of R1/R3/R2; three laps here.
        assert c.w24 == 15 and c.w135 == 30

    def test_lemma5_from_chaos_many_seeds(self):
        for seed in range(15):
            alg = SSRmin(6, 7)
            rng = random.Random(seed)
            sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=seed))
            res = sim.run(alg.random_configuration(rng), max_steps=500,
                          stop_when=alg.is_legitimate)
            c = census_execution(res.execution, alg.n)
            assert c.lemma5_holds, f"seed {seed}: run {c.longest_w135_run}"

    def test_domination_bounded_by_lemma8_constant(self):
        """|W135| <= L * |W24| with L = 9 (paper's constant) plus the
        bounded pre-first-W24 prefix — checked with slack."""
        for seed in range(10):
            alg = SSRmin(6, 7)
            rng = random.Random(100 + seed)
            sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=seed))
            res = sim.run(alg.random_configuration(rng), max_steps=1500,
                          record=True)
            c = census_execution(res.execution, alg.n)
            assert c.w24 > 0
            assert c.w135 <= 9 * c.w24 + 3 * alg.n
