"""Unit tests for summary statistics."""

import pytest

from repro.analysis.statistics import Summary, summarize


class TestSummarize:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.n == 1
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 5.0

    def test_basic_moments(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.std == pytest.approx(1.5811, abs=1e-3)

    def test_ci_contains_mean(self):
        s = summarize([10, 12, 14, 16])
        assert s.ci_low <= s.mean <= s.ci_high

    def test_ci_shrinks_with_sample_size(self):
        small = summarize([1, 3] * 5)
        large = summarize([1, 3] * 500)
        assert large.ci_half < small.ci_half

    def test_custom_z(self):
        narrow = summarize([1, 2, 3, 4], z=1.0)
        wide = summarize([1, 2, 3, 4], z=2.58)
        assert narrow.ci_half < wide.ci_half

    def test_str_renders(self):
        text = str(summarize([1, 2, 3]))
        assert "mean=2.00" in text and "n=3" in text

    def test_samples_preserved_in_input_order(self):
        s = summarize([3, 1, 2])
        assert s.samples == (3.0, 1.0, 2.0)

    def test_samples_default_empty(self):
        s = Summary(n=1, mean=1.0, std=0.0, minimum=1.0, maximum=1.0,
                    median=1.0, ci_low=1.0, ci_high=1.0)
        assert s.samples == ()
