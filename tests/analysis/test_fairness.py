"""Unit tests for the daemon-fairness analyzer."""

import random

from repro.analysis.fairness import starvation_report
from repro.core.ssrmin import SSRmin
from repro.daemons.central import FixedPriorityDaemon, RoundRobinDaemon
from repro.daemons.distributed import SynchronousDaemon
from repro.simulation.engine import SharedMemorySimulator
from repro.simulation.execution import Execution, Move


class TestSyntheticSchedules:
    def build(self, alg, configs, moves):
        e = Execution()
        e.start(configs[0])
        for m, c in zip(moves, configs[1:]):
            e.record(m, c)
        return e

    def test_selection_counts(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        res = sim.run(ssrmin5.initial_configuration(), max_steps=15)
        report = starvation_report(res.execution, ssrmin5)
        assert sum(report.selections.values()) == 15

    def test_synchronous_daemon_never_starves(self, ssrmin5):
        """Every enabled process moves immediately: zero streaks."""
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        res = sim.run(ssrmin5.initial_configuration(), max_steps=30)
        report = starvation_report(res.execution, ssrmin5)
        assert report.worst_starvation == 0
        assert report.weakly_fair


class TestDaemonTaxonomy:
    def test_round_robin_is_fair(self, ssrmin5):
        import random as _r

        init = ssrmin5.random_configuration(_r.Random(0))
        sim = SharedMemorySimulator(ssrmin5, RoundRobinDaemon())
        res = sim.run(init, max_steps=200)
        report = starvation_report(res.execution, ssrmin5)
        # In the legitimate regime only one process is enabled at a time, so
        # streaks are short; round-robin never builds long ones.
        assert report.worst_starvation <= 2 * ssrmin5.n

    def test_fixed_priority_starves_during_convergence(self):
        """With many simultaneously enabled processes, the lowest index
        hogs the schedule — measurable starvation of the others."""
        alg = SSRmin(8, 9)
        # A chaotic start keeps several processes enabled at once.
        init = alg.random_configuration(random.Random(3))
        sim = SharedMemorySimulator(alg, FixedPriorityDaemon())
        res = sim.run(init, max_steps=300)
        report = starvation_report(res.execution, alg)
        assert report.worst_starvation >= 2

    def test_streak_resets_on_disable(self, ssrmin5):
        """A process whose guard is falsified by neighbours stops counting
        as starved."""
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        res = sim.run(ssrmin5.initial_configuration(), max_steps=3 * 5)
        report = starvation_report(res.execution, ssrmin5)
        assert all(v == 0 for v in report.final_streak.values())

    def test_starved_threshold_query(self):
        alg = SSRmin(8, 9)
        init = alg.random_configuration(random.Random(4))
        sim = SharedMemorySimulator(alg, FixedPriorityDaemon())
        res = sim.run(init, max_steps=300)
        report = starvation_report(res.execution, alg)
        t = max(report.max_streak.values())
        if t > 0:
            assert report.starved(t)
            assert not report.starved(t + 1)
