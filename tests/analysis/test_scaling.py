"""Unit tests for power-law fitting."""

import numpy as np
import pytest

from repro.analysis.scaling import fit_power_law


class TestFitPowerLaw:
    def test_exact_quadratic(self):
        xs = [2, 4, 8, 16]
        ys = [3 * x ** 2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.prefactor == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-12)

    def test_exact_linear(self):
        xs = [1, 2, 3, 4, 5]
        fit = fit_power_law(xs, [7.0 * x for x in xs])
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_noisy_quadratic_recovers_exponent(self):
        rng = np.random.default_rng(0)
        xs = np.array([5, 8, 12, 17, 24, 32], dtype=float)
        ys = 2.0 * xs ** 2 * np.exp(rng.normal(0, 0.05, xs.size))
        fit = fit_power_law(xs, ys)
        assert 1.8 <= fit.exponent <= 2.2
        assert fit.r_squared > 0.98

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 8, 32])
        assert fit.predict(8) == pytest.approx(128.0, rel=1e-9)

    def test_rejects_mismatched_or_tiny(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [-1, 2])

    def test_rejects_degenerate_x(self):
        with pytest.raises(ValueError):
            fit_power_law([3, 3, 3], [1, 2, 3])

    def test_str_renders(self):
        assert "x^" in str(fit_power_law([1, 2, 4], [2, 8, 32]))
