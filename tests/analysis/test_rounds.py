"""Unit tests for round-complexity accounting."""

import random

import pytest

from repro.analysis.rounds import RoundCounter, measure_rounds
from repro.core.ssrmin import SSRmin
from repro.daemons.central import FixedPriorityDaemon, RandomCentralDaemon
from repro.daemons.distributed import RandomSubsetDaemon, SynchronousDaemon
from repro.simulation.engine import SharedMemorySimulator


class TestRoundCounter:
    def test_synchronous_daemon_one_step_per_round(self, ssrmin5):
        """Under the synchronous daemon every enabled process moves each
        step, so every round is exactly one step long."""
        counter = RoundCounter(ssrmin5)
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(),
                                    monitors=[counter])
        sim.run(ssrmin5.initial_configuration(), max_steps=12, record=False)
        assert counter.rounds == 12
        assert all(length == 1 for length in counter.round_lengths)

    def test_central_daemon_rounds_no_longer_than_steps(self, ssrmin5):
        counter = RoundCounter(ssrmin5)
        sim = SharedMemorySimulator(ssrmin5, RandomCentralDaemon(seed=0),
                                    monitors=[counter])
        sim.run(ssrmin5.initial_configuration(), max_steps=30, record=False)
        assert counter.rounds <= 30
        assert sum(counter.round_lengths) <= 30

    def test_reset_between_runs(self, ssrmin5):
        counter = RoundCounter(ssrmin5)
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(),
                                    monitors=[counter])
        sim.run(ssrmin5.initial_configuration(), max_steps=5, record=False)
        sim.run(ssrmin5.initial_configuration(), max_steps=5, record=False)
        assert counter.rounds == 5


class TestMeasureRounds:
    def test_rounds_at_most_steps(self):
        for seed in range(8):
            alg = SSRmin(6, 7)
            init = alg.random_configuration(random.Random(seed))
            steps, rounds = measure_rounds(
                alg, RandomSubsetDaemon(seed=seed), init
            )
            assert rounds <= steps or steps == 0

    def test_budget_exhaustion_raises(self):
        alg = SSRmin(6, 7)
        init = alg.random_configuration(random.Random(1))
        if alg.is_legitimate(init):  # pragma: no cover - seed-dependent
            pytest.skip("start happened to be legitimate")
        with pytest.raises(RuntimeError):
            measure_rounds(alg, RandomSubsetDaemon(seed=1), init, max_steps=1)

    def test_rounds_scale_sublinearly_vs_steps_under_unfair_daemon(self):
        """The unfair central daemon inflates steps but rounds stay small
        relative to them — the point of round complexity."""
        alg = SSRmin(8, 9)
        totals = []
        for seed in range(5):
            init = alg.random_configuration(random.Random(seed))
            steps, rounds = measure_rounds(alg, FixedPriorityDaemon(), init)
            totals.append((steps, rounds))
        assert all(r <= s for s, r in totals if s > 0)

    def test_legitimate_start_zero(self, ssrmin5):
        steps, rounds = measure_rounds(
            ssrmin5, SynchronousDaemon(), ssrmin5.initial_configuration()
        )
        assert steps == 0 and rounds == 0
