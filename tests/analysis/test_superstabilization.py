"""Unit tests for the single-fault (superstabilization-style) study."""

import pytest

from repro.analysis.superstabilization import (
    SuperstabilizationReport,
    SingleFaultRecord,
    study_single_fault,
)
from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon


class TestStudySingleFault:
    def test_trials_recorded(self):
        alg = SSRmin(5, 6)
        report = study_single_fault(
            alg, lambda a, s: RandomSubsetDaemon(seed=s), trials=15, seed=0
        )
        assert report.trials == 15
        assert 0.0 <= report.safety_fraction <= 1.0

    def test_recoveries_within_quadratic_budget(self):
        alg = SSRmin(6, 7)
        report = study_single_fault(
            alg, lambda a, s: RandomSubsetDaemon(seed=s), trials=10, seed=1
        )
        assert report.max_recovery <= 60 * 36 + 600
        assert report.mean_recovery <= report.max_recovery

    def test_token_burst_bounded(self):
        """A single fault can add at most a couple of spurious tokens."""
        alg = SSRmin(6, 7)
        report = study_single_fault(
            alg, lambda a, s: RandomSubsetDaemon(seed=s), trials=20, seed=2
        )
        assert report.worst_burst <= 4

    def test_safety_mostly_holds(self):
        """Empirically, >= 1 token survives most single faults (not claimed
        as a theorem; the study quantifies it)."""
        alg = SSRmin(6, 7)
        report = study_single_fault(
            alg, lambda a, s: RandomSubsetDaemon(seed=s), trials=30, seed=3
        )
        assert report.safety_fraction >= 0.5

    def test_deterministic_under_seed(self):
        alg = SSRmin(5, 6)
        a = study_single_fault(
            alg, lambda al, s: RandomSubsetDaemon(seed=s), trials=8, seed=4
        )
        b = study_single_fault(
            alg, lambda al, s: RandomSubsetDaemon(seed=s), trials=8, seed=4
        )
        assert [r.recovery_steps for r in a.records] == [
            r.recovery_steps for r in b.records
        ]


class TestReportProperties:
    def test_aggregates(self):
        records = [
            SingleFaultRecord(5, True, 2, 1),
            SingleFaultRecord(9, False, 3, 0),
        ]
        report = SuperstabilizationReport(records)
        assert report.trials == 2
        assert report.safety_fraction == 0.5
        assert report.max_recovery == 9
        assert report.mean_recovery == 7.0
        assert report.worst_burst == 3
