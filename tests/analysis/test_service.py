"""Unit tests for service-fairness analysis."""

import pytest

from repro.analysis.service import (
    ServiceMonitor,
    jain_fairness,
    service_report,
)
from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import SynchronousDaemon
from repro.simulation.engine import SharedMemorySimulator


class TestJainFairness:
    def test_perfectly_fair(self):
        assert jain_fairness([3, 3, 3, 3]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_or_zero(self):
        assert jain_fairness([]) == 0.0
        assert jain_fairness([0, 0]) == 0.0


class TestServiceReport:
    def test_counts_maximal_runs(self):
        history = [(0,), (0,), (1,), (0,), ()]
        report = service_report(history, n=2)
        assert report.service_counts[0] == 2  # two separate runs
        assert report.service_counts[1] == 1
        assert report.all_served

    def test_never_served_process(self):
        history = [(0,), (0,)]
        report = service_report(history, n=3)
        assert not report.all_served
        assert report.max_gap == 2  # waited the whole history

    def test_gap_measurement(self):
        # Process 1 first served at index 3 -> gap 3.
        history = [(0,), (0,), (0,), (1,)]
        report = service_report(history, n=2)
        assert report.max_gap == 3


class TestServiceMonitorIntegration:
    def test_legitimate_regime_is_fair(self):
        """One lap serves everyone exactly once: Jain index 1."""
        alg = SSRmin(6, 7)
        mon = ServiceMonitor(alg)
        sim = SharedMemorySimulator(alg, SynchronousDaemon(), monitors=[mon])
        sim.run(alg.initial_configuration(), max_steps=3 * 6, record=False)
        report = service_report(mon.history, n=6)
        assert report.all_served
        assert report.jain_index > 0.9

    def test_service_gap_bounded_by_lap_length(self):
        """Nobody waits more than ~one circulation (3n steps) plus slack."""
        alg = SSRmin(5, 6)
        mon = ServiceMonitor(alg)
        sim = SharedMemorySimulator(alg, SynchronousDaemon(), monitors=[mon])
        sim.run(alg.initial_configuration(), max_steps=9 * 5, record=False)
        report = service_report(mon.history, n=5)
        assert report.max_gap <= 3 * 5 + 2
