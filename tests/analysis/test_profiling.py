"""Unit tests for the measurement utilities."""

import time

import pytest

from repro.analysis.profiling import (
    Hotspot,
    Stopwatch,
    compare_engines,
    profile_callable,
    time_callable,
)


class TestStopwatch:
    def test_elapsed_positive(self):
        with Stopwatch() as sw:
            sum(range(1000))
        assert sw.elapsed > 0

    def test_splits_accumulate(self):
        with Stopwatch() as sw:
            sum(range(1000))
            a = sw.split("first")
            sum(range(1000))
            b = sw.split("second")
        assert [label for label, _ in sw.splits] == ["first", "second"]
        assert a >= 0 and b >= 0
        assert sw.elapsed >= a + b

    def test_unstarted_raises(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            _ = sw.elapsed
        with pytest.raises(RuntimeError):
            sw.split("x")


class TestTimeCallable:
    def test_summary_shape(self):
        summary = time_callable(lambda: sum(range(100)), repeats=5)
        assert summary.n == 5
        assert summary.mean > 0

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=1, warmup=-1)

    def test_warmup_runs_excluded(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5  # warmup + repeats all execute

    def test_zero_warmup_allowed(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=2, warmup=0)
        assert len(calls) == 2

    def test_per_sample_timings_surfaced(self):
        summary = time_callable(lambda: sum(range(100)), repeats=4)
        assert len(summary.samples) == 4
        assert all(t > 0 for t in summary.samples)
        assert min(summary.samples) == summary.minimum
        assert max(summary.samples) == summary.maximum


class TestProfileCallable:
    def test_returns_hotspots(self):
        def workload():
            return sorted(range(10_000), key=lambda x: -x)

        rows = profile_callable(workload, top=5)
        assert 1 <= len(rows) <= 5
        assert all(isinstance(r, Hotspot) for r in rows)
        assert rows[0].cumulative_seconds >= rows[-1].cumulative_seconds

    def test_rejects_bad_top(self):
        with pytest.raises(ValueError):
            profile_callable(lambda: None, top=0)


class TestCompareEngines:
    def test_batch_is_faster(self):
        """The vectorized engine must beat the scalar one on this workload
        — the justification for its existence."""
        result = compare_engines(n=8, trials=40, seed=0)
        assert result["scalar_seconds"] > 0
        assert result["batch_seconds"] > 0
        assert result["speedup"] > 1.0
