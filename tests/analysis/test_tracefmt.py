"""Unit tests for Figure-1/4 style trace formatting."""

from repro.analysis.tracefmt import (
    annotate_process,
    format_token_movement,
    format_trace,
)
from repro.core.ssrmin import SSRmin
from repro.core.state import Configuration
from repro.daemons.distributed import SynchronousDaemon
from repro.simulation.engine import SharedMemorySimulator


class TestAnnotate:
    def test_both_tokens_and_rule(self):
        alg = SSRmin(5, 6)
        c = Configuration.parse("3.0.1 3.0.0 3.0.0 3.0.0 3.0.0")
        assert annotate_process(alg, c, 0) == "3.0.1PS/1"

    def test_primary_only_with_rule2(self):
        alg = SSRmin(5, 6)
        c = Configuration.parse("3.1.0 3.0.1 3.0.0 3.0.0 3.0.0")
        assert annotate_process(alg, c, 0) == "3.1.0P/2"

    def test_secondary_only(self):
        alg = SSRmin(5, 6)
        c = Configuration.parse("3.1.0 3.0.1 3.0.0 3.0.0 3.0.0")
        assert annotate_process(alg, c, 1) == "3.0.1S"

    def test_quiet_process(self):
        alg = SSRmin(5, 6)
        c = Configuration.parse("3.0.1 3.0.0 3.0.0 3.0.0 3.0.0")
        assert annotate_process(alg, c, 2) == "3.0.0"


class TestFormatters:
    def run_lap(self, alg):
        sim = SharedMemorySimulator(alg, SynchronousDaemon())
        return sim.run(alg.initial_configuration(3), max_steps=6)

    def test_format_trace_has_header_and_rows(self):
        alg = SSRmin(5, 6)
        text = format_trace(alg, self.run_lap(alg).execution)
        lines = text.splitlines()
        assert lines[0].startswith("Step")
        assert "P4" in lines[0]
        assert len(lines) == 2 + 7  # header + rule + 7 configs

    def test_format_trace_first_row_matches_figure4(self):
        alg = SSRmin(5, 6)
        text = format_trace(alg, self.run_lap(alg).execution)
        assert "3.0.1PS/1" in text.splitlines()[2]

    def test_format_token_movement_marks(self):
        alg = SSRmin(5, 6)
        text = format_token_movement(alg, self.run_lap(alg).execution)
        first = text.splitlines()[2]
        assert "PS" in first
        assert first.count("-") >= 4  # quiet processes

    def test_start_step_offset(self):
        alg = SSRmin(5, 6)
        text = format_trace(alg, self.run_lap(alg).execution, start_step=10)
        assert text.splitlines()[2].startswith("10")
