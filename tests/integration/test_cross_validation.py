"""Cross-validation: concrete SSRmin vs. the abstract inchworm (section 3.1).

Co-simulates Algorithm 3 with the abstract alpha_1/beta/alpha_2 reference on
legitimate executions: at every step the token positions derived from the
concrete predicates must match the abstract model's explicit positions, and
the acting process/rule must correspond to the expected abstract action.
"""

import pytest

from repro.core.abstract import AbstractInchworm, Phase
from repro.core.ssrmin import SSRmin

#: Concrete rule implementing each abstract action.
ACTION_RULE = {
    Phase.TOGETHER: "R1",  # alpha_1
    Phase.READY: "R3",     # beta
    Phase.SPLIT: "R2",     # alpha_2
}


@pytest.mark.parametrize("n,K", [(3, 4), (5, 6), (8, 9)])
def test_concrete_matches_abstract_over_two_laps(n, K):
    alg = SSRmin(n, K)
    config = alg.initial_configuration(0)
    worm = AbstractInchworm(n)

    for step in range(2 * worm.steps_per_lap()):
        # Token placement must agree.
        assert alg.primary_holders(config) == (worm.primary,)
        assert set(alg.secondary_holders(config)) >= {worm.secondary}
        assert alg.privileged(config) == worm.holders()

        # The unique enabled process performs the expected abstract action.
        enabled = alg.enabled_processes(config)
        assert enabled == (worm.acting_process(),)
        rule = alg.enabled_rule(config, enabled[0])
        assert rule.name == ACTION_RULE[worm.phase]

        config = alg.step(config, enabled)
        worm = worm.advance()

    # Both return to their anchors (x advanced by 2 in the concrete model).
    assert worm.primary == 0 and worm.phase is Phase.TOGETHER
    assert config.states == alg.initial_configuration(2 % K).states


def test_abstract_lap_length_matches_concrete_cycle():
    """3n abstract actions = 3n concrete steps per circulation (Lemma 1)."""
    n = 6
    alg = SSRmin(n, 7)
    assert AbstractInchworm(n).steps_per_lap() == 3 * n
    from repro.core.legitimacy import canonical_cycle

    assert len(canonical_cycle(n, 7)) == 3 * n + 1
