"""Integration tests asserting the paper's headline claims end to end.

Each test names the paper artifact it machine-checks.  These go beyond the
unit tests: they exercise whole pipelines (simulator + monitors + analysis,
or DES + CST + timelines) against the stated guarantees.
"""

import random

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.daemons.adversarial import AdversarialDaemon
from repro.daemons.central import FixedPriorityDaemon
from repro.daemons.distributed import RandomSubsetDaemon, SynchronousDaemon
from repro.messagepassing.cst import transformed, transformed_from_chaos
from repro.messagepassing.coherence import CoherenceTracker
from repro.messagepassing.links import ExponentialDelay, UniformDelay
from repro.messagepassing.modelgap import evaluate_gap
from repro.simulation.convergence import converge
from repro.simulation.engine import SharedMemorySimulator
from repro.simulation.initial import random_legitimate
from repro.simulation.monitors import (
    CriticalSectionMonitor,
    LegitimacyMonitor,
    TokenCountMonitor,
)


class TestTheorem1MutualInclusion:
    """(1,2)-critical-section property in the state-reading model."""

    @pytest.mark.parametrize("n", [3, 5, 9])
    def test_privileged_bounds_over_long_runs(self, n):
        alg = SSRmin(n, n + 1)
        monitor = TokenCountMonitor(alg, low=1, high=2,
                                    only_when_legitimate=False)
        cs = CriticalSectionMonitor(alg, l=1, k=2)
        sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=n),
                                    monitors=[monitor, cs])
        init = random_legitimate(alg, random.Random(n))
        sim.run(init, max_steps=1500, record=False)
        assert cs.violations == 0

    def test_every_process_eventually_privileged(self):
        """Progress: the token pair serves the whole ring."""
        alg = SSRmin(7, 8)
        cs = CriticalSectionMonitor(alg, l=1, k=2)
        sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=1),
                                    monitors=[cs])
        sim.run(alg.initial_configuration(), max_steps=3 * 7 + 1, record=False)
        assert cs.all_served(7)


class TestLemma1Closure:
    def test_closure_monitor_over_every_legitimate_start(self):
        """From every one of the 3nK legitimate configurations, a long run
        stays legitimate (closure), under an arbitrary daemon."""
        alg = SSRmin(4, 5)
        from repro.simulation.initial import all_legitimate

        for idx, start in enumerate(all_legitimate(alg)):
            mon = LegitimacyMonitor(alg, check_closure=True)
            sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=idx),
                                        monitors=[mon])
            sim.run(start, max_steps=30, record=False)
            assert mon.first_legitimate == 0


class TestLemma6Convergence:
    def test_unfair_daemon_cannot_starve_convergence(self):
        """FixedPriorityDaemon is maximally unfair; convergence holds."""
        for seed in range(10):
            alg = SSRmin(6, 7)
            init = alg.random_configuration(random.Random(seed))
            res = converge(alg, FixedPriorityDaemon(), init)
            assert res.converged

    def test_synchronous_daemon_converges(self):
        for seed in range(10):
            alg = SSRmin(6, 7)
            init = alg.random_configuration(random.Random(50 + seed))
            res = converge(alg, SynchronousDaemon(), init)
            assert res.converged

    def test_adversarial_daemon_converges_within_quadratic_budget(self):
        for seed in range(5):
            alg = SSRmin(5, 6)
            init = alg.random_configuration(random.Random(seed))
            res = converge(alg, AdversarialDaemon(alg, depth=2, seed=seed),
                           init, max_steps=60 * 25 + 600)
            assert res.converged


class TestTheorem3ModelGapTolerance:
    @pytest.mark.parametrize("delay", [UniformDelay(0.5, 1.5),
                                       ExponentialDelay(1.0)])
    def test_tolerance_across_delay_models(self, delay):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=0, delay_model=delay)
        rep = evaluate_gap(net, duration=200.0)
        assert rep.tolerant
        assert 1 <= rep.min_count and rep.max_count <= 2

    def test_tolerance_across_ring_sizes(self):
        for n in (3, 6, 10):
            alg = SSRmin(n, n + 1)
            net = transformed(alg, seed=n, delay_model=UniformDelay(0.5, 1.5))
            rep = evaluate_gap(net, duration=150.0)
            assert rep.tolerant, f"n={n}"

    def test_sstoken_lacks_tolerance_everywhere(self):
        for n in (3, 6, 10):
            alg = DijkstraKState(n, n + 1)
            net = transformed(alg, seed=n, delay_model=UniformDelay(0.5, 1.5))
            rep = evaluate_gap(net, duration=150.0)
            assert not rep.tolerant, f"n={n}"


class TestTheorem4LossRecovery:
    @pytest.mark.parametrize("loss", [0.0, 0.2])
    def test_chaos_plus_loss_stabilizes_then_holds(self, loss):
        alg = SSRmin(5, 6)
        net = transformed_from_chaos(alg, seed=17, loss_probability=loss)
        t = CoherenceTracker(net).run_until_stabilized(slice_duration=5.0,
                                                       max_time=20_000.0)
        rep = evaluate_gap(net, duration=150.0, warmup=net.queue.now)
        assert rep.min_count >= 1 and rep.max_count <= 2
        assert rep.zero_time == 0.0
        assert t >= 0.0


class TestConferenceVsJournalBound:
    def test_measured_steps_far_below_cubic(self):
        """The journal's O(n^2) improvement is visible: even worst observed
        runs sit orders below the conference O(n^3) growth."""
        worst_ratio_quadratic = []
        for n in (6, 12, 24):
            worst = 0
            for seed in range(10):
                alg = SSRmin(n, n + 1)
                init = alg.random_configuration(random.Random(seed))
                res = converge(alg, RandomSubsetDaemon(seed=seed), init)
                assert res.converged
                worst = max(worst, res.steps)
            worst_ratio_quadratic.append(worst / (n * n))
        # Ratios to n^2 stay bounded (no cubic blow-up across a 4x n range).
        assert max(worst_ratio_quadratic) <= 5.0
