"""Smoke tests: every example script runs to completion and says what it
promises.  Run as subprocesses so they exercise the installed package the
way a user would."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "converged in" in out
        assert "token holders always in [1, 2]" in out
        assert "graceful handover" in out

    def test_camera_network(self):
        out = run_example("camera_network.py")
        assert "coverage:            100.00%" in out
        assert "healed itself" in out

    def test_fault_recovery(self):
        out = run_example("fault_recovery.py")
        assert "recovered in" in out
        assert "legitimate + cache-coherent again" in out
        assert "[1, 2]" in out

    def test_model_gap_study(self):
        out = run_example("model_gap_study.py")
        assert "Dijkstra SSToken (Figure 11)" in out
        assert "SSRmin (Figure 13)" in out
        assert "zero-token time 0.0" in out  # the SSRmin line

    @pytest.mark.slow
    def test_convergence_study(self):
        out = run_example("convergence_study.py", timeout=600)
        assert "alpha" in out
        assert "consistent with O(n^2)" in out

    def test_multi_inclusion(self):
        out = run_example("multi_inclusion.py")
        assert "guaranteed layer-token band (2, 4)" in out
        assert "handover overlap fraction: 100%" in out

    def test_verify_instance(self):
        out = run_example("verify_instance.py")
        assert "SELF-STABILIZING" in out
        assert "a provably worst execution" in out

    def test_wireless_sensor_net(self):
        out = run_example("wireless_sensor_net.py")
        assert "collision rate" in out
        assert "coverage:" in out
