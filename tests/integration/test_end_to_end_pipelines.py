"""End-to-end pipeline tests crossing several subsystems at once.

Each test exercises a realistic user workflow that touches three or more
subpackages — the seams unit tests cannot reach.
"""

import random

import pytest

from repro.analysis.census import census_execution
from repro.analysis.fairness import starvation_report
from repro.analysis.scaling import fit_power_law
from repro.analysis.tracefmt import format_trace
from repro.apps.mutex import CriticalSectionService
from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon
from repro.daemons.replay import ReplayDaemon
from repro.faults.injection import FaultInjector
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.trace import MessageTrace
from repro.simulation.engine import SharedMemorySimulator
from repro.simulation.serialize import load_execution, save_execution
from repro.verification.properties import (
    check_convergence_property,
    check_mutual_inclusion_property,
)


class TestRecordAnalyzeReplayPipeline:
    def test_full_loop(self, tmp_path):
        """simulate -> analyze -> serialize -> reload -> replay -> verify."""
        alg = SSRmin(6, 7)
        init = alg.random_configuration(random.Random(42))
        sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=42))
        result = sim.run(init, max_steps=600,
                         stop_when=alg.is_legitimate)
        execution = result.execution

        # Analysis layer over the recorded run.
        census = census_execution(execution, alg.n)
        assert census.lemma5_holds
        fairness = starvation_report(execution, alg)
        total_moves = sum(len(step) for step in execution.moves)
        assert sum(fairness.selections.values()) == total_moves
        assert check_convergence_property(execution.configurations, alg)
        assert check_mutual_inclusion_property(execution.configurations, alg)

        # Persist and reload.
        path = tmp_path / "run.json"
        save_execution(execution, str(path),
                       algorithm_name="SSRmin", parameters={"n": 6, "K": 7},
                       configuration_class="Configuration")
        restored, meta = load_execution(str(path))
        assert meta["parameters"]["n"] == 6

        # Replay bit-exactly and render the trace.
        replay = SharedMemorySimulator(alg, ReplayDaemon(restored.selections()))
        replayed = replay.run(restored.initial, max_steps=restored.steps)
        assert [c.states for c in replayed.execution.configurations] == [
            c.states for c in restored.configurations
        ]
        text = format_trace(alg, replayed.execution.slice(0, 5))
        assert text.splitlines()[0].startswith("Step")


class TestFaultedNetworkServicePipeline:
    def test_service_survives_injected_faults(self):
        """camera service + message trace + fault injection + recovery."""
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=7, delay_model=UniformDelay(0.5, 1.5))
        trace = MessageTrace().attach(net)
        service = CriticalSectionService(net)

        net.run(60.0)
        injector = FaultInjector(alg, seed=8)
        injector.hit_network_state(net, count=2)
        injector.hit_network_cache(net, count=2)
        net.run(300.0)

        # Messages flowed and obeyed the substrate discipline.
        assert trace.per_direction_fifo()
        assert trace.of_kind("deliver")

        # Service kept running: sessions exist for every node and the late
        # stretch of the run has full overlap again.
        counts = service.session_counts()
        assert all(counts[i] > 0 for i in range(5))
        late = [s for s in service.closed_sessions() if s.start > 200.0]
        assert late, "no sessions after recovery window"

    def test_timeline_and_service_agree(self):
        """Two independent observers of the same network must agree on
        total privileged time."""
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=9, delay_model=UniformDelay(0.5, 1.5))
        service = CriticalSectionService(net)
        net.run(200.0)
        net.timeline.finish(net.queue.now)

        timeline_total = sum(
            (b - a) * len(h) for a, b, h in net.timeline.intervals()
        )
        service_total = sum(service.occupancy(i) for i in range(5))
        # Open sessions at the end account for any shortfall.
        open_time = sum(
            net.queue.now - s.start
            for per in service.sessions.values()
            for s in per
            if s.open
        )
        assert timeline_total == pytest.approx(service_total + open_time,
                                               rel=1e-6)


class TestScalingPipeline:
    def test_batch_sweep_to_fit(self):
        """vectorized sweep -> summary -> power-law fit, end to end."""
        from repro.simulation.batch import batch_convergence_steps

        ns = (6, 12, 24)
        means = []
        for n in ns:
            steps = batch_convergence_steps(n=n, trials=150, p=0.5, seed=n)
            means.append(float(steps.mean()))
        fit = fit_power_law(ns, means)
        assert 0.5 <= fit.exponent <= 2.2
        assert fit.r_squared > 0.9
