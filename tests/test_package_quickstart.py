"""The package docstring's quickstart example must actually work (doctest)."""

import doctest

import repro


def test_quickstart_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0, "package docstring lost its example"
    assert results.failed == 0


def test_version_exposed():
    assert repro.__version__
    assert repro.SSRmin is not None
