"""ProgressEmitter: throttling, rates and census, with fake clock/stream."""

import io

import pytest

from repro.telemetry import Event, ProgressEmitter


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def step_event(seq, step):
    return Event(seq, float(step), "engine", "step",
                 {"step": step, "moves": [[0, "R1"]]})


class TestProgressEmitter:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            ProgressEmitter(interval=0)

    def test_throttled_by_wall_clock(self):
        clock, stream = FakeClock(), io.StringIO()
        emitter = ProgressEmitter(label="x", interval=2.0,
                                  stream=stream, clock=clock)
        for i in range(5):
            emitter(step_event(i, i))
        assert emitter.emitted == 0  # clock never advanced
        clock.now = 2.0
        emitter(step_event(5, 5))
        assert emitter.emitted == 1

    def test_rate_is_steps_per_window(self):
        clock, stream = FakeClock(), io.StringIO()
        emitter = ProgressEmitter(interval=1.0, stream=stream, clock=clock)
        for i in range(10):
            emitter(step_event(i, i))
        clock.now = 2.0
        emitter(step_event(10, 10))
        line = stream.getvalue()
        # 11 steps in a 2-second window -> 6/s after rounding
        assert "11 steps (6/s)" in line

    def test_counts_messages_and_census(self):
        clock, stream = FakeClock(), io.StringIO()
        emitter = ProgressEmitter(label="fig13", interval=1.0,
                                  stream=stream, clock=clock)
        emitter(Event(0, 0.0, "network", "send", {"src": 0, "dst": 1}))
        emitter(Event(1, 0.5, "network", "census", {"holders": [2, 4]}))
        clock.now = 1.0
        emitter(Event(2, 1.0, "batch", "batch_step", {"step": 1}))
        line = stream.getvalue()
        assert line.startswith("[progress fig13]")
        assert "1 msgs" in line
        assert "census=2,4" in line

    def test_unknown_census_renders_question_mark(self):
        clock, stream = FakeClock(), io.StringIO()
        emitter = ProgressEmitter(interval=1.0, stream=stream, clock=clock)
        emitter.emit()
        assert "census=?" in stream.getvalue()
