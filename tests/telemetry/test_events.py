"""Event bus semantics and event ordering across engine steps."""

import itertools

from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import SynchronousDaemon
from repro.simulation.engine import SharedMemorySimulator
from repro.telemetry import Event, EventBus, telemetry_session


class TestEventBus:
    def test_publish_without_subscribers_returns_none(self):
        bus = EventBus()
        assert bus.publish("engine", "step", 1.0) is None
        assert not bus.active

    def test_publish_fans_out(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        event = bus.publish("network", "send", 2.5, src=0, dst=1)
        assert bus.active
        assert seen == [event]
        assert event.layer == "network"
        assert event.kind == "send"
        assert event.time == 2.5
        assert event.payload == {"src": 0, "dst": 1}

    def test_seq_increments_per_event(self):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        a = bus.publish("engine", "step", 0.0)
        b = bus.publish("engine", "step", 1.0)
        assert b.seq == a.seq + 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        fn = bus.subscribe(seen.append)
        bus.unsubscribe(fn)
        bus.publish("engine", "step", 0.0)
        assert seen == []
        bus.unsubscribe(fn)  # no-op on absent subscriber

    def test_shared_sequencer_interleaves_monotonically(self):
        seq = itertools.count()
        bus_a, bus_b = EventBus(sequence=seq), EventBus(sequence=seq)
        seen = []
        bus_a.subscribe(seen.append)
        bus_b.subscribe(seen.append)
        bus_a.publish("engine", "step", 0.0)
        bus_b.publish("network", "send", 0.1)
        bus_a.publish("engine", "step", 1.0)
        seqs = [e.seq for e in seen]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_event_json_round_trip(self):
        event = Event(7, 3.25, "batch", "batch_step", {"step": 7, "active": 3})
        assert Event.from_json(event.to_json()) == event


class TestEngineEventOrdering:
    def run_engine(self, max_steps=40):
        events = []
        with telemetry_session() as session:
            session.subscribe(events.append)
            alg = SSRmin(5, 6)
            sim = SharedMemorySimulator(alg, SynchronousDaemon())
            result = sim.run(alg.initial_configuration(),
                             max_steps=max_steps, record=False)
        return events, result, session

    def test_seq_strictly_monotonic_across_steps(self):
        events, _, _ = self.run_engine()
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_run_start_precedes_steps_precede_run_end(self):
        events, _, _ = self.run_engine()
        kinds = [e.kind for e in events if e.layer == "engine"]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert all(k in ("step", "census") for k in kinds[1:-1])

    def test_step_events_carry_moves(self):
        events, result, _ = self.run_engine()
        steps = [e for e in events if e.kind == "step"]
        assert len(steps) == result.steps
        for e in steps:
            for move in e.payload["moves"]:
                proc, rule = move
                assert 0 <= proc < 5
                assert rule in ("R1", "R2", "R3", "R4", "R5")

    def test_step_times_monotonic(self):
        events, _, _ = self.run_engine()
        times = [e.time for e in events if e.kind == "step"]
        assert times == sorted(times)

    def test_session_counters_match_events(self):
        events, result, session = self.run_engine()
        steps_total = session.registry.get("steps_total")
        assert steps_total is not None
        assert steps_total.total() == result.steps
        rule_fired = session.registry.get("rule_fired_total")
        moves = sum(len(e.payload["moves"])
                    for e in events if e.kind == "step")
        assert rule_fired.total() == moves
