"""Telemetry sessions end to end: network bridge, MessageTrace parity,
trace files and run manifests."""

import os

from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.trace import MessageTrace
from repro.simulation.batch import batch_convergence_steps
from repro.telemetry import (
    TraceStats,
    current_session,
    read_trace,
    telemetry_session,
)


def run_lossy_network(trace_path=None, seed=2, loss=0.1, horizon=60.0):
    """One seeded lossy CST run under a session, with a MessageTrace."""
    with telemetry_session(trace_path=trace_path) as session:
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=seed, loss_probability=loss,
                          delay_model=UniformDelay(0.5, 1.5))
        mtrace = MessageTrace().attach(net)
        net.run(horizon)
    return session, net, mtrace


class TestAmbientContext:
    def test_no_session_by_default(self):
        assert current_session() is None

    def test_nesting_restores_outer(self):
        with telemetry_session() as outer:
            assert current_session() is outer
            with telemetry_session() as inner:
                assert current_session() is inner
            assert current_session() is outer
        assert current_session() is None


class TestNetworkBridge:
    def test_session_counters_match_link_statistics(self):
        session, net, _ = run_lossy_network()
        stats = net.message_stats()
        assert stats["lost"] > 0
        reg = session.registry
        assert reg.get("messages_sent_total").total() == stats["sent"]
        assert reg.get("messages_delivered_total").total() == stats["delivered"]
        assert reg.get("messages_lost_total").total() == stats["lost"]
        assert reg.get("timer_fires_total").total() > 0

    def test_net_start_descriptor_recorded(self):
        session, _, _ = run_lossy_network(seed=5)
        descriptors = [d for d in session.run_descriptors
                       if d["kind"] == "net_start"]
        assert len(descriptors) == 1
        d = descriptors[0]
        assert d["n"] == 5
        assert d["K"] == 6
        assert d["seed"] == 5


class TestMessageTraceParity:
    """MessageTrace (bus subscriber) and the session trace must agree."""

    def test_counts_match_on_same_seeded_run(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        session, net, mtrace = run_lossy_network(trace_path=trace_path)
        replay = TraceStats.from_file(trace_path)
        for kind in ("send", "deliver", "loss", "timer"):
            assert replay.messages.get(kind, 0) == len(mtrace.of_kind(kind)), kind
        assert replay.messages["loss"] > 0
        assert replay.messages["timer"] > 0
        stats = net.message_stats()
        assert replay.messages["send"] == stats["sent"]
        assert replay.messages["deliver"] == stats["delivered"]
        assert replay.messages["loss"] == stats["lost"]

    def test_detached_trace_without_session(self):
        # MessageTrace works standalone: network buses exist regardless of
        # whether a telemetry session is active.
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=3, delay_model=UniformDelay(0.5, 1.5))
        mtrace = MessageTrace().attach(net)
        net.run(30.0)
        stats = net.message_stats()
        assert len(mtrace.of_kind("send")) == stats["sent"]
        assert len(mtrace.of_kind("deliver")) == stats["delivered"]


class TestTraceFile:
    def test_trace_file_is_seq_monotonic_and_complete(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        session, _, _ = run_lossy_network(trace_path=trace_path)
        events = read_trace(trace_path)
        assert len(events) == session.events_total
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_cap_records_dropped_events(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        with telemetry_session(trace_path=trace_path,
                               max_trace_events=10) as session:
            alg = SSRmin(5, 6)
            net = transformed(alg, seed=1,
                              delay_model=UniformDelay(0.5, 1.5))
            net.run(30.0)
        assert session.trace_truncated
        assert session.trace_dropped_events == session.events_total - 10
        assert len(read_trace(trace_path)) == 10

    def test_extra_subscribers_see_network_events(self):
        kinds = []
        with telemetry_session() as session:
            session.subscribe(lambda e: kinds.append(e.kind))
            alg = SSRmin(5, 6)
            net = transformed(alg, seed=4,
                              delay_model=UniformDelay(0.5, 1.5))
            net.run(20.0)
        assert "net_start" in kinds
        assert "send" in kinds
        assert "deliver" in kinds


class TestBatchInstrumentation:
    def test_convergence_histogram_observed(self):
        with telemetry_session() as session:
            batch_convergence_steps(n=5, trials=16, p=0.5, seed=0)
        hist = session.registry.get("convergence_steps")
        assert hist is not None
        assert hist.count(engine="batch") == 16
        assert session.registry.get("batch_steps_total").total() > 0


class TestInstrumentedExperiment:
    def test_manifest_and_trace_written(self, tmp_path):
        from repro.experiments.registry import run_experiment_instrumented
        from repro.telemetry import read_manifest

        result, run_dir = run_experiment_instrumented(
            "fig04", fast=True, outdir=str(tmp_path), trace=True)
        assert result.match
        assert run_dir == str(tmp_path / "fig04")
        manifest = read_manifest(os.path.join(run_dir, "manifest.json"))
        assert manifest["schema"] == 1
        assert manifest["experiment_id"] == "fig04"
        assert manifest["command"] == "python -m repro run fig04 --fast"
        assert [p["label"] for p in manifest["phases"]] == ["resolve", "run"]
        assert manifest["extra"]["fast"] is True
        assert manifest["extra"]["match"] is True
        assert manifest["trace"]["file"] == "trace.jsonl"
        assert not manifest["trace"]["truncated"]
        replay = TraceStats.from_file(os.path.join(run_dir, "trace.jsonl"))
        assert replay.events_total == manifest["events_total"]
        assert replay.seq_monotonic

    def test_manifest_only_when_trace_disabled(self, tmp_path):
        from repro.experiments.registry import run_experiment_instrumented

        _, run_dir = run_experiment_instrumented(
            "lem1", fast=True, outdir=str(tmp_path), trace=False)
        assert os.path.exists(os.path.join(run_dir, "manifest.json"))
        assert not os.path.exists(os.path.join(run_dir, "trace.jsonl"))
