"""JSONL trace export/import round trips and the stats replay."""

import json

import numpy as np
import pytest

from repro.telemetry import (
    Event,
    JsonlTraceWriter,
    TraceStats,
    iter_trace,
    read_trace,
    write_events,
)
from repro.telemetry.export import _coerce


def make_events(count):
    return [
        Event(i, float(i), "engine", "step", {"step": i, "moves": [[0, "R1"]]})
        for i in range(count)
    ]


class TestRoundTrip:
    def test_write_then_read_preserves_events(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        events = make_events(10)
        assert write_events(path, events) == 10
        assert read_trace(path) == events

    def test_iter_trace_accepts_open_handle(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_events(str(path), make_events(3))
        with open(path) as fh:
            assert len(list(iter_trace(fh))) == 3

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_events(str(path), make_events(2))
        path.write_text(path.read_text() + "\n\n")
        assert len(read_trace(str(path))) == 2

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_events(str(path), make_events(2))
        path.write_text(path.read_text() + "{not json\n")
        with pytest.raises(ValueError, match="line 3"):
            read_trace(str(path))


class TestCoercion:
    def test_numpy_scalars_become_numbers(self):
        assert _coerce(np.int64(7)) == 7
        assert _coerce(np.float64(0.5)) == 0.5

    def test_sequences_coerced_elementwise(self):
        assert _coerce((np.int64(1), [np.int64(2)])) == [1, [2]]

    def test_fallback_is_repr(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert _coerce(Odd()) == "<odd>"

    def test_numpy_payload_survives_write(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        event = Event(0, 0.0, "batch", "batch_step",
                      {"active": np.int64(3), "holders": [np.int64(1)]})
        write_events(path, [event])
        with open(path) as fh:
            row = json.loads(fh.readline())
        assert row["payload"] == {"active": 3, "holders": [1]}


class TestTruncationCap:
    def test_cap_is_not_silent(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        writer = JsonlTraceWriter(path, max_events=5)
        for event in make_events(8):
            writer.write(event)
        writer.close()
        assert writer.written == 5
        assert writer.dropped == 3
        assert writer.truncated
        assert len(read_trace(path)) == 5

    def test_write_after_close_raises(self, tmp_path):
        writer = JsonlTraceWriter(str(tmp_path / "t.jsonl"))
        writer.close()
        with pytest.raises(ValueError):
            writer.write(make_events(1)[0])


class TestStatsReplay:
    def test_replay_recounts_steps_and_rules(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_events(path, make_events(12))
        stats = TraceStats.from_file(path)
        assert stats.events_total == 12
        assert stats.engine_steps == 12
        assert stats.rules == {"R1": 12}
        assert stats.seq_monotonic

    def test_replay_detects_seq_regression(self):
        events = make_events(3)
        shuffled = [events[0], events[2], events[1]]
        stats = TraceStats.from_events(shuffled)
        assert not stats.seq_monotonic

    def test_message_and_census_accounting(self):
        events = [
            Event(0, 0.0, "network", "net_start", {"n": 3}),
            Event(1, 0.5, "network", "send", {"src": 0, "dst": 1}),
            Event(2, 1.0, "network", "loss", {"src": 0, "dst": 1}),
            Event(3, 1.5, "network", "deliver", {"src": 0, "dst": 1}),
            Event(4, 2.0, "network", "timer", {"node": 0}),
            Event(5, 2.5, "network", "census", {"holders": [2]}),
        ]
        stats = TraceStats.from_events(events)
        assert stats.messages == {
            "send": 1, "deliver": 1, "loss": 1, "timer": 1
        }
        assert stats.last_census == [2]
        assert stats.runs == [
            {"layer": "network", "kind": "net_start", "n": 3}
        ]
        assert stats.time_span["network"] == (0.0, 2.5)

    def test_render_mentions_headline_numbers(self):
        stats = TraceStats.from_events(make_events(4))
        text = stats.render()
        assert "events: 4" in text
        assert "engine steps: 4" in text
        assert "R1=4" in text
