"""CLI: `repro run` telemetry artifacts and the `repro stats` replay."""

import os

from repro.cli import main
from repro.telemetry import Event, write_events


class TestRunTelemetry:
    def test_run_writes_artifacts_and_stats_replays(self, tmp_path, capsys):
        outdir = str(tmp_path / "runs")
        assert main(["run", "lem1", "--fast",
                     "--telemetry-dir", outdir]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        run_dir = os.path.join(outdir, "lem1")
        trace = os.path.join(run_dir, "trace.jsonl")
        manifest = os.path.join(run_dir, "manifest.json")
        assert os.path.exists(trace)
        assert os.path.exists(manifest)

        assert main(["stats", trace]) == 0
        out = capsys.readouterr().out
        assert "seq monotonic: True" in out

        assert main(["stats", manifest]) == 0
        out = capsys.readouterr().out
        assert "experiment: lem1" in out
        assert "command:    python -m repro run lem1 --fast" in out

    def test_no_trace_flag(self, tmp_path, capsys):
        outdir = str(tmp_path / "runs")
        assert main(["run", "lem1", "--fast", "--telemetry-dir", outdir,
                     "--no-trace"]) == 0
        out = capsys.readouterr().out
        assert "trace.jsonl" not in out
        run_dir = os.path.join(outdir, "lem1")
        assert os.path.exists(os.path.join(run_dir, "manifest.json"))
        assert not os.path.exists(os.path.join(run_dir, "trace.jsonl"))

    def test_no_telemetry_flag(self, tmp_path, capsys):
        outdir = str(tmp_path / "runs")
        assert main(["run", "lem1", "--fast", "--telemetry-dir", outdir,
                     "--no-telemetry"]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" not in out
        assert not os.path.exists(os.path.join(outdir, "lem1"))


class TestStatsCommand:
    def test_non_monotonic_trace_exits_nonzero(self, tmp_path, capsys):
        path = str(tmp_path / "bad.jsonl")
        write_events(path, [
            Event(1, 0.0, "engine", "step", {"step": 0, "moves": []}),
            Event(0, 1.0, "engine", "step", {"step": 1, "moves": []}),
        ])
        assert main(["stats", path]) == 1
        assert "seq monotonic: False" in capsys.readouterr().out
