"""Counter/gauge/histogram semantics, including disabled-registry no-ops."""

import math

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestCounter:
    def test_starts_at_zero(self):
        c = Counter("steps_total")
        assert c.value() == 0
        assert c.total() == 0

    def test_increments_accumulate(self):
        c = Counter("steps_total")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labels_select_independent_series(self):
        c = Counter("rule_fired_total")
        c.inc(rule="R1")
        c.inc(2, rule="R2")
        assert c.value(rule="R1") == 1
        assert c.value(rule="R2") == 2
        assert c.value(rule="R3") == 0
        assert c.total() == 3

    def test_label_order_irrelevant(self):
        c = Counter("c")
        c.inc(a=1, b=2)
        assert c.value(b=2, a=1) == 1

    def test_rejects_negative_increment(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot_rows(self):
        c = Counter("c", help="h")
        c.inc(3, daemon="Sync")
        rows = c.snapshot()
        assert rows == [{"labels": {"daemon": "Sync"}, "value": 3}]


class TestGauge:
    def test_set_and_overwrite(self):
        g = Gauge("tokens")
        g.set(5)
        g.set(2)
        assert g.value() == 2

    def test_inc_dec(self):
        g = Gauge("tokens")
        g.inc(3)
        g.dec()
        assert g.value() == 2


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("convergence_steps")
        for v in (1, 10, 100):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == 111
        assert h.mean() == pytest.approx(37.0)

    def test_empty_mean_is_nan(self):
        h = Histogram("h")
        assert math.isnan(h.mean())

    def test_bucket_assignment(self):
        h = Histogram("h", buckets=(1, 10, 100))
        h.observe(0.5)   # <= 1
        h.observe(10)    # <= 10 (inclusive upper bound)
        h.observe(1e9)   # overflow -> +inf bucket
        ((_, cell),) = list(h.series())
        assert cell["buckets"] == [1.0, 10.0, 100.0, "inf"]
        assert cell["counts"] == [1, 1, 0, 1]

    def test_appends_inf_bucket(self):
        h = Histogram("h", buckets=(1, 2))
        assert h.buckets[-1] == math.inf

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_labelled_series_independent(self):
        h = Histogram("h")
        h.observe(1, engine="scalar")
        h.observe(2, engine="batch")
        assert h.count(engine="scalar") == 1
        assert h.count(engine="batch") == 1


class TestRegistry:
    def test_idempotent_per_name(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")

    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert "c" in snap["counters"]
        assert "g" in snap["gauges"]
        assert "h" in snap["histograms"]

    def test_disabled_registry_hands_out_nulls(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("c") is NULL_COUNTER
        assert reg.gauge("g") is NULL_GAUGE
        assert reg.histogram("h") is NULL_HISTOGRAM

    def test_null_metrics_are_inert(self):
        NULL_COUNTER.inc(5, rule="R1")
        NULL_GAUGE.set(3)
        NULL_GAUGE.inc()
        NULL_HISTOGRAM.observe(7)
        assert NULL_COUNTER.total() == 0
        assert NULL_GAUGE.value() == 0
        assert NULL_HISTOGRAM.count() == 0

    def test_disabled_registry_registers_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc()
        assert reg.names() == []
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
