"""Property-based tests for the token timeline data structure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.messagepassing.timeline import TokenTimeline


@st.composite
def recorded_timeline(draw):
    """A timeline built from a random monotone sequence of records."""
    n_points = draw(st.integers(1, 30))
    times = sorted(
        draw(
            st.lists(
                st.floats(0, 100, allow_nan=False, allow_infinity=False),
                min_size=n_points,
                max_size=n_points,
            )
        )
    )
    tl = TokenTimeline()
    holder_sets = []
    for t in times:
        holders = draw(st.lists(st.integers(0, 4), max_size=3))
        tl.record(t, holders)
        holder_sets.append(tuple(sorted(set(holders))))
    end = times[-1] + draw(st.floats(0.1, 10))
    tl.finish(end)
    return tl, end


class TestIntervalPartition:
    @given(recorded_timeline())
    @settings(max_examples=200, deadline=None)
    def test_intervals_are_contiguous_and_ordered(self, built):
        tl, end = built
        intervals = tl.intervals()
        for (a1, b1, _), (a2, b2, _) in zip(intervals, intervals[1:]):
            assert b1 == a2
            assert a1 < b1 and a2 < b2
        if intervals:
            assert intervals[-1][1] == end

    @given(recorded_timeline())
    @settings(max_examples=200, deadline=None)
    def test_adjacent_intervals_have_distinct_holders(self, built):
        tl, _ = built
        intervals = tl.intervals()
        for (_, _, h1), (_, _, h2) in zip(intervals, intervals[1:]):
            assert h1 != h2

    @given(recorded_timeline())
    @settings(max_examples=200, deadline=None)
    def test_zero_time_bounded_by_span(self, built):
        tl, end = built
        intervals = tl.intervals()
        if not intervals:
            return
        span = end - intervals[0][0]
        assert 0.0 <= tl.zero_time() <= span + 1e-9

    @given(recorded_timeline())
    @settings(max_examples=200, deadline=None)
    def test_coverage_complements_zero_time(self, built):
        tl, end = built
        intervals = tl.intervals()
        if not intervals:
            return
        span = end - intervals[0][0]
        if span <= 0:
            return
        expected = 1.0 - tl.zero_time() / span
        assert abs(tl.coverage_fraction(from_time=intervals[0][0]) - expected) < 1e-6

    @given(recorded_timeline())
    @settings(max_examples=200, deadline=None)
    def test_count_bounds_are_achieved(self, built):
        tl, _ = built
        intervals = tl.intervals()
        if not intervals:
            return
        lo, hi = tl.count_bounds(from_time=intervals[0][0])
        counts = [len(h) for _, _, h in intervals]
        assert lo == min(counts) and hi == max(counts)
