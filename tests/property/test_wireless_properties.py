"""Property-based invariants of the wireless medium."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import coherent_caches, legitimate_initial_states
from repro.messagepassing.des import EventQueue
from repro.messagepassing.links import FixedDelay, UniformDelay
from repro.messagepassing.wireless import WirelessMedium, build_wireless_network


@st.composite
def transmission_schedule(draw):
    """A random schedule of (sender, start-offset) transmissions."""
    n = draw(st.integers(3, 8))
    count = draw(st.integers(1, 12))
    sched = [
        (draw(st.integers(0, n - 1)),
         draw(st.floats(0.0, 10.0)))
        for _ in range(count)
    ]
    airtime = draw(st.floats(0.3, 2.0))
    return n, sched, airtime


class TestMediumConservation:
    @given(transmission_schedule())
    @settings(max_examples=100, deadline=None)
    def test_every_reception_is_delivered_or_collided(self, params):
        """Conservation: each completed transmission has exactly two
        potential receptions; every one ends as a delivery or a collision."""
        n, sched, airtime = params
        queue = EventQueue()
        medium = WirelessMedium(queue, n, FixedDelay(airtime),
                                random.Random(0))
        medium.deliver = lambda r, s, p: None
        for sender, offset in sched:
            queue.schedule_at(offset, lambda s=sender: medium.transmit(s, "x"))
        queue.run_until(100.0)
        assert medium.transmissions == len(sched)
        assert medium.deliveries + medium.collisions == 2 * len(sched)

    @given(transmission_schedule())
    @settings(max_examples=60, deadline=None)
    def test_isolated_transmissions_always_deliver(self, params):
        """Spacing every transmission far apart removes all collisions."""
        n, sched, airtime = params
        queue = EventQueue()
        medium = WirelessMedium(queue, n, FixedDelay(airtime),
                                random.Random(0))
        medium.deliver = lambda r, s, p: None
        gap = airtime * 3
        for k, (sender, _) in enumerate(sched):
            queue.schedule_at(k * gap, lambda s=sender: medium.transmit(s, "x"))
        queue.run_until(len(sched) * gap + 10 * airtime)
        assert medium.collisions == 0
        assert medium.deliveries == 2 * len(sched)


class TestNetworkProperties:
    @given(st.integers(0, 2 ** 16), st.integers(4, 7))
    @settings(max_examples=8, deadline=None)
    def test_tolerance_across_seeds_and_sizes(self, seed, n):
        alg = SSRmin(n, n + 1)
        states = legitimate_initial_states(alg)
        net = build_wireless_network(
            alg, states, seed=seed,
            initial_caches=coherent_caches(list(states), n),
        )
        net.run(300.0)
        net.timeline.finish(net.queue.now)
        # Collisions ARE message loss, so Theorem 3's no-loss hypothesis
        # does not apply: brief extinction windows are permitted.  The
        # Theorem-4 contract is high coverage, bounded holders, recovery.
        assert net.timeline.coverage_fraction() >= 0.85
        _, hi = net.timeline.count_bounds()
        assert hi <= 2
        served = {h for pt in net.timeline.points for h in pt.holders}
        assert served == set(range(n))

    @given(st.integers(0, 2 ** 16))
    @settings(max_examples=6, deadline=None)
    def test_network_reception_conservation(self, seed):
        alg = SSRmin(5, 6)
        states = legitimate_initial_states(alg)
        net = build_wireless_network(
            alg, states, seed=seed,
            initial_caches=coherent_caches(list(states), 5),
        )
        net.run(100.0)
        stats = net.message_stats()
        completed = stats["delivered"] + stats["lost"]
        # In-flight transmissions at cutoff account for the gap.
        assert completed <= 2 * stats["sent"]
        assert completed >= 2 * (stats["sent"] - 5)  # <= one per radio in flight
