"""Property-based tests for the vectorized batch simulator."""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ssrmin import SSRmin
from repro.simulation.batch import BatchSSRmin


@st.composite
def batch_with_scalar_twin(draw):
    """A batch of random configurations plus their SSRmin instance."""
    n = draw(st.integers(3, 7))
    K = n + draw(st.integers(1, 3))
    trials = draw(st.integers(1, 20))
    seed = draw(st.integers(0, 2 ** 16))
    alg = SSRmin(n, K)
    rng = random.Random(seed)
    configs = [alg.random_configuration(rng) for _ in range(trials)]
    batch = BatchSSRmin(n, K, trials=trials, p=1.0, seed=seed)
    batch.set_configurations(configs)
    return alg, batch, configs


class TestScalarEquivalence:
    @given(batch_with_scalar_twin())
    @settings(max_examples=60, deadline=None)
    def test_legitimacy_mask_matches_scalar(self, triple):
        alg, batch, configs = triple
        mask = batch.legitimate_mask()
        for t, config in enumerate(configs):
            assert bool(mask[t]) == alg.is_legitimate(config)

    @given(batch_with_scalar_twin())
    @settings(max_examples=60, deadline=None)
    def test_enabled_counts_match_scalar(self, triple):
        alg, batch, configs = triple
        counts = batch.enabled_counts()
        for t, config in enumerate(configs):
            assert counts[t] == len(alg.enabled_processes(config))

    @given(batch_with_scalar_twin())
    @settings(max_examples=40, deadline=None)
    def test_synchronous_step_matches_scalar(self, triple):
        alg, batch, configs = triple
        batch.step()
        for t, config in enumerate(configs):
            enabled = alg.enabled_processes(config)
            expected = alg.step(config, enabled) if enabled else config
            assert batch.configuration(t).states == expected.states

    @given(batch_with_scalar_twin())
    @settings(max_examples=30, deadline=None)
    def test_no_deadlock_in_batch(self, triple):
        """Lemma 4 holds batched: every trial has an enabled process."""
        _, batch, _ = triple
        assert (batch.enabled_counts() >= 1).all()


class TestConvergenceProperties:
    @given(st.integers(3, 8), st.integers(0, 2 ** 16), st.floats(0.1, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_all_trials_converge_for_any_p(self, n, seed, p):
        batch = BatchSSRmin(n, n + 1, trials=30, p=p, seed=seed)
        batch.randomize(seed=seed + 1)
        result = batch.run_until_legitimate(60 * n * n + 600)
        assert result.all_converged
        assert (result.steps <= 60 * n * n + 600).all()
        assert batch.legitimate_mask().all()

    @given(st.integers(3, 7), st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_legitimate_starts_report_zero_steps(self, n, seed):
        alg = SSRmin(n, n + 1)
        batch = BatchSSRmin(n, n + 1, trials=4, seed=seed)
        batch.set_configurations(
            [alg.initial_configuration(x % (n + 1)) for x in range(4)]
        )
        result = batch.run_until_legitimate(10)
        assert (result.steps == 0).all()
