"""Property-based tests for serialization and state round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import Configuration, SSRminState
from repro.simulation.execution import Execution, Move
from repro.simulation.serialize import execution_from_dict, execution_to_dict


def state_strategy(K=8):
    return st.tuples(st.integers(0, K - 1), st.integers(0, 1), st.integers(0, 1))


def configuration_strategy(n_min=1, n_max=8):
    return st.lists(state_strategy(), min_size=n_min, max_size=n_max).map(
        Configuration
    )


class TestStateRoundTrips:
    @given(state_strategy())
    @settings(max_examples=200, deadline=None)
    def test_ssrminstate_parse_str_roundtrip(self, raw):
        state = SSRminState(*raw)
        assert SSRminState.parse(str(state)) == state

    @given(configuration_strategy())
    @settings(max_examples=200, deadline=None)
    def test_configuration_parse_str_roundtrip(self, config):
        text = str(config).strip("()")
        assert Configuration.parse(text).states == config.states

    @given(configuration_strategy(n_min=2))
    @settings(max_examples=100, deadline=None)
    def test_replace_then_read_back(self, config):
        new = (7, 1, 1)
        c2 = config.replace(1, new)
        assert c2[1] == new
        assert c2.replace(1, config[1]).states == config.states


@st.composite
def execution_strategy(draw):
    n = draw(st.integers(2, 5))
    steps = draw(st.integers(0, 10))
    configs = [draw(configuration_strategy(n_min=n, n_max=n))]
    moves = []
    for _ in range(steps):
        configs.append(draw(configuration_strategy(n_min=n, n_max=n)))
        movers = draw(
            st.lists(st.integers(0, n - 1), min_size=1, max_size=n,
                     unique=True)
        )
        rule = draw(st.sampled_from(["R1", "R2", "R3", "R4", "R5"]))
        moves.append(tuple(Move(m, rule) for m in movers))
    return Execution(configurations=configs, moves=moves)


class TestExecutionRoundTrips:
    @given(execution_strategy())
    @settings(max_examples=100, deadline=None)
    def test_dict_roundtrip_is_lossless(self, execution):
        data = execution_to_dict(execution, algorithm_name="X",
                                 parameters={"n": 1},
                                 configuration_class="Configuration")
        restored, meta = execution_from_dict(data)
        assert len(restored) == len(execution)
        assert restored.selections() == execution.selections()
        assert restored.rule_counts() == execution.rule_counts()
        for a, b in zip(restored.configurations, execution.configurations):
            assert a.states == b.states

    @given(execution_strategy())
    @settings(max_examples=50, deadline=None)
    def test_json_stability(self, execution):
        """Serializing twice yields identical payloads (stable format)."""
        import json

        d1 = execution_to_dict(execution, configuration_class="Configuration")
        d2 = execution_to_dict(execution, configuration_class="Configuration")
        assert json.dumps(d1, sort_keys=True) == json.dumps(d2, sort_keys=True)
