"""Property-based tests for the message-passing layer.

These sample the *parameter space* of the DES (delays, dwell, timers, seeds)
and assert Theorem 3's bounds hold across all of it — the strongest
randomized evidence for model-gap tolerance.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import FixedDelay, UniformDelay
from repro.messagepassing.modelgap import evaluate_gap


@st.composite
def network_params(draw):
    n = draw(st.integers(3, 7))
    seed = draw(st.integers(0, 2 ** 16))
    lo = draw(st.floats(0.2, 1.0))
    hi = lo + draw(st.floats(0.1, 2.0))
    dwell = draw(st.floats(0.1, 1.5))
    timer = draw(st.floats(2.0, 10.0))
    return n, seed, lo, hi, dwell, timer


class TestTheorem3AcrossParameterSpace:
    @given(network_params())
    @settings(max_examples=25, deadline=None)
    def test_token_bounds_hold(self, params):
        n, seed, lo, hi, dwell, timer = params
        alg = SSRmin(n, n + 1)
        net = transformed(
            alg,
            seed=seed,
            delay_model=UniformDelay(lo, hi),
            timer_interval=timer,
        )
        # Override dwell via the nodes (builder default is fixed 0.5).
        for node in net.nodes:
            node.dwell_model = FixedDelay(dwell)
        rep = evaluate_gap(net, duration=60.0)
        assert rep.min_count >= 1, params
        assert rep.max_count <= 2, params
        assert rep.zero_time == 0.0, params

    @given(st.integers(0, 2 ** 16), st.floats(0.0, 0.4))
    @settings(max_examples=15, deadline=None)
    def test_bounds_hold_under_message_loss_from_clean_start(self, seed, loss):
        """Loss delays cache refreshes but cannot break the guarantee when
        starting legitimate+coherent: predicates only move via received
        states, which arrive in order per link."""
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=seed, loss_probability=loss,
                          delay_model=UniformDelay(0.5, 1.5))
        rep = evaluate_gap(net, duration=80.0)
        assert rep.min_count >= 1
        assert rep.max_count <= 2

    @given(st.integers(0, 2 ** 16))
    @settings(max_examples=10, deadline=None)
    def test_progress_token_keeps_moving(self, seed):
        """Liveness in the MP model: the holder set keeps changing."""
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=seed, delay_model=UniformDelay(0.5, 1.5))
        net.run(100.0)
        assert net.timeline.holder_changes() > 20
