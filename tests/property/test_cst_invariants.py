"""Property-based invariants of the CST substrate itself.

These pin down what the transform machinery guarantees regardless of the
algorithm on top: cache *provenance* (a cache entry is always some state the
neighbour actually held — no values out of thin air), event-count
accounting, and capacity-one link discipline.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay


@st.composite
def network_params(draw):
    n = draw(st.integers(3, 6))
    seed = draw(st.integers(0, 2 ** 16))
    duration = draw(st.floats(20.0, 80.0))
    return n, seed, duration


class TestCacheProvenance:
    @given(network_params())
    @settings(max_examples=15, deadline=None)
    def test_cache_entries_are_historic_neighbour_states(self, params):
        """Every cache value must be a state the neighbour actually held at
        some earlier moment (delivery can lag, never invent)."""
        n, seed, duration = params
        alg = SSRmin(n, n + 1)
        net = transformed(alg, seed=seed, delay_model=UniformDelay(0.5, 1.5))

        history = {i: {net.nodes[i].state} for i in range(n)}

        def track(network):
            for node in network.nodes:
                history[node.index].add(node.state)
                for k, cached in node.cache.items():
                    assert cached in history[k], (
                        f"node {node.index} caches {cached} for {k}, "
                        f"never held"
                    )

        net.observers.append(track)
        net.run(duration)

    @given(network_params())
    @settings(max_examples=10, deadline=None)
    def test_links_never_hold_two_messages(self, params):
        """Capacity-one: a link is never asked to transmit while busy (the
        coalescing path absorbs the overflow)."""
        n, seed, duration = params
        alg = SSRmin(n, n + 1)
        net = transformed(alg, seed=seed)
        net.run(duration)
        for node in net.nodes:
            for link in node.links.values():
                # Deliveries + losses + (still in flight) == transmissions.
                in_flight = 1 if link.busy else 0
                assert link.delivered + link.lost + in_flight == link.sent

    @given(network_params())
    @settings(max_examples=10, deadline=None)
    def test_event_accounting(self, params):
        """Executed events >= deliveries + timer fires (plus dwell acts)."""
        n, seed, duration = params
        alg = SSRmin(n, n + 1)
        net = transformed(alg, seed=seed)
        net.run(duration)
        delivered = net.message_stats()["delivered"] + net.message_stats()["lost"]
        timers = sum(node.timer_fires for node in net.nodes)
        assert net.queue.executed >= delivered + timers

    @given(network_params())
    @settings(max_examples=10, deadline=None)
    def test_rules_only_fire_when_viewed_enabled(self, params):
        """A node's rule count never exceeds its receive+timer+dwell
        opportunities."""
        n, seed, duration = params
        alg = SSRmin(n, n + 1)
        net = transformed(alg, seed=seed)
        net.run(duration)
        for node in net.nodes:
            opportunities = node.messages_received + node.timer_fires + 1
            assert node.rules_executed <= opportunities
