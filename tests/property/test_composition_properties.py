"""Property-based tests for compositions and the four-state ring."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.composition import IndependentComposition
from repro.algorithms.dijkstra import DijkstraKState
from repro.algorithms.dijkstra_four_state import DijkstraFourState
from repro.daemons.distributed import RandomSubsetDaemon


@st.composite
def composition_with_config(draw):
    n = draw(st.integers(3, 6))
    k = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2 ** 16))
    comp = IndependentComposition(
        [DijkstraKState(n, n + 1) for _ in range(k)]
    )
    rng = random.Random(seed)
    return comp, comp.random_configuration(rng)


class TestCompositionInvariants:
    @given(composition_with_config())
    @settings(max_examples=100, deadline=None)
    def test_projection_roundtrip(self, pair):
        comp, config = pair
        layers = [comp.layer_config(config, l) for l in range(comp.k)]
        assert comp.compose_configurations(layers) == config

    @given(composition_with_config())
    @settings(max_examples=100, deadline=None)
    def test_privileged_is_union_of_layers(self, pair):
        comp, config = pair
        union = set()
        for holders in comp.privileged_by_layer(config):
            union.update(holders)
        assert comp.privileged(config) == tuple(sorted(union))

    @given(composition_with_config())
    @settings(max_examples=100, deadline=None)
    def test_at_least_one_privileged_always(self, pair):
        """Each Dijkstra layer always holds >= 1 token, so the union does."""
        comp, config = pair
        assert len(comp.privileged(config)) >= 1

    @given(composition_with_config(), st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_step_projections_are_layer_steps_or_stutters(self, pair, dseed):
        comp, config = pair
        daemon = RandomSubsetDaemon(seed=dseed)
        enabled = comp.enabled_processes(config)
        selection = daemon.select(enabled, config, 0)
        nxt = comp.step(config, selection)
        for l, alg in enumerate(comp.layers):
            before = comp.layer_config(config, l)
            after = comp.layer_config(nxt, l)
            moved = [i for i in range(comp.n) if before[i] != after[i]]
            # Every layer change must be that layer's own rule at a selected,
            # layer-enabled process.
            for i in moved:
                assert i in selection
                assert alg.is_enabled(before, i)
                assert after[i] == alg.execute(before, i)


@st.composite
def four_state_config(draw):
    n = draw(st.integers(3, 7))
    alg = DijkstraFourState(n)
    seed = draw(st.integers(0, 2 ** 16))
    return alg, alg.random_configuration(random.Random(seed))


class TestFourStateInvariants:
    @given(four_state_config())
    @settings(max_examples=150, deadline=None)
    def test_no_deadlock(self, pair):
        alg, config = pair
        assert alg.enabled_processes(config)

    @given(four_state_config())
    @settings(max_examples=150, deadline=None)
    def test_frozen_bits_preserved_by_steps(self, pair):
        alg, config = pair
        daemon = RandomSubsetDaemon(seed=0)
        for step in range(10):
            enabled = alg.enabled_processes(config)
            config = alg.step(config, daemon.select(enabled, config, step))
            assert config[0][1] is True
            assert config[-1][1] is False

    @given(four_state_config(), st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_converges(self, pair, dseed):
        from repro.simulation.convergence import converge

        alg, config = pair
        res = converge(alg, RandomSubsetDaemon(seed=dseed), config)
        assert res.converged

    @given(four_state_config())
    @settings(max_examples=100, deadline=None)
    def test_legitimate_closed_under_steps(self, pair):
        alg, config = pair
        if not alg.is_legitimate(config):
            return
        daemon = RandomSubsetDaemon(seed=1)
        for step in range(5):
            enabled = alg.enabled_processes(config)
            config = alg.step(config, daemon.select(enabled, config, step))
            assert alg.is_legitimate(config)
