"""Property-based tests (hypothesis) for SSRmin's core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.legitimacy import is_legitimate
from repro.core.ssrmin import SSRmin
from repro.core.state import Configuration
from repro.daemons.distributed import RandomSubsetDaemon
from repro.simulation.convergence import converge


def instances():
    """Strategy: (n, K) instance parameters with K > n."""
    return st.tuples(st.integers(3, 8), st.integers(1, 4)).map(
        lambda t: (t[0], t[0] + t[1])
    )


def configurations(n, K):
    """Strategy: arbitrary configurations of an (n, K) instance."""
    state = st.tuples(
        st.integers(0, K - 1), st.integers(0, 1), st.integers(0, 1)
    )
    return st.lists(state, min_size=n, max_size=n).map(Configuration)


@st.composite
def instance_with_config(draw):
    n, K = draw(instances())
    config = draw(configurations(n, K))
    return SSRmin(n, K), config


@st.composite
def instance_with_seed(draw):
    n, K = draw(instances())
    seed = draw(st.integers(0, 2 ** 20))
    return SSRmin(n, K), seed


class TestNoDeadlock:
    """Lemma 4 as a property: some process is enabled in EVERY configuration."""

    @given(instance_with_config())
    @settings(max_examples=300, deadline=None)
    def test_always_some_enabled(self, pair):
        alg, config = pair
        assert alg.enabled_processes(config)


class TestAtMostOneRule:
    @given(instance_with_config())
    @settings(max_examples=200, deadline=None)
    def test_every_process_has_at_most_one_rule_after_priority(self, pair):
        alg, config = pair
        for i in range(alg.n):
            rule = alg.enabled_rule(config, i)
            if rule is not None:
                # Priority resolution: only lower-numbered guards may also
                # be false... i.e. the returned rule is the first true guard.
                for other in alg.rule_set.rules:
                    if other.number < rule.number:
                        assert not other.guard(config, i)


class TestClosure:
    """Lemma 1 as a property: legitimate => every daemon step legitimate."""

    @given(instance_with_seed(), st.integers(0, 2 ** 16))
    @settings(max_examples=100, deadline=None)
    def test_random_daemon_steps_stay_legitimate(self, pair, daemon_seed):
        alg, seed = pair
        from repro.simulation.initial import random_legitimate

        config = random_legitimate(alg, random.Random(seed))
        daemon = RandomSubsetDaemon(seed=daemon_seed)
        for step in range(10):
            assert alg.is_legitimate(config)
            holders = alg.privileged(config)
            assert 1 <= len(holders) <= 2
            enabled = alg.enabled_processes(config)
            config = alg.step(config, daemon.select(enabled, config, step))
        assert alg.is_legitimate(config)


class TestConvergence:
    """Lemma 6 as a property: arbitrary start, arbitrary schedule -> Lambda."""

    @given(instance_with_config(), st.integers(0, 2 ** 16))
    @settings(max_examples=60, deadline=None)
    def test_converges(self, pair, daemon_seed):
        alg, config = pair
        res = converge(alg, RandomSubsetDaemon(seed=daemon_seed), config)
        assert res.converged
        assert res.steps <= 60 * alg.n * alg.n + 600  # Theorem 2 budget

    @given(instance_with_config(), st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_embedded_dijkstra_converges_no_later(self, pair, daemon_seed):
        alg, config = pair
        res = converge(alg, RandomSubsetDaemon(seed=daemon_seed), config)
        assert res.dijkstra_steps is not None
        assert res.dijkstra_steps <= res.steps


class TestLegitimacyCharacterization:
    @given(instance_with_config())
    @settings(max_examples=300, deadline=None)
    def test_legitimate_implies_token_bounds_and_adjacency(self, pair):
        alg, config = pair
        if is_legitimate(config, alg.K):
            holders = alg.privileged(config)
            assert 1 <= len(holders) <= 2
            assert len(alg.primary_holders(config)) == 1
            assert len(alg.secondary_holders(config)) == 1
            if len(holders) == 2:
                i, j = holders
                assert (i + 1) % alg.n == j or (j + 1) % alg.n == i

    @given(instance_with_config())
    @settings(max_examples=200, deadline=None)
    def test_legitimate_implies_exactly_one_enabled(self, pair):
        alg, config = pair
        if is_legitimate(config, alg.K):
            assert len(alg.enabled_processes(config)) == 1


class TestStepDeterminism:
    @given(instance_with_config())
    @settings(max_examples=100, deadline=None)
    def test_step_is_deterministic_per_selection(self, pair):
        alg, config = pair
        enabled = alg.enabled_processes(config)
        assert alg.step(config, enabled).states == alg.step(config, enabled).states

    @given(instance_with_config())
    @settings(max_examples=100, deadline=None)
    def test_step_changes_only_selected(self, pair):
        alg, config = pair
        enabled = alg.enabled_processes(config)
        nxt = alg.step(config, [enabled[0]])
        for i in range(alg.n):
            if i != enabled[0]:
                assert nxt[i] == config[i]
