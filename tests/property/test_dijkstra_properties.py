"""Property-based tests for Dijkstra's K-state token ring."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dijkstra import DijkstraKState, is_dijkstra_legitimate
from repro.daemons.distributed import RandomSubsetDaemon
from repro.simulation.convergence import converge


@st.composite
def instance_with_config(draw):
    n = draw(st.integers(2, 9))
    K = n + draw(st.integers(1, 4))
    config = tuple(
        draw(st.integers(0, K - 1)) for _ in range(n)
    )
    return DijkstraKState(n, K), config


class TestTokenExistence:
    """The core of Lemma 3: some process always holds a token."""

    @given(instance_with_config())
    @settings(max_examples=300, deadline=None)
    def test_at_least_one_token(self, pair):
        alg, config = pair
        assert len(alg.privileged(config)) >= 1


class TestLegitimacy:
    @given(instance_with_config())
    @settings(max_examples=300, deadline=None)
    def test_legitimate_means_one_token(self, pair):
        alg, config = pair
        if alg.is_legitimate(config):
            assert len(alg.privileged(config)) == 1

    @given(instance_with_config())
    @settings(max_examples=200, deadline=None)
    def test_closure_of_legitimacy(self, pair):
        alg, config = pair
        if not alg.is_legitimate(config):
            return
        nxt = alg.step(config, alg.privileged(config))
        assert alg.is_legitimate(nxt)

    @given(st.integers(2, 8), st.integers(1, 4), st.integers(0, 30))
    @settings(max_examples=150, deadline=None)
    def test_all_equal_and_staircases_legitimate(self, n, dk, x):
        K = n + dk
        x %= K
        assert is_dijkstra_legitimate([x] * n, K)
        for split in range(1, n):
            xs = [(x + 1) % K] * split + [x] * (n - split)
            assert is_dijkstra_legitimate(xs, K)


class TestConvergence:
    @given(instance_with_config(), st.integers(0, 2 ** 16))
    @settings(max_examples=60, deadline=None)
    def test_converges_under_distributed_daemon(self, pair, seed):
        alg, config = pair
        res = converge(alg, RandomSubsetDaemon(seed=seed), config)
        assert res.converged

    @given(instance_with_config())
    @settings(max_examples=60, deadline=None)
    def test_token_count_never_increases(self, pair):
        """Monotonicity: the token (enabled-process) count never grows."""
        alg, config = pair
        daemon = RandomSubsetDaemon(seed=0)
        count = len(alg.privileged(config))
        for step in range(15):
            enabled = alg.enabled_processes(config)
            config = alg.step(config, daemon.select(enabled, config, step))
            new_count = len(alg.privileged(config))
            assert new_count <= count
            count = new_count
