"""Property-based tests (hypothesis) for the fastpath packing layer.

The packed kernels and the transition system's key arithmetic carry the
model checker and the conformance oracle; these properties pin down their
algebra on arbitrary inputs:

* ``pack_key`` / ``unpack_key`` / ``load_key`` round-trips for both
  kernels (the key is a faithful radix encoding of the configuration);
* digit-delta successor arithmetic — incrementally adjusting a key by
  ``(digit(new) - digit(old)) * weight[i]`` equals re-packing the stepped
  configuration (the identity behind
  ``TransitionSystem._succ_keys_from_loaded``);
* fast successor keys equal naive successor keys on the same instance.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.core.state import Configuration
from repro.verification.transition_system import TransitionSystem


def ssrmin_instances():
    return st.tuples(st.integers(3, 7), st.integers(1, 3)).map(
        lambda t: (t[0], t[0] + t[1])
    )


def ssrmin_configurations(n, K):
    state = st.tuples(
        st.integers(0, K - 1), st.integers(0, 1), st.integers(0, 1)
    )
    return st.lists(state, min_size=n, max_size=n).map(Configuration)


@st.composite
def ssrmin_case(draw):
    n, K = draw(ssrmin_instances())
    config = draw(ssrmin_configurations(n, K))
    return SSRmin(n, K), config


@st.composite
def dijkstra_case(draw):
    n = draw(st.integers(2, 7))
    K = n + draw(st.integers(1, 3))
    xs = draw(st.lists(st.integers(0, K - 1), min_size=n, max_size=n))
    alg = DijkstraKState(n, K)
    return alg, alg.normalize_configuration(xs)


def _states(config):
    states = getattr(config, "states", None)
    return states if states is not None else tuple(config)


class TestKeyRoundTrip:
    @given(ssrmin_case())
    @settings(max_examples=200, deadline=None)
    def test_ssrmin_pack_unpack_round_trip(self, case):
        alg, config = case
        kernel = alg.fast_kernel()
        key = kernel.pack_key(config)
        assert 0 <= key < kernel.key_base ** alg.n
        assert _states(kernel.unpack_key(key)) == _states(config)

    @given(ssrmin_case())
    @settings(max_examples=200, deadline=None)
    def test_ssrmin_key_after_load_matches_pack_key(self, case):
        alg, config = case
        kernel = alg.fast_kernel()
        kernel.load(config)
        assert kernel.key() == kernel.pack_key(config)
        assert _states(kernel.export()) == _states(config)

    @given(ssrmin_case())
    @settings(max_examples=200, deadline=None)
    def test_ssrmin_load_key_equals_load(self, case):
        alg, config = case
        via_config = alg.fast_kernel()
        via_config.load(config)
        via_key = alg.fast_kernel()
        via_key.load_key(via_config.key())
        assert _states(via_key.export()) == _states(config)
        assert via_key.enabled() == via_config.enabled()
        assert via_key.is_legitimate() == via_config.is_legitimate()

    @given(dijkstra_case())
    @settings(max_examples=200, deadline=None)
    def test_dijkstra_pack_unpack_round_trip(self, case):
        alg, config = case
        kernel = alg.fast_kernel()
        key = kernel.pack_key(config)
        assert _states(kernel.unpack_key(key)) == _states(config)
        kernel.load(config)
        assert kernel.key() == key
        via_key = alg.fast_kernel()
        via_key.load_key(key)
        assert _states(via_key.export()) == _states(config)
        assert via_key.enabled() == kernel.enabled()


class TestDigitDelta:
    """key + (digit(new) - digit(old)) * weight[i] == pack_key(stepped)."""

    @given(ssrmin_case(), st.integers(0, 2**16))
    @settings(max_examples=200, deadline=None)
    def test_ssrmin_single_step_delta(self, case, pick):
        alg, config = case
        self._check_single_step_delta(alg, config, pick)

    @given(dijkstra_case(), st.integers(0, 2**16))
    @settings(max_examples=200, deadline=None)
    def test_dijkstra_single_step_delta(self, case, pick):
        alg, config = case
        self._check_single_step_delta(alg, config, pick)

    def _check_single_step_delta(self, alg, config, pick):
        kernel = alg.fast_kernel()
        kernel.load(config)
        enabled = kernel.enabled()
        assert enabled, "no-deadlock: some process is always enabled"
        i = enabled[pick % len(enabled)]
        key = kernel.key()
        delta = (
            kernel.digit(kernel.update(i))
            - kernel.digit(kernel.native_state(i))
        ) * kernel.key_weights[i]
        stepped = alg.step(config, (i,))
        assert key + delta == kernel.pack_key(stepped)

    @given(ssrmin_case(), st.integers(0, 2**30))
    @settings(max_examples=150, deadline=None)
    def test_ssrmin_subset_delta_matches_apply(self, case, seed):
        """Summed deltas over a random enabled subset equal the key of the
        kernel after applying that subset (and the engine's step)."""
        alg, config = case
        kernel = alg.fast_kernel()
        kernel.load(config)
        enabled = kernel.enabled()
        assert enabled
        rng = random.Random(seed)
        size = rng.randint(1, len(enabled))
        selection = tuple(sorted(rng.sample(list(enabled), size)))
        key = kernel.key()
        expected = key + sum(
            (
                kernel.digit(kernel.update(i))
                - kernel.digit(kernel.native_state(i))
            ) * kernel.key_weights[i]
            for i in selection
        )
        kernel.apply(selection)
        assert kernel.key() == expected
        stepped = alg.step(config, selection)
        assert _states(kernel.export()) == _states(stepped)


class TestTransitionSystemSuccessors:
    @given(ssrmin_case())
    @settings(max_examples=60, deadline=None)
    def test_fast_and_naive_successor_keys_agree(self, case):
        alg, config = case
        fast = TransitionSystem(alg, daemon="distributed")
        assert fast._kernel is not None
        naive = TransitionSystem(alg, daemon="distributed", use_fastpath=False)
        assert naive._kernel is None
        fast_keys = fast.successor_keys(config)
        fast_states = sorted(
            _states(fast.config_for_key(k)) for k in fast_keys
        )
        naive_states = sorted(
            _states(c) for c in naive.successors(config)
        )
        assert fast_states == naive_states
        assert len(fast_keys) == len(set(fast_keys))
