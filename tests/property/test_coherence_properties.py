"""Property-based tests for the cache-coherence predicate (Definition 2).

The predicate :func:`repro.messagepassing.coherence.stale_entries` is the
load-bearing half of the stabilization entry condition ("legitimate AND
cache-coherent"), used by both the DES conformance oracle and the live
runtime's health monitor.  Three angles:

1. it agrees with an independently-written brute-force oracle on
   arbitrary cache/state assignments;
2. on an abstract broadcast/deliver/coalesce message model, an entry is
   stale **iff** the neighbour changed state and the newest announcement
   is still in flight — i.e. coherent <=> every cache entry equals the
   neighbour's current state, with the in-flight message carrying the
   only permissible difference;
3. on the real lossless DES network, every stale entry is witnessed by
   an in-flight message on the corresponding link direction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ssrmin import SSRmin
from repro.messagepassing.coherence import is_cache_coherent, stale_entries
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay


class StubNode:
    """The minimal node-like surface ``stale_entries`` consumes."""

    def __init__(self, index, state, cache):
        self.index = index
        self.state = state
        self.cache = cache


def _ring_neighbors(i, n):
    return ((i - 1) % n, (i + 1) % n)


@st.composite
def arbitrary_ring_caches(draw):
    """A ring of stub nodes with arbitrary states and cache contents."""
    n = draw(st.integers(3, 8))
    values = st.integers(0, 3)
    nodes = []
    for i in range(n):
        cache = {k: draw(values) for k in _ring_neighbors(i, n)}
        nodes.append(StubNode(i, draw(values), cache))
    return nodes


@given(arbitrary_ring_caches())
@settings(max_examples=200, deadline=None)
def test_stale_entries_matches_bruteforce_oracle(nodes):
    expected = sorted(
        (i, k)
        for i in range(len(nodes))
        for k in nodes[i].cache
        if nodes[i].cache[k] != nodes[k].state
    )
    assert sorted(stale_entries(nodes)) == expected


# -- random message histories on the abstract broadcast model ----------------
#
# Operations: node k increments its state and announces it to both ring
# neighbours (one in-flight slot per directed edge, newest announcement
# supersedes older undelivered ones — the capacity-one coalescing of the
# DES links); or one in-flight announcement is delivered into the
# receiver's cache.  Starting coherent, this models every reachable
# cache/state/channel configuration of a lossless CST system.

@st.composite
def message_history(draw):
    n = draw(st.integers(3, 6))
    n_changes = draw(st.integers(0, 8))
    # Interleave: after each change, an arbitrary subset of the currently
    # in-flight edges delivers, in an arbitrary order.
    script = []
    for _ in range(n_changes):
        script.append(("change", draw(st.integers(0, n - 1))))
        script.append(("deliver_some", draw(st.randoms(use_true_random=False))))
    return n, script


@given(message_history())
@settings(max_examples=200, deadline=None)
def test_coherent_iff_no_newer_state_in_flight(params):
    n, script = params
    states = [0] * n
    caches = [{k: 0 for k in _ring_neighbors(i, n)} for i in range(n)]
    in_flight = {}  # (src, dst) -> announced state (newest supersedes)

    for op in script:
        if op[0] == "change":
            k = op[1]
            states[k] += 1
            for dst in _ring_neighbors(k, n):
                in_flight[(k, dst)] = states[k]
        else:
            rng = op[1]
            edges = sorted(in_flight)
            rng.shuffle(edges)
            for edge in edges[: rng.randint(0, len(edges))]:
                src, dst = edge
                caches[dst][src] = in_flight.pop(edge)

    nodes = [StubNode(i, states[i], caches[i]) for i in range(n)]
    stale = set(stale_entries(nodes))
    # Stale (i, k)  <=>  k announced a newer state still in flight to i.
    undelivered = {(dst, src) for (src, dst) in in_flight}
    assert stale == undelivered
    # And the <=> restated as Definition 2: coherent means no message in
    # flight carries information the receiver lacks.
    assert (not stale) == (not in_flight)


# -- the real DES network ----------------------------------------------------

@given(st.integers(0, 2 ** 16), st.floats(0.5, 20.0))
@settings(max_examples=25, deadline=None)
def test_des_stale_entries_witnessed_by_in_flight_messages(seed, duration):
    """On a lossless network, a stale cache entry can only exist while the
    repairing announcement is in transit (busy link or coalesced pending)."""
    alg = SSRmin(5, 6)
    net = transformed(alg, seed=seed, delay_model=UniformDelay(0.5, 1.5))
    net.start()
    net.run(duration)
    stale = stale_entries(net.nodes)
    for (i, k) in stale:
        link = net.nodes[k].links[i]
        assert link.busy or link._has_pending, (
            f"stale entry ({i}, {k}) with nothing in flight on {k}->{i} "
            f"at t={net.queue.now}"
        )
    assert is_cache_coherent(net) == (not stale)
