"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
import zlib

import pytest

from repro.core.ssrmin import SSRmin
from repro.algorithms.dijkstra import DijkstraKState


@pytest.fixture(autouse=True)
def _pin_global_random_seed(request):
    """Seed the module-level ``random`` stream per test, deterministically.

    Every test starts from ``random.seed(crc32(nodeid))``, so code that
    falls back to the global stream (or to ``random.Random()`` seeded
    from it — see ``CSTNode`` and ``Link``) behaves identically across
    runs and is independent of test execution order.  Tests that need
    their own stream should take the ``rng`` fixture or seed explicitly;
    see docs/TESTING.md ("Determinism and seeding").
    """
    state = random.getstate()
    random.seed(zlib.crc32(request.node.nodeid.encode()))
    yield
    random.setstate(state)


@pytest.fixture
def ssrmin5() -> SSRmin:
    """The paper's worked instance: n=5, K=6."""
    return SSRmin(5, 6)


@pytest.fixture
def ssrmin3() -> SSRmin:
    """Smallest legal instance: n=3, K=4 (used for exhaustive checks)."""
    return SSRmin(3, 4)


@pytest.fixture
def dijkstra5() -> DijkstraKState:
    """Dijkstra's SSToken, n=5, K=6."""
    return DijkstraKState(5, 6)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests."""
    return random.Random(12345)
