"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.ssrmin import SSRmin
from repro.algorithms.dijkstra import DijkstraKState


@pytest.fixture
def ssrmin5() -> SSRmin:
    """The paper's worked instance: n=5, K=6."""
    return SSRmin(5, 6)


@pytest.fixture
def ssrmin3() -> SSRmin:
    """Smallest legal instance: n=3, K=4 (used for exhaustive checks)."""
    return SSRmin(3, 4)


@pytest.fixture
def dijkstra5() -> DijkstraKState:
    """Dijkstra's SSToken, n=5, K=6."""
    return DijkstraKState(5, 6)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests."""
    return random.Random(12345)
