"""Unit tests for the shared RingAlgorithm machinery."""

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin


class TestStepSemantics:
    def test_execute_rejects_disabled_process(self):
        alg = DijkstraKState(4, 5)
        config = alg.initial_configuration()  # only P0 enabled
        with pytest.raises(ValueError):
            alg.execute(config, 1)

    def test_step_rejects_empty_selection(self):
        alg = DijkstraKState(4, 5)
        with pytest.raises(ValueError):
            alg.step(alg.initial_configuration(), [])

    def test_composite_atomicity_reads_old_configuration(self):
        """All selected processes must read gamma_t, not partial updates.

        With x = (1, 0, 1, 1): P1 copies x0=1, and P2 copies x1's OLD value
        0 simultaneously — sequential application would give P2 the new 1.
        """
        alg = DijkstraKState(4, 5)
        config = (1, 0, 1, 1)
        nxt = alg.step(config, [1, 2])
        assert nxt == (1, 1, 0, 1)

    def test_step_deduplicates_selection(self):
        alg = DijkstraKState(4, 5)
        config = alg.initial_configuration()
        assert alg.step(config, [0, 0]) == alg.step(config, [0])

    def test_enabled_processes_sorted(self):
        alg = SSRmin(5, 6)
        import random

        rng = random.Random(0)
        for _ in range(50):
            c = alg.random_configuration(rng)
            enabled = alg.enabled_processes(c)
            assert list(enabled) == sorted(enabled)

    def test_configuration_space_size_matches_state_count(self):
        alg = DijkstraKState(3, 4)
        count = sum(1 for _ in alg.configuration_space())
        assert count == 4 ** 3
        assert alg.state_count_per_process() == 4

    def test_normalize_configuration_default_tuple(self):
        alg = DijkstraKState(3, 4)
        assert alg.normalize_configuration([1, 2, 3]) == (1, 2, 3)

    def test_ssrmin_normalize_wraps(self):
        from repro.core.state import Configuration

        alg = SSRmin(3, 4)
        raw = [(0, 0, 0), (1, 0, 1), (2, 1, 0)]
        norm = alg.normalize_configuration(raw)
        assert isinstance(norm, Configuration)
        assert norm.states == tuple(raw)
