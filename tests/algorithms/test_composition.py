"""Unit tests for the independent parallel composition."""

import random

import pytest

from repro.algorithms.composition import IndependentComposition
from repro.algorithms.dijkstra import DijkstraKState
from repro.daemons.distributed import RandomSubsetDaemon


def two_layer(n=4, K=5):
    return IndependentComposition([DijkstraKState(n, K), DijkstraKState(n, K)])


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IndependentComposition([])

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError):
            IndependentComposition([DijkstraKState(3, 4), DijkstraKState(4, 5)])

    def test_k_property(self):
        assert two_layer().k == 2


class TestConfigurations:
    def test_compose_and_project_roundtrip(self):
        comp = two_layer()
        a = (0, 1, 2, 3)
        b = (4, 4, 4, 4)
        composed = comp.compose_configurations([a, b])
        assert comp.layer_config(composed, 0) == a
        assert comp.layer_config(composed, 1) == b

    def test_compose_validates_lengths(self):
        comp = two_layer()
        with pytest.raises(ValueError):
            comp.compose_configurations([(0, 0, 0, 0)])
        with pytest.raises(ValueError):
            comp.compose_configurations([(0, 0, 0), (0, 0, 0, 0)])

    def test_layer_config_passes_none_through(self):
        comp = two_layer()
        view = [None, ((1, 2)), None, None]
        view[1] = (1, 2)
        assert comp.layer_config(view, 0) == (None, 1, None, None)

    def test_state_space_is_product(self):
        comp = two_layer(3, 4)
        assert comp.state_count_per_process() == 16


class TestSemantics:
    def test_privileged_is_union(self):
        comp = two_layer()
        composed = comp.compose_configurations([(0, 0, 0, 0), (1, 1, 0, 0)])
        # Layer 0 token at P0 (all equal); layer 1 token at P2 (boundary).
        assert comp.privileged(composed) == (0, 2)
        by_layer = comp.privileged_by_layer(composed)
        assert by_layer[0] == (0,)
        assert by_layer[1] == (2,)

    def test_legitimate_requires_all_layers(self):
        comp = two_layer()
        good = comp.compose_configurations([(0, 0, 0, 0), (1, 1, 0, 0)])
        bad = comp.compose_configurations([(0, 0, 0, 0), (0, 2, 1, 3)])
        assert comp.is_legitimate(good)
        assert not comp.is_legitimate(bad)

    def test_selected_process_executes_all_enabled_layers(self):
        comp = two_layer()
        # P1 enabled in both layers.
        composed = comp.compose_configurations([(1, 0, 0, 0), (2, 0, 0, 0)])
        nxt = comp.step(composed, [1])
        assert comp.layer_config(nxt, 0) == (1, 1, 0, 0)
        assert comp.layer_config(nxt, 1) == (2, 2, 0, 0)

    def test_selected_process_skips_disabled_layer(self):
        comp = two_layer()
        # P1 enabled only in layer 0.
        composed = comp.compose_configurations([(1, 0, 0, 0), (2, 2, 0, 0)])
        nxt = comp.step(composed, [1])
        assert comp.layer_config(nxt, 0) == (1, 1, 0, 0)
        assert comp.layer_config(nxt, 1) == (2, 2, 0, 0)  # unchanged

    def test_both_layers_converge_under_composition(self):
        comp = two_layer(5, 6)
        rng = random.Random(7)
        config = comp.random_configuration(rng)
        daemon = RandomSubsetDaemon(seed=7)
        for step in range(2000):
            if comp.is_legitimate(config):
                break
            enabled = comp.enabled_processes(config)
            assert enabled, "composition deadlocked"
            config = comp.step(config, daemon.select(enabled, config, step))
        assert comp.is_legitimate(config)

    def test_state_reading_mutual_inclusion(self):
        """In the state-reading model the composition ALWAYS has >= 1 token
        (each layer has >= 1) — the property that breaks under messages."""
        comp = two_layer(5, 6)
        rng = random.Random(8)
        config = comp.random_configuration(rng)
        daemon = RandomSubsetDaemon(seed=8)
        for step in range(500):
            assert len(comp.privileged(config)) >= 1
            enabled = comp.enabled_processes(config)
            config = comp.step(config, daemon.select(enabled, config, step))
