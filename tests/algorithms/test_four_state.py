"""Unit tests for the Dijkstra four-state reconstruction.

The critical test is the exhaustive model-check: this algorithm is a
literature reconstruction, so it earns its place by proof, not provenance.
"""

import random

import pytest

from repro.algorithms.dijkstra_four_state import DijkstraFourState
from repro.daemons.central import RandomCentralDaemon
from repro.simulation.convergence import converge
from repro.verification.model_checker import check_self_stabilization
from repro.verification.transition_system import TransitionSystem


class TestConstruction:
    def test_rejects_small_ring(self):
        with pytest.raises(ValueError):
            DijkstraFourState(2)

    def test_initial_configuration_is_legitimate(self):
        for n in (3, 4, 6):
            alg = DijkstraFourState(n)
            assert alg.is_legitimate(alg.initial_configuration())


class TestFrozenBits:
    def test_random_configuration_respects_frozen_bits(self):
        alg = DijkstraFourState(5)
        rng = random.Random(1)
        for _ in range(50):
            c = alg.random_configuration(rng)
            assert c[0][1] is True
            assert c[-1][1] is False

    def test_configuration_space_respects_frozen_bits(self):
        alg = DijkstraFourState(3)
        for c in alg.configuration_space():
            assert c[0][1] is True and c[-1][1] is False

    def test_configuration_space_size(self):
        # 2 bottom x 4^(n-2) middle x 2 top
        alg = DijkstraFourState(4)
        assert sum(1 for _ in alg.configuration_space()) == 2 * 16 * 2


class TestSelfStabilization:
    @pytest.mark.parametrize("n", [3, 4])
    def test_exhaustive_distributed_daemon(self, n):
        alg = DijkstraFourState(n)
        report = check_self_stabilization(TransitionSystem(alg, "distributed"))
        assert report.self_stabilizing, report.summary()

    def test_exhaustive_central_daemon(self):
        alg = DijkstraFourState(4)
        report = check_self_stabilization(TransitionSystem(alg, "central"))
        assert report.self_stabilizing, report.summary()

    def test_worst_case_grows_with_n(self):
        worst = []
        for n in (3, 4, 5):
            alg = DijkstraFourState(n)
            report = check_self_stabilization(TransitionSystem(alg, "distributed"))
            worst.append(report.worst_case_steps)
        assert worst[0] < worst[1] < worst[2]


class TestExecution:
    def test_mutual_exclusion_in_legitimate_regime(self):
        alg = DijkstraFourState(5)
        config = alg.initial_configuration()
        daemon = RandomCentralDaemon(seed=2)
        served = set()
        for step in range(100):
            holders = alg.privileged(config)
            assert len(holders) == 1
            served.update(holders)
            enabled = alg.enabled_processes(config)
            config = alg.step(config, daemon.select(enabled, config, step))
        assert served == set(range(5))  # everyone got the privilege

    def test_converges_from_random(self):
        for seed in range(10):
            alg = DijkstraFourState(5)
            rng = random.Random(seed)
            res = converge(alg, RandomCentralDaemon(seed=seed),
                           alg.random_configuration(rng))
            assert res.converged
