"""Unit tests for Dijkstra's K-state token ring (Algorithm 1)."""

import random

import pytest

from repro.algorithms.dijkstra import (
    DijkstraKState,
    dijkstra_command,
    dijkstra_guard,
    is_dijkstra_legitimate,
)
from repro.daemons.distributed import RandomSubsetDaemon
from repro.simulation.convergence import converge


class TestConstruction:
    def test_rejects_small_ring(self):
        with pytest.raises(ValueError):
            DijkstraKState(1)

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            DijkstraKState(5, 5)

    def test_allow_small_k(self):
        assert DijkstraKState(5, 3, allow_small_k=True).K == 3

    def test_default_k(self):
        assert DijkstraKState(6).K == 7


class TestMacros:
    def test_guard_bottom(self):
        assert dijkstra_guard(3, 3, is_bottom=True)
        assert not dijkstra_guard(3, 4, is_bottom=True)

    def test_guard_other(self):
        assert dijkstra_guard(3, 4, is_bottom=False)
        assert not dijkstra_guard(3, 3, is_bottom=False)

    def test_command_bottom_wraps(self):
        assert dijkstra_command(5, is_bottom=True, K=6) == 0

    def test_command_other_copies(self):
        assert dijkstra_command(4, is_bottom=False, K=6) == 4


class TestLegitimacy:
    def test_all_equal_is_legitimate(self):
        assert is_dijkstra_legitimate((3, 3, 3, 3), 5)

    def test_single_step_is_legitimate(self):
        assert is_dijkstra_legitimate((4, 4, 3, 3), 5)
        assert is_dijkstra_legitimate((4, 3, 3, 3), 5)
        assert is_dijkstra_legitimate((4, 4, 4, 3), 5)

    def test_modular_step(self):
        assert is_dijkstra_legitimate((0, 0, 4, 4), 5)

    def test_two_steps_illegitimate(self):
        assert not is_dijkstra_legitimate((5, 4, 3, 3), 6)

    def test_wrong_direction_step_illegitimate(self):
        assert not is_dijkstra_legitimate((3, 3, 4, 4), 6)

    def test_legitimate_implies_exactly_one_token(self):
        # Note the converse fails: e.g. (0, 0, 2, 2) has exactly one token
        # but is not of the staircase form; the staircase set is the paper's
        # (smaller) Lambda, and one-token configs converge into it.
        alg = DijkstraKState(4, 5)
        rng = random.Random(0)
        for _ in range(500):
            c = alg.random_configuration(rng)
            if alg.is_legitimate(c):
                assert len(alg.privileged(c)) == 1

    def test_one_token_set_is_closed_and_reaches_staircase(self):
        alg = DijkstraKState(4, 5)
        config = (0, 0, 2, 2)  # one token, not a staircase
        assert not alg.is_legitimate(config)
        assert len(alg.privileged(config)) == 1
        for _ in range(20):
            holders = alg.privileged(config)
            assert len(holders) == 1
            config = alg.step(config, holders)
        assert alg.is_legitimate(config)


class TestExecution:
    def test_token_circulates(self):
        alg = DijkstraKState(4, 5)
        config = alg.initial_configuration()
        positions = []
        for _ in range(8):
            holders = alg.privileged(config)
            assert len(holders) == 1
            positions.append(holders[0])
            config = alg.step(config, holders)
        assert positions == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_token_position_requires_legitimacy(self):
        alg = DijkstraKState(4, 5)
        with pytest.raises(ValueError):
            alg.token_position((0, 3, 1, 2))

    def test_initial_configuration_bounds(self):
        alg = DijkstraKState(4, 5)
        with pytest.raises(ValueError):
            alg.initial_configuration(x=5)

    def test_converges_from_random_under_distributed_daemon(self):
        for seed in range(10):
            alg = DijkstraKState(6, 7)
            rng = random.Random(seed)
            init = alg.random_configuration(rng)
            res = converge(alg, RandomSubsetDaemon(seed=seed), init)
            assert res.converged

    def test_closure_once_legitimate(self):
        alg = DijkstraKState(5, 6)
        config = alg.initial_configuration(2)
        daemon = RandomSubsetDaemon(seed=1)
        for step in range(100):
            enabled = alg.enabled_processes(config)
            config = alg.step(config, daemon.select(enabled, config, step))
            assert alg.is_legitimate(config)
