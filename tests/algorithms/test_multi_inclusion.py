"""Tests for the layered (l,k)-critical-section construction."""

import random

import pytest

from repro.algorithms.multi_inclusion import LayeredSSRmin
from repro.daemons.distributed import RandomSubsetDaemon
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay


class TestConstruction:
    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            LayeredSSRmin(5, 0)

    def test_band(self):
        assert LayeredSSRmin(5, 3).band() == (3, 6)

    def test_staggered_initial_is_legitimate(self):
        for m in (1, 2, 3):
            alg = LayeredSSRmin(7, m)
            config = alg.staggered_initial()
            assert alg.is_legitimate(config)
            assert alg.in_band(config)

    def test_staggered_tokens_spread(self):
        alg = LayeredSSRmin(9, 3)
        config = alg.staggered_initial()
        per_layer = alg.privileged_by_layer(config)
        positions = {holders[0] for holders in per_layer}
        assert len(positions) == 3  # three distinct starting positions


class TestBandMaintenance:
    def test_layer_token_band_held_in_state_reading(self):
        alg = LayeredSSRmin(6, 2)
        config = alg.staggered_initial()
        daemon = RandomSubsetDaemon(seed=0)
        for step in range(300):
            count = alg.layer_token_count(config)
            assert 2 <= count <= 4, f"step {step}: {count}"
            enabled = alg.enabled_processes(config)
            config = alg.step(config, daemon.select(enabled, config, step))

    def test_converges_from_chaos(self):
        alg = LayeredSSRmin(5, 2)
        rng = random.Random(1)
        config = alg.random_configuration(rng)
        daemon = RandomSubsetDaemon(seed=1)
        for step in range(4000):
            if alg.is_legitimate(config):
                break
            enabled = alg.enabled_processes(config)
            config = alg.step(config, daemon.select(enabled, config, step))
        assert alg.is_legitimate(config)
        assert alg.in_band(config)

    def test_process_count_at_least_one(self):
        """Privileged-process count stays >= 1 (tokens may co-locate)."""
        alg = LayeredSSRmin(6, 3)
        config = alg.staggered_initial()
        daemon = RandomSubsetDaemon(seed=2)
        for step in range(200):
            assert len(alg.privileged(config)) >= 1
            enabled = alg.enabled_processes(config)
            config = alg.step(config, daemon.select(enabled, config, step))


class TestMessagePassing:
    def test_band_survives_cst_transform(self):
        """Unlike the SSToken composition (Figure 12), every SSRmin layer is
        gap tolerant, so the layered band's lower edge survives messages."""
        alg = LayeredSSRmin(5, 2)
        init = alg.staggered_initial()
        net = transformed(alg, seed=3, initial_states=list(init),
                          delay_model=UniformDelay(0.5, 1.5))

        # Count layer-tokens through each node's own cached view.
        def layer_tokens_now():
            total = 0
            for node in net.nodes:
                view = node.view()
                for l, sub in enumerate(alg.layers):
                    proj = alg.layer_config(view, l)
                    if sub.holds_primary(proj, node.index) or \
                       sub.holds_secondary(proj, node.index):
                        total += 1
            return total

        counts = []
        net.observers.append(lambda n: counts.append(layer_tokens_now()))
        net.run(150.0)
        assert counts
        assert min(counts) >= 2  # the m = 2 lower edge, at every event
        assert max(counts) <= 4

    def test_coverage_always_positive_under_messages(self):
        alg = LayeredSSRmin(5, 2)
        init = alg.staggered_initial()
        net = transformed(alg, seed=4, initial_states=list(init),
                          delay_model=UniformDelay(0.5, 1.5))
        net.run(150.0)
        assert net.timeline.zero_time() == 0.0
