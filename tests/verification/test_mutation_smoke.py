"""Mutation smoke: the conformance harness must catch planted bugs.

Two single-point mutations, each exercising one leg of the differential
oracle end to end (detect -> shrink -> replay):

* flip one ``RULE_TABLE`` entry — the fastpath kernel resolves a wrong
  rule for one neighborhood; the fuzzer must find a divergence within a
  bounded trial budget, the shrinker must produce a smaller witness, and
  the witness file must deterministically reproduce the divergence while
  the mutation is active (and report *stale* once it is reverted);
* break the CST cache-update path (``CSTNode.on_receive`` silently drops
  one sender's broadcasts) — the projection's caches go stale and the
  oracle's coherence check must flag it.
"""

import pytest

import repro.simulation.fastpath.ssrmin_kernel as ssrmin_kernel
from repro.messagepassing.node import CSTNode
from repro.verification.conformance import (
    replay_witness_file,
    run_campaign,
)

#: Trial budget within which each mutation must be detected.
BUDGET_TRIALS = 60


def _run_mutated_campaign(tmp_path, seed=5):
    return run_campaign(
        seed=seed,
        trials=BUDGET_TRIALS,
        algorithms=("ssrmin",),
        corpus_dir=str(tmp_path),
        max_divergences=1,
    )


def test_rule_table_mutation_detected_shrunk_and_replayed(
    monkeypatch, tmp_path
):
    # Mutate the neighborhood <g=1, quiet handshakes everywhere>: the
    # privileged quiet process should fire R1; the mutant says disabled.
    index = 1 << 6
    assert ssrmin_kernel.RULE_TABLE[index] == 1
    mutated = bytearray(ssrmin_kernel.RULE_TABLE)
    mutated[index] = 0
    monkeypatch.setattr(ssrmin_kernel, "RULE_TABLE", bytes(mutated))

    result = _run_mutated_campaign(tmp_path)
    assert not result.ok, (
        f"planted RULE_TABLE fault survived {result.trials} fuzz trials"
    )
    rec = result.divergences[0]
    assert rec.divergence["kind"] in ("enabled", "rule", "state", "privilege")

    # The shrinker made the witness strictly smaller.
    orig_size = (rec.witness.n, len(rec.witness.schedule),
                 len(rec.witness.faults))
    shrunk_size = (rec.shrunk.n, len(rec.shrunk.schedule),
                   len(rec.shrunk.faults))
    assert shrunk_size <= orig_size
    assert len(rec.shrunk.schedule) < len(rec.witness.schedule)

    # The emitted corpus file reproduces the divergence deterministically
    # while the mutation is active ...
    assert rec.path is not None
    first = replay_witness_file(rec.path)
    second = replay_witness_file(rec.path)
    assert first.ok and second.ok, first.message
    assert first.message == second.message

    # ... and reports a stale repro once the mutation is reverted.
    monkeypatch.setattr(
        ssrmin_kernel, "RULE_TABLE", ssrmin_kernel._build_rule_table()
    )
    healed = replay_witness_file(rec.path)
    assert not healed.ok
    assert "stale" in healed.message


def test_cst_cache_update_mutation_detected(monkeypatch, tmp_path):
    # Node caches silently ignore broadcasts from process 0: the timer
    # sweep no longer repairs its neighbors' views.
    original = CSTNode.on_receive

    def dropping_on_receive(self, sender, state):
        if sender == 0:
            return
        return original(self, sender, state)

    monkeypatch.setattr(CSTNode, "on_receive", dropping_on_receive)

    result = _run_mutated_campaign(tmp_path, seed=9)
    assert not result.ok, (
        f"planted cache-update fault survived {result.trials} fuzz trials"
    )
    rec = result.divergences[0]
    assert rec.divergence["kind"] == "coherence"

    # The shrunk witness still reproduces through the broken cache path.
    outcome = replay_witness_file(rec.path)
    assert outcome.ok, outcome.message


def test_clean_tree_smoke_campaign_is_divergence_free():
    """A short seeded campaign on the unmutated tree reports nothing."""
    result = run_campaign(seed=3, trials=15)
    assert result.ok, result.divergences[0].divergence
    assert result.trials == 15
    assert result.fired_steps > 0
