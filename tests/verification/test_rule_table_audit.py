"""Exhaustive audit of the packed rule-resolution tables.

``RULE_TABLE`` in :mod:`repro.simulation.fastpath.ssrmin_kernel` is the
single source of truth for SSRmin guard resolution on the fastpath and in
the vectorized batch engine.  Its 128 entries are indexed by the local
neighborhood ``(G_i, h_{i-1}, h_i, h_{i+1})``; this audit realizes *every*
neighborhood as a concrete configuration and compares each entry against a
direct evaluation of the five prioritized guards in
:class:`repro.core.ssrmin.SSRmin`'s rule set — at an interior process and
at the bottom process (whose Dijkstra guard reads the other ring edge).
The Dijkstra kernel's comparison-driven resolution gets the same treatment
over its full n=3 configuration space.
"""

import itertools

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.simulation.fastpath.dijkstra_kernel import DIJKSTRA_RULE_NAMES
from repro.simulation.fastpath.ssrmin_kernel import (
    RULE_TABLE,
    SSRMIN_RULE_NAMES,
)

ALL_NEIGHBORHOODS = list(
    itertools.product((0, 1), range(4), range(4), range(4))
)


def _unpack_h(code):
    return (code >> 1, code & 1)


def _index(g, hp, h, hs):
    return (g << 6) | (hp << 4) | (h << 2) | hs


def _reference_id(alg, config, i):
    rule = alg.enabled_rule(config, i)
    return 0 if rule is None else SSRMIN_RULE_NAMES.index(rule.name)


def test_table_shape():
    assert len(RULE_TABLE) == 128
    assert set(RULE_TABLE) <= set(range(6))
    # Every rule id occurs: the table is not degenerate.
    assert set(RULE_TABLE) == set(range(6))


def test_all_128_entries_match_reference_guards_interior():
    """Each entry equals the prioritized guard walk at an interior process.

    Process 1 of SSRmin(3,4): ``G_1 = (x_1 != x_0)`` is realized by
    ``x = (0, g, 0)``; the three handshake codes map directly onto the
    neighborhood's ``(rts, tra)`` pairs.
    """
    alg = SSRmin(3, 4)
    for g, hp, h, hs in ALL_NEIGHBORHOODS:
        states = [
            (0, *_unpack_h(hp)),
            (1 if g else 0, *_unpack_h(h)),
            (0, *_unpack_h(hs)),
        ]
        config = alg.normalize_configuration(states)
        expected = _reference_id(alg, config, 1)
        assert RULE_TABLE[_index(g, hp, h, hs)] == expected, (
            f"neighborhood g={g} h_pred={hp:02b} h={h:02b} h_succ={hs:02b}: "
            f"table says {RULE_TABLE[_index(g, hp, h, hs)]}, "
            f"reference guards say {expected}"
        )


def test_all_128_entries_match_reference_guards_bottom():
    """Same audit at the bottom process, whose guard is ``x_0 == x_{n-1}``.

    For process 0 the predecessor is process ``n-1`` and the successor is
    process 1; ``x = (1 - g, 0, 0)`` realizes ``G_0 = g``.
    """
    alg = SSRmin(3, 4)
    for g, hp, h, hs in ALL_NEIGHBORHOODS:
        states = [
            (0 if g else 1, *_unpack_h(h)),
            (0, *_unpack_h(hs)),
            (0, *_unpack_h(hp)),
        ]
        config = alg.normalize_configuration(states)
        expected = _reference_id(alg, config, 0)
        assert RULE_TABLE[_index(g, hp, h, hs)] == expected, (
            f"bottom neighborhood g={g} h_pred={hp:02b} h={h:02b} "
            f"h_succ={hs:02b}"
        )


def test_kernel_rule_resolution_uses_audited_entries():
    """The scalar kernel resolves exactly the audited table entry."""
    alg = SSRmin(3, 4)
    kernel = alg.fast_kernel()
    for g, hp, h, hs in ALL_NEIGHBORHOODS:
        states = [
            (0, *_unpack_h(hp)),
            (1 if g else 0, *_unpack_h(h)),
            (0, *_unpack_h(hs)),
        ]
        kernel.load(alg.normalize_configuration(states))
        assert kernel.rule_id(1) == RULE_TABLE[_index(g, hp, h, hs)]


@pytest.mark.parametrize("n,K", [(3, 4), (4, 5)])
def test_dijkstra_kernel_resolution_exhaustive(n, K):
    """Dijkstra kernel rule ids match the reference rule set on the whole
    configuration space (K^n configurations)."""
    alg = DijkstraKState(n, K)
    kernel = alg.fast_kernel()
    for xs in itertools.product(range(K), repeat=n):
        config = alg.normalize_configuration(list(xs))
        kernel.load(config)
        for i in range(n):
            rule = alg.enabled_rule(config, i)
            expected = (
                0 if rule is None else DIJKSTRA_RULE_NAMES.index(rule.name)
            )
            assert kernel.rule_id(i) == expected, (xs, i)
