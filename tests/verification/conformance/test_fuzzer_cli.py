"""Unit tests for the fuzz campaign runner and the ``repro fuzz`` CLI."""

import json
import random

import pytest

from repro.cli import main
from repro.daemons.adversarial import AdversarialDaemon
from repro.daemons.base import Daemon
from repro.daemons.central import RandomCentralDaemon
from repro.daemons.weighted import WeightedUnfairDaemon
from repro.telemetry import telemetry_session
from repro.verification.conformance import (
    DAEMON_FAMILIES,
    generate_scenario,
    make_daemon,
    run_campaign,
    run_trial,
)


class TestScenarioGeneration:
    def test_deterministic_per_trial(self):
        a = generate_scenario(7, seed=99)
        b = generate_scenario(7, seed=99)
        assert (a.algorithm, a.n, a.K) == (b.algorithm, b.n, b.K)
        assert a.config == b.config
        assert a.daemon_family == b.daemon_family
        assert a.steps == b.steps
        assert a.faults == b.faults

    def test_different_trials_differ(self):
        scenarios = [generate_scenario(t, seed=99) for t in range(12)]
        assert len({(s.algorithm, s.n, tuple(s.config)) for s in scenarios}) > 1

    def test_every_family_constructs(self):
        from repro.core.ssrmin import SSRmin

        alg = SSRmin(4, 5)
        rng = random.Random(0)
        for family in DAEMON_FAMILIES:
            daemon = make_daemon(family, alg, rng)
            assert isinstance(daemon, Daemon)
        assert isinstance(make_daemon("weighted", alg, rng),
                          WeightedUnfairDaemon)
        assert isinstance(make_daemon("adversarial", alg, rng),
                          AdversarialDaemon)
        with pytest.raises(ValueError, match="unknown daemon family"):
            make_daemon("chaotic", alg, rng)

    def test_fault_ops_reference_real_edges(self):
        for t in range(25):
            s = generate_scenario(t, seed=5)
            from repro.verification.conformance import build_algorithm

            ring = build_algorithm(s.algorithm, s.n, s.K).ring
            for op in s.faults:
                assert 0 <= op["step"] < s.steps
                if op["kind"] in ("lose", "delay", "duplicate"):
                    assert op["dst"] in ring.message_neighbors(op["src"])
                elif op["kind"] == "corrupt-cache":
                    assert op["neighbor"] in ring.readable_neighbors(
                        op["node"])
                else:
                    assert op["kind"] == "corrupt-state"

    def test_trial_replay_is_deterministic(self):
        s1 = generate_scenario(3, seed=17)
        r1 = run_trial(s1)
        s2 = generate_scenario(3, seed=17)
        r2 = run_trial(s2)
        assert r1.ok and r2.ok
        assert r1.schedule == r2.schedule
        assert r1.final_config == r2.final_config


class TestCampaign:
    def test_requires_a_bound(self):
        with pytest.raises(ValueError, match="trials= or time_budget="):
            run_campaign(seed=0)

    def test_clean_campaign_counts(self):
        result = run_campaign(seed=21, trials=10)
        assert result.ok
        assert result.trials == 10
        assert result.fired_steps > 0
        payload = result.to_json()
        assert payload["ok"] is True
        assert payload["trials"] == 10
        assert "zero divergences" in result.summary()

    def test_campaign_emits_telemetry(self):
        with telemetry_session() as tel:
            events = []
            # Session-level subscription also flips ``step_detail`` on, so
            # per-trial events are published.
            tel.subscribe(events.append)
            result = run_campaign(seed=22, trials=5)
        assert result.ok
        kinds = [e.kind for e in events if e.layer == "fuzz"]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("trial") == 5
        trials = tel.registry.counter("fuzz_trials_total").total()
        assert trials == 5
        assert tel.registry.counter("fuzz_steps_total").total() == \
            result.fired_steps


class TestFuzzCLI:
    def test_fuzz_run_exit_zero_on_clean_tree(self, capsys):
        rc = main(["fuzz", "run", "--seed", "8", "--trials", "6",
                   "--no-telemetry", "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "zero divergences" in out
        payload = json.loads(out[out.index("{"):])
        assert payload["seed"] == 8

    def test_fuzz_run_writes_manifest(self, tmp_path, capsys):
        rc = main(["fuzz", "run", "--seed", "9", "--trials", "4",
                   "--telemetry-dir", str(tmp_path)])
        assert rc == 0
        manifest = json.loads(
            (tmp_path / "fuzz-seed9" / "manifest.json").read_text()
        )
        assert manifest["extra"]["campaign"]["trials"] == 4
        assert (tmp_path / "fuzz-seed9" / "trace.jsonl").exists()

    def test_fuzz_replay_corpus_directory(self, capsys):
        rc = main(["fuzz", "replay", "tests/corpus"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert out.count("ok ") >= 6

    def test_fuzz_replay_missing_path_fails(self, capsys, tmp_path):
        rc = main(["fuzz", "replay", str(tmp_path)])
        assert rc == 1

    def test_fuzz_run_nonzero_exit_and_shrink_cli_on_mutation(
        self, monkeypatch, tmp_path, capsys
    ):
        import repro.simulation.fastpath.ssrmin_kernel as sk

        mutated = bytearray(sk.RULE_TABLE)
        mutated[1 << 6] = 0
        monkeypatch.setattr(sk, "RULE_TABLE", bytes(mutated))

        rc = main([
            "fuzz", "run", "--seed", "5", "--trials", "40",
            "--algorithms", "ssrmin", "--corpus-dir", str(tmp_path),
            "--max-divergences", "1", "--no-telemetry",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        witness_files = list(tmp_path.glob("*.jsonl"))
        assert witness_files

        # `fuzz shrink` accepts the emitted file and rewrites it in place.
        rc = main(["fuzz", "shrink", str(witness_files[0])])
        assert rc == 0
        assert "shrunk" in capsys.readouterr().out

        # `fuzz replay` reproduces it while the mutation is active.
        rc = main(["fuzz", "replay", str(witness_files[0])])
        assert rc == 0
