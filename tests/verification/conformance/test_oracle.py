"""Unit tests for the lockstep differential oracle."""

import random

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.daemons.central import RandomCentralDaemon, RoundRobinDaemon
from repro.daemons.distributed import SynchronousDaemon
from repro.verification.conformance import LockstepOracle, TOKEN_BOUNDS


def _random_config(alg, seed):
    return alg.random_configuration(random.Random(seed))


class TestCleanRuns:
    @pytest.mark.parametrize("seed", range(4))
    def test_ssrmin_daemon_run_has_zero_divergences(self, seed):
        alg = SSRmin(5, 6)
        report = LockstepOracle(alg).run_daemon(
            _random_config(alg, seed), RandomCentralDaemon(seed=seed), 40
        )
        assert report.ok, report.divergences[0]
        assert report.fired_steps == 40
        assert len(report.schedule) == 40

    def test_dijkstra_daemon_run_has_zero_divergences(self):
        alg = DijkstraKState(5, 6)
        report = LockstepOracle(alg).run_daemon(
            _random_config(alg, 1), SynchronousDaemon(), 30
        )
        assert report.ok, report.divergences[0]

    def test_without_cst_leg(self):
        alg = SSRmin(4, 5)
        report = LockstepOracle(alg, use_cst=False).run_daemon(
            _random_config(alg, 2), RoundRobinDaemon(), 25
        )
        assert report.ok


class TestScheduleReplay:
    def test_recorded_schedule_replays_identically(self):
        alg = SSRmin(4, 5)
        init = _random_config(alg, 3)
        generated = LockstepOracle(alg).run_daemon(
            init, RandomCentralDaemon(seed=3), 30
        )
        assert generated.ok
        replayed = LockstepOracle(alg).run_schedule(
            list(init), generated.schedule
        )
        assert replayed.ok
        assert replayed.final_config == generated.final_config
        assert replayed.fired_steps == generated.fired_steps

    def test_filtering_semantics_skip_inapplicable_selections(self):
        alg = SSRmin(3, 4)
        init = alg.initial_configuration()
        enabled = alg.enabled_processes(init)
        disabled = next(i for i in range(3) if i not in enabled)
        # A selection of only-disabled processes filters to empty: skipped.
        report = LockstepOracle(alg).run_schedule(
            list(init.states), [(disabled,), tuple(enabled)]
        )
        assert report.ok
        assert report.steps == 2
        assert report.fired_steps == 1


class TestFaultScripts:
    def test_channel_faults_are_absorbed_by_timer_sweep(self):
        alg = SSRmin(4, 5)
        faults = [
            {"step": 1, "kind": "lose", "src": 0, "dst": 1},
            {"step": 2, "kind": "delay", "src": 1, "dst": 2},
            {"step": 3, "kind": "duplicate", "src": 2, "dst": 3},
            {"step": 4, "kind": "corrupt-cache",
             "node": 3, "neighbor": 0, "value": (2, 1, 1)},
        ]
        report = LockstepOracle(alg).run_daemon(
            _random_config(alg, 4), RandomCentralDaemon(seed=4), 20,
            faults=faults,
        )
        assert report.ok, report.divergences[0]

    def test_state_corruption_keeps_models_in_lockstep(self):
        alg = SSRmin(4, 5)
        faults = [
            {"step": 5, "kind": "corrupt-state", "process": 1,
             "value": (3, 1, 1)},
        ]
        report = LockstepOracle(alg).run_daemon(
            list(alg.initial_configuration().states),
            RandomCentralDaemon(seed=5), 25, faults=faults,
        )
        assert report.ok, report.divergences[0]

    def test_unknown_fault_kind_raises(self):
        alg = SSRmin(3, 4)
        with pytest.raises(ValueError, match="unknown fault kind"):
            LockstepOracle(alg).run_daemon(
                list(alg.initial_configuration().states),
                RandomCentralDaemon(seed=0), 3,
                faults=[{"step": 0, "kind": "meteor"}],
            )


class TestDivergenceCapture:
    def test_missing_timer_sweep_is_caught_as_incoherence(self, monkeypatch):
        """Disable the timer sweep: post-write broadcasts never happen, so
        caches go stale right after the first state change and the oracle
        must flag a coherence divergence."""
        from repro.messagepassing.projection import SynchronousCSTProjection

        monkeypatch.setattr(
            SynchronousCSTProjection, "timer_sweep", lambda self: None
        )
        alg = SSRmin(4, 5)
        report = LockstepOracle(alg).run_daemon(
            list(alg.initial_configuration().states),
            RandomCentralDaemon(seed=6), 10,
        )
        assert not report.ok
        d = report.divergences[0]
        assert d.kind == "coherence"
        # The diverging-step schedule entry exists, so a replayed witness
        # reaches the same check.
        assert len(report.schedule) == d.step + 1

    def test_token_bounds_registered_for_both_algorithms(self):
        assert TOKEN_BOUNDS["SSRmin"] == (1, 2)
        assert TOKEN_BOUNDS["DijkstraKState"] == (1, 1)
