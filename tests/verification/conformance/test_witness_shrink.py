"""Unit tests for the witness format and the shrinker."""

import random

import pytest

from repro.core.ssrmin import SSRmin
from repro.daemons.central import RandomCentralDaemon
from repro.verification.conformance import (
    LockstepOracle,
    Witness,
    corpus_files,
    replay_witness_file,
    shrink_witness,
)


def _clean_witness(seed=0, n=4, K=5, steps=20, faults=()):
    alg = SSRmin(n, K)
    init = alg.random_configuration(random.Random(seed))
    report = LockstepOracle(alg).run_daemon(
        init, RandomCentralDaemon(seed=seed), steps, faults=list(faults)
    )
    assert report.ok
    return Witness(
        algorithm="ssrmin", n=n, K=K,
        config=list(init.states),
        schedule=report.schedule,
        faults=list(faults),
        seed=seed,
    )


class TestWitnessFormat:
    def test_save_load_round_trip(self, tmp_path):
        faults = [
            {"step": 3, "kind": "lose", "src": 0, "dst": 1},
            {"step": 7, "kind": "corrupt-state", "process": 2,
             "value": [3, 1, 0]},
        ]
        w = _clean_witness(seed=1, faults=faults)
        path = w.save(str(tmp_path / "w.jsonl"))
        loaded = Witness.load(path)
        assert loaded.algorithm == w.algorithm
        assert (loaded.n, loaded.K) == (w.n, w.K)
        assert loaded.config == w.config
        assert loaded.schedule == w.schedule
        assert loaded.faults == w.faults
        assert loaded.expect == "pass"
        assert loaded.seed == 1

    def test_serialization_is_deterministic(self, tmp_path):
        w = _clean_witness(seed=2)
        assert w.to_lines() == w.to_lines()
        p1 = w.save(str(tmp_path / "a.jsonl"))
        p2 = w.save(str(tmp_path / "b.jsonl"))
        assert open(p1).read() == open(p2).read()

    def test_replay_judges_expectation(self, tmp_path):
        w = _clean_witness(seed=3)
        path = w.save(str(tmp_path / "pass.jsonl"))
        outcome = replay_witness_file(path)
        assert outcome.ok
        assert "pass as expected" in outcome.message

        # The same scenario with expect=divergence is a stale repro.
        stale = Witness(
            algorithm=w.algorithm, n=w.n, K=w.K, config=list(w.config),
            schedule=list(w.schedule), expect="divergence",
        )
        stale_path = stale.save(str(tmp_path / "stale.jsonl"))
        outcome = replay_witness_file(stale_path)
        assert not outcome.ok
        assert "stale" in outcome.message

    def test_load_rejects_malformed_files(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            Witness.load(str(bad))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="incomplete"):
            Witness.load(str(empty))
        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="unknown format"):
            Witness.load(str(wrong))

    def test_invalid_expect_rejected(self):
        with pytest.raises(ValueError, match="expect"):
            Witness(algorithm="ssrmin", n=3, K=4, config=[(0, 0, 0)] * 3,
                    schedule=[(0,)], expect="maybe")

    def test_corpus_files_sorted_and_filtered(self, tmp_path):
        (tmp_path / "b.jsonl").write_text("")
        (tmp_path / "a.jsonl").write_text("")
        (tmp_path / "README.md").write_text("")
        files = corpus_files(str(tmp_path))
        assert [f.rsplit("/", 1)[1] for f in files] == ["a.jsonl", "b.jsonl"]
        assert corpus_files(str(tmp_path / "missing")) == []


class TestShrinker:
    def test_shrinking_a_passing_witness_raises(self):
        w = _clean_witness(seed=4)
        with pytest.raises(ValueError, match="no divergence"):
            shrink_witness(w)

    def test_shrinks_mutated_divergence(self, monkeypatch):
        """Plant a rule-table bug, record a long failing run, and check the
        shrinker reduces it without losing the failure."""
        import repro.simulation.fastpath.ssrmin_kernel as sk

        mutated = bytearray(sk.RULE_TABLE)
        mutated[1 << 6] = 0
        monkeypatch.setattr(sk, "RULE_TABLE", bytes(mutated))

        alg = SSRmin(4, 5)
        init = alg.random_configuration(random.Random(11))
        report = LockstepOracle(alg).run_daemon(
            init, RandomCentralDaemon(seed=11), 60
        )
        assert not report.ok
        w = Witness(
            algorithm="ssrmin", n=4, K=5, config=list(init.states),
            schedule=report.schedule, expect="divergence",
            divergence=report.divergences[0].to_json(),
        )
        shrunk, stats = shrink_witness(w)
        assert len(shrunk.schedule) <= len(w.schedule)
        assert stats.replays > 0
        assert stats.final_size <= stats.initial_size
        # The shrunk witness still fails under the mutation.
        assert not shrunk.replay().ok
        assert shrunk.expect == "divergence"
        assert shrunk.divergence is not None

    def test_truncates_past_divergence_step(self, monkeypatch):
        import repro.simulation.fastpath.ssrmin_kernel as sk

        mutated = bytearray(sk.RULE_TABLE)
        mutated[1 << 6] = 0
        monkeypatch.setattr(sk, "RULE_TABLE", bytes(mutated))

        alg = SSRmin(4, 5)
        init = alg.random_configuration(random.Random(11))
        report = LockstepOracle(alg).run_daemon(
            init, RandomCentralDaemon(seed=11), 60
        )
        assert not report.ok
        d = report.divergences[0]
        w = Witness(
            algorithm="ssrmin", n=4, K=5, config=list(init.states),
            schedule=report.schedule, expect="divergence",
            divergence=d.to_json(),
        )
        shrunk, _ = shrink_witness(w)
        # Everything past the (possibly re-discovered, earlier) divergence
        # point is gone.
        assert len(shrunk.schedule) <= d.step + 1
