"""Unit tests for explicit-state transition systems."""

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.verification.transition_system import TransitionSystem, nonempty_subsets


class TestNonemptySubsets:
    def test_all_subsets(self):
        subs = list(nonempty_subsets((0, 1, 2)))
        assert len(subs) == 7

    def test_size_cap(self):
        subs = list(nonempty_subsets((0, 1, 2), max_size=1))
        assert subs == [(0,), (1,), (2,)]

    def test_empty_input(self):
        assert list(nonempty_subsets(())) == []


class TestTransitionSystem:
    def test_rejects_bad_daemon(self):
        with pytest.raises(ValueError):
            TransitionSystem(DijkstraKState(3, 4), daemon="oracle")

    def test_central_successors_are_single_moves(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg, daemon="central")
        config = (0, 1, 2)  # several processes enabled
        succs = ts.successors(config)
        assert 1 <= len(succs) <= 3

    def test_distributed_successors_superset_of_central(self):
        alg = DijkstraKState(3, 4)
        central = TransitionSystem(alg, daemon="central")
        distributed = TransitionSystem(alg, daemon="distributed")
        config = (0, 1, 2)
        c_succ = set(central.successors(config))
        d_succ = set(distributed.successors(config))
        assert c_succ <= d_succ

    def test_successors_cached(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg, daemon="central")
        config = (0, 0, 0)
        assert ts.successors(config) is ts.successors(config)

    def test_state_count(self):
        ts = TransitionSystem(DijkstraKState(3, 4))
        assert ts.state_count() == 64

    def test_state_count_ssrmin(self):
        ts = TransitionSystem(SSRmin(3, 4))
        assert ts.state_count() == (4 * 4) ** 3

    def test_deadlock_detection(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg)
        # Dijkstra rings never deadlock.
        assert not ts.is_deadlocked((0, 0, 0))
        assert not ts.is_deadlocked((0, 1, 2))

    def test_reachability_closure(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg, daemon="central")
        reached = ts.reachable_from([(0, 0, 0)])
        # From the all-zero config the legitimate cycle visits 3K staircases.
        assert all(alg.is_legitimate(c) for c in reached.values())
        assert len(reached) == 3 * 4

    def test_reachability_from_everywhere_hits_legitimacy(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg, daemon="distributed")
        for config in ts.states():
            reached = ts.reachable_from([config])
            assert any(alg.is_legitimate(c) for c in reached.values())

    def test_memoized_legitimacy_matches_algorithm(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg)
        for config in ts.states():
            assert ts.is_legitimate(config) == alg.is_legitimate(config)
            # Second query must hit the memo and agree.
            assert ts.is_legitimate(config) == alg.is_legitimate(config)

    def test_fastpath_and_naive_reachability_agree(self):
        alg = SSRmin(3, 4)
        fast = TransitionSystem(alg, daemon="central", use_fastpath=True)
        naive = TransitionSystem(alg, daemon="central", use_fastpath=False)
        start = alg.initial_configuration()
        reached_fast = {c.states for c in fast.reachable_from([start]).values()}
        reached_naive = {c.states for c in naive.reachable_from([start]).values()}
        assert reached_fast == reached_naive


class _RestrictedSpaceDijkstra(DijkstraKState):
    """Overrides configuration_space: only staircase-reachable configs."""

    def configuration_space(self):
        for x in range(self.K):
            for split in range(self.n):
                step = (x + 1) % self.K
                yield tuple(
                    step if i < split else x for i in range(self.n)
                )


class _UncountableStateSpace(DijkstraKState):
    """local_state_space cannot be materialized (len raises TypeError)."""

    def local_state_space(self):
        return iter(range(self.K))

    def configuration_space(self):
        yield (0,) * self.n
        yield (1,) * self.n


class TestStateCount:
    def test_override_counted_by_iteration(self):
        alg = _RestrictedSpaceDijkstra(3, 4)
        ts = TransitionSystem(alg)
        # K values x n splits — far fewer than K^n, so the product
        # shortcut must not be trusted for overridden spaces.
        assert ts.state_count() == 4 * 3

    def test_expected_exceptions_fall_back_to_iteration(self):
        alg = _UncountableStateSpace(3, 4)
        ts = TransitionSystem(alg)
        assert ts.state_count() == 2

    def test_unexpected_exceptions_propagate(self):
        class Broken(DijkstraKState):
            def state_count_per_process(self):
                raise RuntimeError("boom")

        ts = TransitionSystem(Broken(3, 4))
        with pytest.raises(RuntimeError):
            ts.state_count()
