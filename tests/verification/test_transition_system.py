"""Unit tests for explicit-state transition systems."""

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.verification.transition_system import TransitionSystem, nonempty_subsets


class TestNonemptySubsets:
    def test_all_subsets(self):
        subs = list(nonempty_subsets((0, 1, 2)))
        assert len(subs) == 7

    def test_size_cap(self):
        subs = list(nonempty_subsets((0, 1, 2), max_size=1))
        assert subs == [(0,), (1,), (2,)]

    def test_empty_input(self):
        assert list(nonempty_subsets(())) == []


class TestTransitionSystem:
    def test_rejects_bad_daemon(self):
        with pytest.raises(ValueError):
            TransitionSystem(DijkstraKState(3, 4), daemon="oracle")

    def test_central_successors_are_single_moves(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg, daemon="central")
        config = (0, 1, 2)  # several processes enabled
        succs = ts.successors(config)
        assert 1 <= len(succs) <= 3

    def test_distributed_successors_superset_of_central(self):
        alg = DijkstraKState(3, 4)
        central = TransitionSystem(alg, daemon="central")
        distributed = TransitionSystem(alg, daemon="distributed")
        config = (0, 1, 2)
        c_succ = set(central.successors(config))
        d_succ = set(distributed.successors(config))
        assert c_succ <= d_succ

    def test_successors_cached(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg, daemon="central")
        config = (0, 0, 0)
        assert ts.successors(config) is ts.successors(config)

    def test_state_count(self):
        ts = TransitionSystem(DijkstraKState(3, 4))
        assert ts.state_count() == 64

    def test_state_count_ssrmin(self):
        ts = TransitionSystem(SSRmin(3, 4))
        assert ts.state_count() == (4 * 4) ** 3

    def test_deadlock_detection(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg)
        # Dijkstra rings never deadlock.
        assert not ts.is_deadlocked((0, 0, 0))
        assert not ts.is_deadlocked((0, 1, 2))

    def test_reachability_closure(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg, daemon="central")
        reached = ts.reachable_from([(0, 0, 0)])
        # From the all-zero config the legitimate cycle visits 3K staircases.
        assert all(alg.is_legitimate(c) for c in reached.values())
        assert len(reached) == 3 * 4

    def test_reachability_from_everywhere_hits_legitimacy(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg, daemon="distributed")
        for config in ts.states():
            reached = ts.reachable_from([config])
            assert any(alg.is_legitimate(c) for c in reached.values())
