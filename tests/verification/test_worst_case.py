"""Unit tests for exact worst-case witness extraction."""

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.daemons.replay import ReplayDaemon
from repro.verification.model_checker import (
    worst_case_convergence_steps,
    worst_case_witness,
)
from repro.verification.transition_system import TransitionSystem


class TestWorstCaseWitness:
    def test_witness_length_equals_exact_value(self):
        alg = SSRmin(3, 4)
        ts = TransitionSystem(alg, "distributed")
        worst = worst_case_convergence_steps(TransitionSystem(alg, "distributed"))
        path = worst_case_witness(ts)
        assert len(path) - 1 == worst

    def test_witness_structure(self):
        alg = SSRmin(3, 4)
        path = worst_case_witness(TransitionSystem(alg, "distributed"))
        assert not alg.is_legitimate(path[0])
        assert alg.is_legitimate(path[-1])
        for config in path[:-1]:
            assert not alg.is_legitimate(config)

    def test_witness_transitions_are_legal(self):
        """Each witness step must be reachable by some daemon selection."""
        alg = SSRmin(3, 4)
        ts = TransitionSystem(alg, "distributed")
        path = worst_case_witness(ts)
        for a, b in zip(path, path[1:]):
            succs = {ts._key(s) for s in ts.successors(a)}
            assert ts._key(b) in succs

    def test_dijkstra_witness(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg, "distributed")
        path = worst_case_witness(ts)
        worst = worst_case_convergence_steps(TransitionSystem(alg, "distributed"))
        assert len(path) - 1 == worst
        assert alg.is_legitimate(path[-1])

    def test_worst_case_within_theorem2_budget(self):
        alg = SSRmin(3, 4)
        path = worst_case_witness(TransitionSystem(alg, "distributed"))
        n = 3
        assert len(path) - 1 <= 60 * n * n + 600

    def test_witness_on_tiny_dijkstra_ring_regression(self):
        """Regression for the missing ``Dict`` import in model_checker.

        ``worst_case_witness`` annotates its memo table with ``Dict`` at
        function scope; with the name absent from the module namespace the
        call was one evaluated-annotations switch away from a NameError.
        The import now lives at module top — this pins the function working
        end to end on the smallest ring.
        """
        import typing

        import repro.verification.model_checker as mc

        assert getattr(mc, "Dict") is typing.Dict
        assert getattr(mc, "sys") is not None  # import sys at module top
        alg = DijkstraKState(2, 3)
        path = worst_case_witness(TransitionSystem(alg, "distributed"))
        assert len(path) >= 1
        assert alg.is_legitimate(path[-1])
        for config in path[:-1]:
            assert not alg.is_legitimate(config)

    def test_witness_fastpath_matches_naive_value(self):
        alg = SSRmin(3, 4)
        fast = worst_case_witness(
            TransitionSystem(alg, "distributed", use_fastpath=True))
        naive = worst_case_witness(
            TransitionSystem(alg, "distributed", use_fastpath=False))
        assert len(fast) == len(naive)

    def test_central_daemon_worst_at_least_distributed_start_value(self):
        """The central daemon is a restriction of the distributed one, so
        its exact worst case cannot exceed the distributed daemon's."""
        alg = SSRmin(3, 4)
        wc_central = worst_case_convergence_steps(
            TransitionSystem(alg, "central")
        )
        wc_distributed = worst_case_convergence_steps(
            TransitionSystem(alg, "distributed")
        )
        assert wc_central <= wc_distributed
