"""Unit tests for the exhaustive self-stabilization model checker.

These include the headline mechanical verifications: SSRmin itself is
exhaustively proven self-stabilizing (closure, convergence, no deadlock)
for the smallest legal instance — machine-checked Lemmas 1, 4 and 6.
"""

import pytest

from repro.algorithms.base import RingAlgorithm
from repro.algorithms.dijkstra import DijkstraKState
from repro.core.rules import Rule, RuleSet
from repro.core.ssrmin import SSRmin
from repro.ring.topology import RingTopology
from repro.verification.model_checker import (
    check_self_stabilization,
    worst_case_convergence_steps,
)
from repro.verification.transition_system import TransitionSystem


class BrokenRing(RingAlgorithm):
    """A deliberately broken 2-value ring: oscillates outside Lambda.

    Every process flips its bit whenever it differs from its predecessor;
    Lambda = all-equal configurations.  The two alternating configurations
    (0,1,0,...) and (1,0,1,...) form an illegitimate cycle under the central
    daemon picking everyone in turn... they form cycles under synchronous
    moves, and mixed configurations can also deadlock-free oscillate.  Used
    to prove the checker detects non-convergence.
    """

    def __init__(self, n: int):
        self.ring = RingTopology(n, bidirectional=False)
        self.rule_set = RuleSet(
            [
                Rule(
                    "FLIP",
                    1,
                    guard=lambda c, i: c[i] != c[i - 1],
                    command=lambda c, i: 1 - c[i],
                )
            ]
        )

    def is_legitimate(self, config):
        return len(set(config)) == 1

    def privileged(self, config):
        return self.enabled_processes(config)

    def local_state_space(self):
        return (0, 1)

    def random_configuration(self, rng):
        return tuple(rng.randrange(2) for _ in range(self.n))


class TestDijkstraVerification:
    @pytest.mark.parametrize("n,K", [(3, 4), (4, 5)])
    def test_k_state_self_stabilizing_distributed(self, n, K):
        report = check_self_stabilization(
            TransitionSystem(DijkstraKState(n, K), "distributed")
        )
        assert report.self_stabilizing, report.summary()
        assert report.worst_case_steps is not None

    def test_small_k_fails(self):
        """K=2 < n=3: the ring is NOT self-stabilizing (the K > n rule)."""
        alg = DijkstraKState(3, 2, allow_small_k=True)
        report = check_self_stabilization(TransitionSystem(alg, "distributed"))
        assert not report.self_stabilizing
        assert report.illegitimate_cycle is not None

    def test_worst_case_helper_matches_report(self):
        alg = DijkstraKState(3, 4)
        ts = TransitionSystem(alg, "distributed")
        report = check_self_stabilization(ts)
        assert worst_case_convergence_steps(
            TransitionSystem(alg, "distributed")
        ) == report.worst_case_steps


class TestSSRminVerification:
    def test_ssrmin_exhaustively_self_stabilizing(self):
        """Machine-checked Lemmas 1 + 4 + 6 for n=3, K=4 (4096 configs)."""
        alg = SSRmin(3, 4)
        report = check_self_stabilization(TransitionSystem(alg, "distributed"))
        assert report.self_stabilizing, report.summary()
        assert report.legitimate_count == 3 * 3 * 4
        assert report.deadlocks == []
        assert report.closure_violations == []

    def test_ssrmin_worst_case_within_theorem2_budget(self):
        alg = SSRmin(3, 4)
        worst = worst_case_convergence_steps(
            TransitionSystem(alg, "distributed")
        )
        n = 3
        assert worst <= 60 * n * n + 600  # far inside the O(n^2) regime
        assert worst >= 1


class TestCheckerDetectsBreakage:
    def test_broken_ring_flagged(self):
        report = check_self_stabilization(TransitionSystem(BrokenRing(3)))
        assert not report.self_stabilizing
        assert report.illegitimate_cycle is not None

    def test_unchecked_convergence_never_claims_success(self):
        alg = DijkstraKState(3, 4)
        report = check_self_stabilization(
            TransitionSystem(alg, "distributed"), compute_worst_case=False
        )
        assert not report.convergence_checked
        assert not report.self_stabilizing  # refuses to claim without proof

    def test_summary_renders(self):
        report = check_self_stabilization(
            TransitionSystem(DijkstraKState(3, 4), "central")
        )
        text = report.summary()
        assert "SELF-STABILIZING" in text
        assert "worst-case" in text
