"""Unit tests for the temporal-property toolkit."""

import random

import pytest

from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon
from repro.simulation.engine import SharedMemorySimulator
from repro.verification.properties import (
    always,
    check_convergence_property,
    check_mutual_inclusion_property,
    eventually,
    eventually_always,
    leads_to,
    until,
)


IS_EVEN = lambda x: x % 2 == 0
IS_BIG = lambda x: x >= 10


class TestAlways:
    def test_holds(self):
        assert always([2, 4, 6], IS_EVEN)

    def test_counterexample_localized(self):
        result = always([2, 3, 4], IS_EVEN)
        assert not result
        assert result.counterexample_index == 1

    def test_empty_execution(self):
        assert always([], IS_EVEN)


class TestEventually:
    def test_holds(self):
        assert eventually([1, 3, 10], IS_BIG)

    def test_fails(self):
        result = eventually([1, 3, 5], IS_BIG)
        assert not result

    def test_empty_fails(self):
        assert not eventually([], IS_BIG)


class TestEventuallyAlways:
    def test_holds_with_suffix(self):
        assert eventually_always([1, 3, 2, 4, 6], IS_EVEN)

    def test_fails_when_final_state_bad(self):
        result = eventually_always([2, 4, 3], IS_EVEN)
        assert not result
        assert result.counterexample_index == 2

    def test_holds_throughout(self):
        assert eventually_always([2, 4], IS_EVEN)


class TestLeadsTo:
    def test_holds(self):
        # every odd number followed (inclusively) by something big
        assert leads_to([1, 10, 3, 12], lambda x: x % 2 == 1, IS_BIG)

    def test_p_at_end_without_q_fails(self):
        result = leads_to([10, 3], lambda x: x % 2 == 1, IS_BIG)
        assert not result
        assert result.counterexample_index == 1

    def test_inclusive_satisfaction(self):
        # q at the same index as p counts.
        assert leads_to([11], lambda x: x % 2 == 1, IS_BIG)


class TestUntil:
    def test_holds(self):
        assert until([2, 4, 11], IS_EVEN, IS_BIG)

    def test_q_immediately(self):
        assert until([12, 99], lambda x: False, IS_BIG)

    def test_p_broken_before_q(self):
        result = until([2, 3, 12], IS_EVEN, IS_BIG)
        assert not result
        assert result.counterexample_index == 1

    def test_strong_until_requires_q(self):
        assert not until([2, 4, 6], IS_EVEN, IS_BIG)


class TestPaperBundles:
    def record(self, seed):
        alg = SSRmin(5, 6)
        init = alg.random_configuration(random.Random(seed))
        sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=seed))
        result = sim.run(init, max_steps=800)
        return alg, result.execution

    def test_convergence_property_on_real_runs(self):
        for seed in range(5):
            alg, execution = self.record(seed)
            assert check_convergence_property(
                execution.configurations, alg
            ), f"seed {seed}"

    def test_mutual_inclusion_property_after_convergence(self):
        for seed in range(5):
            alg, execution = self.record(10 + seed)
            assert check_mutual_inclusion_property(
                execution.configurations, alg
            ), f"seed {seed}"

    def test_mutual_inclusion_without_grace_can_fail(self):
        """From chaos, the band may be violated pre-convergence — the
        bundle's after_convergence flag matters."""
        alg = SSRmin(5, 6)
        # Craft a configuration with zero tokens... impossible (Lemma 3
        # guarantees a primary). Instead use one with >2 privileged.
        from repro.core.state import Configuration

        crowded = Configuration(
            [(0, 0, 1), (1, 0, 1), (2, 0, 1), (3, 0, 1), (4, 0, 1)]
        )
        assert len(alg.privileged(crowded)) > 2
        result = check_mutual_inclusion_property(
            [crowded], alg, after_convergence=False
        )
        assert not result
