"""Edge-case tests for the CST network layer."""

import pytest

from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import ExponentialDelay, FixedDelay, UniformDelay
from repro.messagepassing.network import build_cst_network


class TestTimerBehaviour:
    def test_timer_fires_repeatedly(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=0, timer_interval=2.0, timer_jitter=0.5)
        net.run(50.0)
        fires = [node.timer_fires for node in net.nodes]
        # ~50 / ~2.25 per node, with scheduling slack.
        assert all(15 <= f <= 26 for f in fires), fires

    def test_jitter_desynchronizes_timers(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=1, timer_interval=5.0, timer_jitter=3.0)
        net.run(100.0)
        fires = {node.timer_fires for node in net.nodes}
        # With jitter the per-node counts should not all coincide.
        assert len(fires) >= 2

    def test_zero_jitter_allowed(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=2, timer_interval=4.0, timer_jitter=0.0)
        net.run(30.0)  # must simply not crash and make progress
        assert net.queue.executed > 0


class TestDelayModels:
    @pytest.mark.parametrize("delay", [
        FixedDelay(0.2),
        FixedDelay(3.0),
        UniformDelay(0.1, 0.3),
        ExponentialDelay(0.7),
    ])
    def test_tolerance_robust_to_delay_scale(self, delay):
        """Theorem 3 does not depend on the delay magnitude."""
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=3, delay_model=delay)
        net.run(120.0)
        net.timeline.finish(net.queue.now)
        assert net.timeline.zero_time() == 0.0

    def test_slow_links_slow_circulation(self):
        alg = SSRmin(5, 6)
        fast = transformed(alg, seed=4, delay_model=FixedDelay(0.2))
        slow = transformed(alg, seed=4, delay_model=FixedDelay(3.0))
        fast.run(150.0)
        slow.run(150.0)
        assert fast.timeline.holder_changes() > slow.timeline.holder_changes()


class TestRunGuards:
    def test_max_events_guard_trips_on_tiny_budget(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=5)
        with pytest.raises(RuntimeError):
            net.run(1000.0, max_events=10)

    def test_run_starts_network_implicitly(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=6)
        assert not net._started
        net.run(5.0)
        assert net._started


class TestBuilderValidation:
    def test_initial_caches_partial_dict_ok(self):
        """Caches may be specified for only some nodes/neighbours."""
        alg = SSRmin(5, 6)
        states = list(alg.initial_configuration())
        net = build_cst_network(
            alg, states, initial_caches={0: {1: (0, 1, 1)}}, seed=7
        )
        assert net.nodes[0].cache[1] == (0, 1, 1)
        # Unspecified entries default to the node's own state.
        assert net.nodes[0].cache[4] == states[0]

    def test_token_predicate_override(self):
        alg = SSRmin(5, 6)
        states = list(alg.initial_configuration())
        net = build_cst_network(
            alg, states, token_predicate=lambda node: node.index == 2, seed=8
        )
        net.start()
        assert net.token_holders() == (2,)


class TestHeterogeneousDelays:
    def test_override_applies_to_named_direction(self):
        from repro.messagepassing.cst import legitimate_initial_states

        alg = SSRmin(5, 6)
        slow = FixedDelay(5.0)
        net = build_cst_network(
            alg, legitimate_initial_states(alg), seed=9,
            link_delay_overrides={(0, 1): slow},
        )
        assert net.nodes[0].links[1].delay_model is slow
        assert net.nodes[1].links[0].delay_model is not slow

    def test_tolerance_with_one_slow_link(self):
        """One 10x-slower direction stretches handovers across that edge
        but cannot break the >= 1-token guarantee."""
        from repro.messagepassing.cst import coherent_caches, legitimate_initial_states

        alg = SSRmin(5, 6)
        states = legitimate_initial_states(alg)
        net = build_cst_network(
            alg, states, seed=10,
            delay_model=UniformDelay(0.5, 1.5),
            initial_caches=coherent_caches(list(states), 5),
            link_delay_overrides={
                (2, 3): FixedDelay(10.0),
                (3, 2): FixedDelay(10.0),
            },
        )
        net.run(300.0)
        net.timeline.finish(net.queue.now)
        assert net.timeline.zero_time() == 0.0
        lo, hi = net.timeline.count_bounds()
        assert lo >= 1 and hi <= 2

    def test_slow_edge_slows_service_of_downstream_node(self):
        from repro.messagepassing.cst import coherent_caches, legitimate_initial_states

        alg = SSRmin(5, 6)
        states = legitimate_initial_states(alg)
        uniform = build_cst_network(
            alg, states, seed=11, delay_model=FixedDelay(1.0),
            initial_caches=coherent_caches(list(states), 5),
        )
        skewed = build_cst_network(
            alg, states, seed=11, delay_model=FixedDelay(1.0),
            initial_caches=coherent_caches(list(states), 5),
            link_delay_overrides={(2, 3): FixedDelay(8.0),
                                  (3, 2): FixedDelay(8.0)},
        )
        uniform.run(300.0)
        skewed.run(300.0)
        assert skewed.timeline.holder_changes() < uniform.timeline.holder_changes()
