"""Unit tests for token-coverage timelines."""

import pytest

from repro.messagepassing.timeline import TokenTimeline


def build(points, end):
    tl = TokenTimeline()
    for t, holders in points:
        tl.record(t, holders)
    tl.finish(end)
    return tl


class TestRecording:
    def test_coalesces_identical(self):
        tl = TokenTimeline()
        tl.record(0.0, [1])
        tl.record(1.0, [1])
        tl.record(2.0, [2])
        assert len(tl.points) == 2

    def test_same_instant_keeps_last(self):
        tl = TokenTimeline()
        tl.record(0.0, [1])
        tl.record(1.0, [2])
        tl.record(1.0, [3])
        assert tl.points[-1].holders == (3,)
        assert len(tl.points) == 2

    def test_same_instant_collapse_merges_with_previous(self):
        tl = TokenTimeline()
        tl.record(0.0, [1])
        tl.record(1.0, [2])
        tl.record(1.0, [1])  # back to the original set at the same instant
        assert len(tl.points) == 1
        assert tl.points[0].holders == (1,)

    def test_time_reversal_rejected(self):
        tl = TokenTimeline()
        tl.record(2.0, [1])
        with pytest.raises(ValueError):
            tl.record(1.0, [2])

    def test_holders_sorted(self):
        tl = TokenTimeline()
        tl.record(0.0, [3, 1])
        assert tl.points[0].holders == (1, 3)

    def test_finish_before_last_point_rejected(self):
        tl = TokenTimeline()
        tl.record(5.0, [1])
        with pytest.raises(ValueError):
            tl.finish(4.0)

    def test_query_before_finish_rejected(self):
        tl = TokenTimeline()
        tl.record(0.0, [1])
        with pytest.raises(ValueError):
            tl.intervals()


class TestQueries:
    def test_intervals_partition(self):
        tl = build([(0.0, [0]), (2.0, [0, 1]), (3.0, [1])], end=5.0)
        assert tl.intervals() == [
            (0.0, 2.0, (0,)),
            (2.0, 3.0, (0, 1)),
            (3.0, 5.0, (1,)),
        ]

    def test_zero_intervals(self):
        tl = build([(0.0, [0]), (1.0, []), (2.5, [1]), (4.0, [])], end=5.0)
        assert tl.zero_intervals() == [(1.0, 2.5), (4.0, 5.0)]
        assert tl.zero_time() == 2.5

    def test_no_zero_intervals(self):
        tl = build([(0.0, [0]), (2.0, [1])], end=4.0)
        assert tl.zero_intervals() == []
        assert tl.zero_time() == 0.0

    def test_count_bounds(self):
        tl = build([(0.0, [0]), (1.0, [0, 1]), (2.0, [])], end=3.0)
        assert tl.count_bounds() == (0, 2)

    def test_count_bounds_with_from_time(self):
        tl = build([(0.0, []), (1.0, [0]), (2.0, [0, 1])], end=3.0)
        assert tl.count_bounds(from_time=1.5) == (1, 2)

    def test_coverage_fraction(self):
        tl = build([(0.0, [0]), (2.0, []), (3.0, [1])], end=4.0)
        assert tl.coverage_fraction() == pytest.approx(0.75)

    def test_coverage_with_warmup(self):
        tl = build([(0.0, []), (2.0, [0])], end=4.0)
        assert tl.coverage_fraction(from_time=2.0) == pytest.approx(1.0)

    def test_holder_changes(self):
        tl = build([(0.0, [0]), (1.0, [1]), (2.0, [1, 2])], end=3.0)
        assert tl.holder_changes() == 3
