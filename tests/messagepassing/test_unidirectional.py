"""Tests for the unidirectional CST wiring (link/message halving)."""

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.modelgap import evaluate_gap


class TestWiring:
    def test_dijkstra_nodes_have_forward_links_only(self):
        alg = DijkstraKState(5, 6)
        net = transformed(alg, seed=0)
        for i, node in enumerate(net.nodes):
            assert set(node.links) == {(i + 1) % 5}
            assert node.neighbors == ((i - 1) % 5,)

    def test_ssrmin_nodes_keep_both_directions(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=0)
        for i, node in enumerate(net.nodes):
            assert set(node.links) == {(i - 1) % 5, (i + 1) % 5}
            assert set(node.neighbors) == {(i - 1) % 5, (i + 1) % 5}

    def test_unidirectional_message_cost_is_lower(self):
        """Same workload: the unidirectional ring sends ~half the messages
        a bidirectional one would (one out-link instead of two)."""
        d = DijkstraKState(5, 6)
        s = SSRmin(5, 6)
        net_d = transformed(d, seed=1, delay_model=UniformDelay(0.5, 1.5))
        net_s = transformed(s, seed=1, delay_model=UniformDelay(0.5, 1.5))
        net_d.run(200.0)
        net_s.run(200.0)
        assert net_d.message_stats()["sent"] < net_s.message_stats()["sent"]


class TestSemanticsPreserved:
    def test_token_still_circulates(self):
        alg = DijkstraKState(5, 6)
        net = transformed(alg, seed=2, delay_model=UniformDelay(0.5, 1.5))
        net.start()
        served = set()
        for _ in range(60):
            net.run(5.0)
            served.update(net.token_holders())
        assert served == set(range(5))

    def test_extinction_shape_unchanged(self):
        """Figure 11's phenomenon is about transit gaps, not link count:
        the unidirectional wiring shows the same extinction."""
        alg = DijkstraKState(5, 6)
        net = transformed(alg, seed=3, delay_model=UniformDelay(0.5, 1.5))
        rep = evaluate_gap(net, duration=200.0)
        assert rep.zero_time > 0
        assert rep.max_count <= 1

    def test_chaos_still_converges(self):
        from repro.messagepassing.coherence import CoherenceTracker
        from repro.messagepassing.cst import transformed_from_chaos

        alg = DijkstraKState(5, 6)
        net = transformed_from_chaos(alg, seed=4)
        t = CoherenceTracker(net).run_until_stabilized(slice_duration=5.0,
                                                       max_time=20_000.0)
        assert t >= 0.0
