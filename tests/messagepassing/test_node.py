"""Unit tests for CST nodes (Algorithm 4)."""

import random

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.messagepassing.des import EventQueue
from repro.messagepassing.links import FixedDelay
from repro.messagepassing.node import CSTNode


def make_node(alg, i, state, cache=None, scheduler=None, dwell=None):
    n = alg.n
    return CSTNode(
        index=i,
        algorithm=alg,
        neighbors=((i - 1) % n, (i + 1) % n),
        initial_state=state,
        initial_cache=cache,
        scheduler=scheduler,
        dwell_model=dwell,
    )


class FakeLink:
    def __init__(self):
        self.outbox = []

    def send(self, payload):
        self.outbox.append(payload)


class TestConstruction:
    def test_dwell_requires_scheduler(self):
        alg = DijkstraKState(3, 4)
        with pytest.raises(ValueError):
            make_node(alg, 0, 0, dwell=FixedDelay(1.0))

    def test_cache_defaults_to_own_state(self):
        alg = DijkstraKState(3, 4)
        node = make_node(alg, 1, 2)
        assert node.cache == {0: 2, 2: 2}

    def test_initial_cache_respected(self):
        alg = DijkstraKState(3, 4)
        node = make_node(alg, 1, 2, cache={0: 3, 2: 1})
        assert node.cache == {0: 3, 2: 1}


class TestView:
    def test_view_layout(self):
        alg = SSRmin(5, 6)
        node = make_node(alg, 2, (3, 0, 0), cache={1: (4, 0, 0), 3: (3, 0, 1)})
        view = node.view()
        assert view[2] == (3, 0, 0)
        assert view[1] == (4, 0, 0)
        assert view[3] == (3, 0, 1)
        assert view[0] is None and view[4] is None

    def test_far_positions_unreadable(self):
        """Guards never touch non-neighbour positions (None placeholder)."""
        alg = SSRmin(5, 6)
        node = make_node(alg, 2, (3, 0, 0))
        # Evaluating the enabled rule must not raise despite the Nones.
        alg.enabled_rule(node.view(), 2)


class TestOnReceive:
    def test_updates_cache_and_broadcasts(self):
        alg = DijkstraKState(3, 4)
        node = make_node(alg, 1, 0)
        links = {0: FakeLink(), 2: FakeLink()}
        node.links = links
        node.on_receive(0, 3)
        assert node.cache[0] == 3
        # Rule fired (x1 != x0): copied predecessor.
        assert node.state == 3
        # Broadcast reaches both neighbours with the NEW state.
        assert links[0].outbox == [(1, 3)]
        assert links[2].outbox == [(1, 3)]

    def test_rejects_non_neighbour(self):
        alg = DijkstraKState(5, 6)
        node = make_node(alg, 1, 0)
        with pytest.raises(ValueError):
            node.on_receive(3, 1)

    def test_no_rule_executes_when_disabled(self):
        alg = DijkstraKState(3, 4)
        node = make_node(alg, 1, 0)
        node.links = {0: FakeLink(), 2: FakeLink()}
        node.on_receive(0, 0)  # x equal: not enabled
        assert node.state == 0
        assert node.rules_executed == 0

    def test_dwell_defers_rule_execution(self):
        alg = DijkstraKState(3, 4)
        q = EventQueue()
        node = make_node(alg, 1, 0, scheduler=q.schedule,
                         dwell=FixedDelay(2.0))
        node.rng = random.Random(0)
        node.links = {0: FakeLink(), 2: FakeLink()}
        node.on_receive(0, 3)
        assert node.state == 0  # not yet
        q.run_until(2.0)
        assert node.state == 3  # after the dwell

    def test_dwell_reevaluates_guard_at_execution(self):
        alg = DijkstraKState(3, 4)
        q = EventQueue()
        node = make_node(alg, 1, 0, scheduler=q.schedule,
                         dwell=FixedDelay(2.0))
        node.rng = random.Random(0)
        node.links = {0: FakeLink(), 2: FakeLink()}
        node.on_receive(0, 3)  # becomes enabled, action scheduled
        node.on_receive(0, 0)  # guard now false again
        q.run_until(5.0)
        assert node.state == 0  # re-check prevented a stale execution


class TestOnTimer:
    def test_timer_broadcasts_current_state(self):
        alg = DijkstraKState(3, 4)
        node = make_node(alg, 1, 2)
        links = {0: FakeLink(), 2: FakeLink()}
        node.links = links
        node.on_timer()
        assert links[0].outbox == [(1, 2)]
        assert node.timer_fires == 1

    def test_timer_wakes_enabled_node_with_dwell(self):
        alg = DijkstraKState(3, 4)
        q = EventQueue()
        # Node enabled purely from its initial (corrupt) cache.
        node = make_node(alg, 1, 0, cache={0: 3, 2: 0},
                         scheduler=q.schedule, dwell=FixedDelay(1.0))
        node.rng = random.Random(0)
        node.links = {0: FakeLink(), 2: FakeLink()}
        node.on_timer()
        q.run_until(1.0)
        assert node.state == 3


class TestHoldsToken:
    def test_ssrmin_uses_token_predicates(self):
        alg = SSRmin(5, 6)
        node = make_node(alg, 0, (3, 0, 1),
                         cache={4: (3, 0, 0), 1: (3, 0, 0)})
        assert node.holds_token()  # tra=1 -> secondary; G true -> primary

    def test_ssrmin_own_view_can_differ_from_truth(self):
        alg = SSRmin(5, 6)
        # Own view says G false (stale cache), tra=0: no token.
        node = make_node(alg, 1, (3, 0, 0),
                         cache={0: (3, 0, 0), 2: (3, 0, 0)})
        assert not node.holds_token()

    def test_dijkstra_fallback_uses_enabledness(self):
        alg = DijkstraKState(3, 4)
        node = make_node(alg, 1, 0, cache={0: 3, 2: 0})
        assert node.holds_token()
        node2 = make_node(alg, 1, 0, cache={0: 0, 2: 0})
        assert not node2.holds_token()


class TestChattyFlag:
    def test_chatty_default_echoes_every_receipt(self):
        alg = DijkstraKState(3, 4)
        node = make_node(alg, 1, 0)
        links = {0: FakeLink(), 2: FakeLink()}
        node.links = links
        node.on_receive(0, 0)  # no rule fires (x equal)
        assert links[2].outbox  # Algorithm 4 verbatim: echo anyway

    def test_quiet_node_suppresses_no_change_echo(self):
        alg = DijkstraKState(3, 4)
        node = make_node(alg, 1, 0)
        node.chatty = False
        links = {0: FakeLink(), 2: FakeLink()}
        node.links = links
        node.on_receive(0, 0)  # no rule fires, no state change
        assert not links[2].outbox

    def test_quiet_node_still_broadcasts_state_changes(self):
        alg = DijkstraKState(3, 4)
        node = make_node(alg, 1, 0)
        node.chatty = False
        links = {0: FakeLink(), 2: FakeLink()}
        node.links = links
        node.on_receive(0, 3)  # rule fires: copy predecessor
        assert node.state == 3
        assert links[2].outbox == [(1, 3)]

    def test_quiet_node_timer_still_broadcasts(self):
        alg = DijkstraKState(3, 4)
        node = make_node(alg, 1, 2)
        node.chatty = False
        links = {0: FakeLink(), 2: FakeLink()}
        node.links = links
        node.on_timer()
        assert links[0].outbox == [(1, 2)]
