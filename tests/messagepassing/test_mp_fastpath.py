"""Differential suite for the packed message-passing fastpath.

Four layers of evidence that :class:`FastCSTNetwork` is the reference DES:

* **codec vs rule set** — exhaustive agreement of the packed local-view
  semantics (guard resolution, command execution, the own-view token
  predicate) with the reference ``RuleSet`` over *every* packable local
  view, for both shipped algorithms;
* **full-run lockstep** — seeded end-to-end runs under loss, random
  delays, duplication, slicing, transient corruption and link outages
  produce bit-identical observables (token timeline, states, caches,
  message statistics, event counts, final RNG state) on both engines;
* **golden traces** — the frozen fig13 corpus replays record-for-record
  with the fastpath forced on and forced off;
* **escape hatches** — the ``use_fastpath`` kwarg, the scoped override and
  the environment default compose with the documented precedence, and
  out-of-scope setups (custom token predicates, codec-less algorithms,
  tiny bidirectional rings, unpackable states) silently keep the
  reference engine.
"""

import json
import os
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import (
    coherent_caches,
    legitimate_initial_states,
    transformed,
    transformed_from_chaos,
)
from repro.messagepassing.fastpath import (
    mp_fastpath_enabled,
    mp_fastpath_override,
    resolve_mp_codec,
)
from repro.messagepassing.fastpath.codecs import DijkstraMPCodec, SSRminMPCodec
from repro.messagepassing.fastpath.network import FastCSTNetwork
from repro.messagepassing.links import ExponentialDelay, UniformDelay
from repro.messagepassing.network import MessagePassingNetwork, build_cst_network


def fingerprint(net):
    """Everything two equivalent runs must agree on."""
    return {
        "timeline": tuple(net.timeline.points),
        "states": tuple(net.true_configuration()),
        "caches": tuple(
            tuple(sorted(node.cache.items())) for node in net.nodes
        ),
        "stats": net.message_stats(),
        "executed": net.queue.executed,
        "now": net.queue.now,
        "rng": net.rng.getstate(),
        "counters": tuple(
            (node.rules_executed, node.messages_received, node.timer_fires)
            for node in net.nodes
        ),
    }


def assert_lockstep(fast, ref):
    assert isinstance(fast, FastCSTNetwork)
    assert not isinstance(ref, FastCSTNetwork)
    fp_fast, fp_ref = fingerprint(fast), fingerprint(ref)
    for key in fp_ref:
        assert fp_fast[key] == fp_ref[key], f"diverged on {key}"


# ---------------------------------------------------------------------------
# codec vs reference rule set, exhaustively
# ---------------------------------------------------------------------------

def _exhaustive_codec_check(alg, codec, bidirectional):
    n = alg.n
    domain = range(codec.K << 2) if bidirectional else range(codec.K)
    succ_domain = domain
    for i in range(n):
        pred, succ = (i - 1) % n, (i + 1) % n
        for own in domain:
            for cpred in domain:
                for csucc in succ_domain:
                    view = [None] * n
                    view[i] = codec.unpack(own)
                    view[pred] = codec.unpack(cpred)
                    view[succ] = codec.unpack(csucc)
                    rid = codec.rule_id(own, cpred, csucc, i)
                    rule = alg.enabled_rule(view, i)
                    if rid:
                        assert rule is not None, (i, view)
                        assert codec.rule_names[rid] == rule.name, (i, view)
                        assert (
                            codec.unpack(codec.execute(rid, own, cpred, csucc, i))
                            == rule.execute(view, i)
                        ), (i, view)
                    else:
                        assert rule is None, (i, view)
                    assert (
                        codec.holds_token(own, cpred, csucc, i)
                        == alg.node_holds_token(view, i)
                    ), (i, view)


def test_ssrmin_codec_matches_rules_exhaustively():
    """All (own, cpred, csucc, i) packed local views at n=3, K=4."""
    alg = SSRmin(3, 4)
    _exhaustive_codec_check(alg, SSRminMPCodec(alg), bidirectional=True)


def test_dijkstra_codec_matches_rules_exhaustively():
    alg = DijkstraKState(3, 4)
    _exhaustive_codec_check(alg, DijkstraMPCodec(alg), bidirectional=False)


def test_codec_try_pack_rejects_out_of_domain():
    codec = SSRminMPCodec(SSRmin(5, 6))
    assert codec.try_pack((0, 0, 0)) == 0
    for bad in ((6, 0, 0), (-1, 1, 0), (0, 2, 0), "junk", None, (0, 0)):
        assert codec.try_pack(bad) is None
    dcodec = DijkstraMPCodec(DijkstraKState(5, 6))
    assert dcodec.try_pack(3) == 3
    for bad in (6, -1, "x", None, 2.5):
        assert dcodec.try_pack(bad) is None


@given(st.integers(0, 5), st.integers(0, 1), st.integers(0, 1))
def test_ssrmin_pack_roundtrip(x, rts, tra):
    codec = SSRminMPCodec(SSRmin(5, 6))
    state = (x, rts, tra)
    assert codec.unpack(codec.pack(state)) == state
    assert codec.try_pack(state) == codec.pack(state)


@given(st.integers(0, 7))
def test_dijkstra_pack_roundtrip(x):
    codec = DijkstraMPCodec(DijkstraKState(7, 8))
    assert codec.unpack(codec.pack(x)) == x


# ---------------------------------------------------------------------------
# full-run lockstep: fast engine vs reference, same seeds
# ---------------------------------------------------------------------------

def _both(builder, **kwargs):
    fast = builder(use_fastpath=True, **kwargs)
    ref = builder(use_fastpath=False, **kwargs)
    return fast, ref


@pytest.mark.parametrize("loss", [0.0, 0.3])
def test_lockstep_ssrmin_chaos_with_loss(loss):
    fast, ref = _both(
        transformed_from_chaos, algorithm=SSRmin(6, 7), seed=11,
        loss_probability=loss,
    )
    for net in (fast, ref):
        net.run(120.0)
    assert_lockstep(fast, ref)


def test_lockstep_ssrmin_legitimate_uniform_delay_sliced():
    fast, ref = _both(
        transformed, algorithm=SSRmin(5, 6), seed=3,
        delay_model=UniformDelay(0.5, 1.5),
    )
    for _ in range(7):
        for net in (fast, ref):
            net.run(13.0)
        assert_lockstep(fast, ref)


def test_lockstep_dijkstra_exponential_delay():
    fast, ref = _both(
        transformed_from_chaos, algorithm=DijkstraKState(6, 7), seed=5,
        delay_model=ExponentialDelay(0.2, 1.0), loss_probability=0.1,
    )
    for net in (fast, ref):
        net.run(150.0)
    assert_lockstep(fast, ref)


def test_lockstep_under_duplication():
    alg = SSRmin(5, 6)
    states = legitimate_initial_states(alg)

    def builder(use_fastpath):
        return build_cst_network(
            alg, states, initial_caches=coherent_caches(states, alg.n),
            duplicate_probability=0.2, loss_probability=0.1, seed=17,
            use_fastpath=use_fastpath,
        )

    fast, ref = _both(builder)
    for net in (fast, ref):
        net.run(150.0)
    assert_lockstep(fast, ref)
    assert fast.message_stats()["duplicated"] > 0


def test_lockstep_through_corruption_and_outage():
    fast, ref = _both(transformed, algorithm=SSRmin(5, 6), seed=9)
    for net in (fast, ref):
        net.run(30.0)
        net.corrupt_node(2, (3, 1, 1))
        net.corrupt_cache(1, 2, (0, 0, 1))
        net.fail_link(0, 1, 15.0)
        net.run(60.0)
    assert_lockstep(fast, ref)


def test_lockstep_token_observables_mid_run():
    fast, ref = _both(transformed_from_chaos, algorithm=SSRmin(5, 6), seed=23)
    for _ in range(10):
        for net in (fast, ref):
            net.run(7.0)
        assert fast.token_holders() == ref.token_holders()
        assert fast.true_token_holders() == ref.true_token_holders()


# ---------------------------------------------------------------------------
# golden traces replay under both engines
# ---------------------------------------------------------------------------

CORPUS = os.path.join(os.path.dirname(__file__), os.pardir, "corpus")


@pytest.mark.parametrize("enabled", [True, False])
def test_fig13_golden_replays_under_both_engines(enabled):
    from repro.experiments.golden import FIG13_FILE, fig13_timeline_records, read_jsonl

    frozen = read_jsonl(os.path.join(CORPUS, FIG13_FILE))
    with mp_fastpath_override(enabled):
        fresh = [json.loads(json.dumps(r, sort_keys=True))
                 for r in fig13_timeline_records()]
    assert fresh == frozen


# ---------------------------------------------------------------------------
# escape hatches and dispatch boundaries
# ---------------------------------------------------------------------------

def test_explicit_kwarg_beats_override():
    with mp_fastpath_override(False):
        assert mp_fastpath_enabled(True) is True
        net = transformed(SSRmin(4, 5), use_fastpath=True)
        assert isinstance(net, FastCSTNetwork)
    with mp_fastpath_override(True):
        assert mp_fastpath_enabled(False) is False
        net = transformed(SSRmin(4, 5), use_fastpath=False)
        assert not isinstance(net, FastCSTNetwork)


def test_override_beats_env_default():
    with mp_fastpath_override(False):
        assert mp_fastpath_enabled() is False
        assert resolve_mp_codec(SSRmin(4, 5)) is None
        assert not isinstance(transformed(SSRmin(4, 5)), FastCSTNetwork)
    # default environment in the test suite leaves the fastpath on
    assert isinstance(transformed(SSRmin(4, 5)), FastCSTNetwork)


def test_override_nests_and_restores():
    assert mp_fastpath_enabled() is True
    with mp_fastpath_override(False):
        with mp_fastpath_override(True):
            assert mp_fastpath_enabled() is True
        assert mp_fastpath_enabled() is False
    assert mp_fastpath_enabled() is True


def test_codecless_algorithm_keeps_reference_engine():
    from repro.algorithms.base import RingAlgorithm

    class Plain(DijkstraKState):
        def mp_codec(self):
            return RingAlgorithm.mp_codec(self)

    net = transformed(Plain(4, 5))
    assert not isinstance(net, FastCSTNetwork)


def test_custom_token_predicate_keeps_reference_engine():
    alg = SSRmin(4, 5)
    states = legitimate_initial_states(alg)
    net = build_cst_network(
        alg, states, token_predicate=lambda node: node.state[2] == 1,
    )
    assert not isinstance(net, FastCSTNetwork)


def test_unpackable_initial_state_falls_back():
    alg = SSRmin(4, 5)
    states = legitimate_initial_states(alg)
    states[1] = (99, 0, 0)  # outside the K-domain: reference handles it
    net = build_cst_network(alg, states, use_fastpath=True)
    assert not isinstance(net, FastCSTNetwork)


# ---------------------------------------------------------------------------
# projection: packed guard resolution equals the reference path
# ---------------------------------------------------------------------------

def test_projection_codec_agrees_with_reference_path():
    from repro.messagepassing.projection import SynchronousCSTProjection

    alg = SSRmin(5, 6)
    rng = random.Random(31)
    for _ in range(25):
        states = list(alg.random_configuration(rng))
        packed = SynchronousCSTProjection(alg, states)
        plain = SynchronousCSTProjection(alg, states)
        plain._codec = None
        # random channel-phase perturbations on both shadows
        for _ in range(3):
            op = rng.randrange(3)
            src = rng.randrange(alg.n)
            dst = (src + rng.choice((-1, 1))) % alg.n
            for proj in (packed, plain):
                if op == 0:
                    proj.deliver_stale(src, dst)
                elif op == 1:
                    proj.deliver_current(src, dst, copies=2)
                else:
                    proj.corrupt_cache(dst, src, states[(src + 1) % alg.n])
        assert packed.enabled() == plain.enabled()
        assert packed.own_view_holders() == plain.own_view_holders()
        for i in range(alg.n):
            assert packed.rule_name(i) == plain.rule_name(i)
        if packed.enabled():
            pick = [packed.enabled()[0]]
            packed.apply(pick)
            plain.apply(pick)
            assert packed.states() == plain.states()


# ---------------------------------------------------------------------------
# Monte-Carlo sweep engine
# ---------------------------------------------------------------------------

def test_sweep_rejects_unknown_algorithm():
    from repro.messagepassing.fastpath.sweep import run_loss_sweep

    with pytest.raises(ValueError, match="unknown algorithm"):
        run_loss_sweep("nope", workers=1)


def test_sweep_grid_order_and_engine_independence():
    from repro.messagepassing.fastpath.sweep import run_loss_sweep

    kwargs = dict(
        n_values=(4,), loss_rates=(0.0, 0.2), seeds=range(2),
        workers=1, gap_duration=20.0,
    )
    fast = run_loss_sweep("ssrmin", use_fastpath=True, **kwargs)
    ref = run_loss_sweep("ssrmin", use_fastpath=False, **kwargs)
    assert [(c.n, c.loss, c.seed) for c in fast] == [
        (4, 0.0, 0), (4, 0.0, 1), (4, 0.2, 0), (4, 0.2, 1),
    ]
    strip = lambda cells: [
        {k: v for k, v in c.to_json().items() if k != "wall_seconds"}
        for c in cells
    ]
    assert strip(fast) == strip(ref)


def test_sweep_streams_cells_into_telemetry_session():
    from repro.messagepassing.fastpath.sweep import run_loss_sweep
    from repro.telemetry import telemetry_session

    seen = []
    with telemetry_session() as session:
        session.subscribe(lambda ev: seen.append(ev))
        cells = run_loss_sweep(
            "ssrmin", n_values=(4,), loss_rates=(0.1,), seeds=range(2),
            workers=1, gap_duration=10.0,
        )
    sweep_events = [ev for ev in seen if ev.kind == "sweep_cell"]
    assert len(sweep_events) == len(cells) == 2
    assert {ev.payload["seed"] for ev in sweep_events} == {0, 1}
