"""Unit tests for cache coherence (Definition 2) and the tracker."""

import pytest

from repro.core.ssrmin import SSRmin
from repro.messagepassing.coherence import (
    CoherenceTracker,
    incoherent_entries,
    is_cache_coherent,
)
from repro.messagepassing.cst import transformed, transformed_from_chaos


class TestCoherencePredicate:
    def test_coherent_start(self):
        net = transformed(SSRmin(5, 6), seed=0)
        assert is_cache_coherent(net)
        assert incoherent_entries(net) == []

    def test_incoherent_after_corruption(self):
        net = transformed(SSRmin(5, 6), seed=0)
        net.start()
        net.corrupt_cache(0, 1, (5, 1, 1))
        assert not is_cache_coherent(net)
        assert (0, 1) in incoherent_entries(net)

    def test_incoherence_alternates_in_non_silent_execution(self):
        """The paper: non-silent algorithms alternate coherence and
        incoherence forever — both states occur along a run."""
        net = transformed(SSRmin(5, 6), seed=1)
        net.start()
        seen = set()
        for _ in range(200):
            net.run(0.5)
            seen.add(is_cache_coherent(net))
            if seen == {True, False}:
                break
        assert seen == {True, False}


class TestCoherenceTracker:
    def test_immediate_on_clean_start(self):
        net = transformed(SSRmin(5, 6), seed=2)
        tracker = CoherenceTracker(net)
        t = tracker.run_until_stabilized(max_time=100.0)
        assert t == pytest.approx(0.0, abs=1.0)

    def test_stabilizes_from_chaos(self):
        net = transformed_from_chaos(SSRmin(5, 6), seed=3)
        tracker = CoherenceTracker(net)
        t = tracker.run_until_stabilized(slice_duration=5.0, max_time=20_000)
        assert t >= 0.0
        assert tracker.stabilized_at == t

    def test_stabilizes_despite_loss(self):
        net = transformed_from_chaos(SSRmin(5, 6), seed=4,
                                     loss_probability=0.25)
        tracker = CoherenceTracker(net)
        t = tracker.run_until_stabilized(slice_duration=5.0, max_time=20_000)
        assert t >= 0.0

    def test_event_driven_detection(self):
        """The tracker hooks network observations, so fleeting coherent
        instants between polls are caught."""
        net = transformed_from_chaos(SSRmin(5, 6), seed=5)
        tracker = CoherenceTracker(net)
        net.start()
        # Run in large slices; only the observer hook can catch the instant.
        for _ in range(400):
            net.run(25.0)
            if tracker.stabilized_at is not None:
                break
        assert tracker.stabilized_at is not None
