"""Unit tests for message-level tracing."""

import pytest

from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.trace import (
    MessageTrace,
    render_sequence_diagram,
)


def traced_network(seed=0, loss=0.0):
    alg = SSRmin(5, 6)
    net = transformed(alg, seed=seed, loss_probability=loss,
                      delay_model=UniformDelay(0.5, 1.5))
    trace = MessageTrace().attach(net)
    return net, trace


class TestRecording:
    def test_sends_and_deliveries_recorded(self):
        net, trace = traced_network()
        net.run(30.0)
        assert trace.of_kind("send")
        assert trace.of_kind("deliver")
        assert len(trace.of_kind("deliver")) <= len(trace.of_kind("send"))

    def test_counts_match_link_statistics(self):
        net, trace = traced_network(seed=1)
        net.run(50.0)
        stats = net.message_stats()
        assert len(trace.of_kind("send")) == stats["sent"]
        assert len(trace.of_kind("deliver")) == stats["delivered"]

    def test_losses_recorded(self):
        net, trace = traced_network(seed=2, loss=0.3)
        net.run(60.0)
        stats = net.message_stats()
        assert len(trace.of_kind("loss")) == stats["lost"]
        assert stats["lost"] > 0

    def test_timers_recorded(self):
        net, trace = traced_network(seed=3)
        net.run(30.0)
        assert trace.of_kind("timer")

    def test_events_time_ordered(self):
        net, trace = traced_network(seed=4)
        net.run(40.0)
        times = [e.time for e in trace.events]
        assert times == sorted(times)


class TestTransitAnalysis:
    def test_transit_times_within_delay_model(self):
        net, trace = traced_network(seed=5)
        net.run(60.0)
        transits = trace.transit_times()
        assert transits
        assert all(0.5 - 1e-9 <= t <= 1.5 + 1e-9 for t in transits)

    def test_per_direction_fifo(self):
        net, trace = traced_network(seed=6)
        net.run(60.0)
        assert trace.per_direction_fifo()


class TestSequenceDiagram:
    def test_renders_window(self):
        net, trace = traced_network(seed=7)
        net.run(20.0)
        text = render_sequence_diagram(trace, 5, t_start=0.0, t_end=10.0)
        lines = text.splitlines()
        assert lines[0].strip().startswith("time")
        assert "v0" in lines[0] and "v4" in lines[0]
        assert any(">" in l for l in lines[1:])

    def test_loss_marker(self):
        net, trace = traced_network(seed=8, loss=0.5)
        net.run(40.0)
        text = render_sequence_diagram(trace, 5, t_start=0.0, t_end=40.0,
                                       max_rows=200)
        assert "x" in text

    def test_rejects_bad_window(self):
        net, trace = traced_network(seed=9)
        net.run(5.0)
        with pytest.raises(ValueError):
            render_sequence_diagram(trace, 5, t_start=5.0, t_end=5.0)

    def test_row_cap(self):
        net, trace = traced_network(seed=10)
        net.run(60.0)
        text = render_sequence_diagram(trace, 5, t_start=0.0, t_end=60.0,
                                       max_rows=5)
        arrow_rows = [l for l in text.splitlines()[1:] if ">" in l or "x" in l]
        assert len(arrow_rows) <= 5
