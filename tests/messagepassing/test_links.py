"""Unit tests for links: delay, loss, capacity-one, coalescing."""

import random

import pytest

from repro.messagepassing.des import EventQueue
from repro.messagepassing.links import (
    ExponentialDelay,
    FixedDelay,
    Link,
    UniformDelay,
)


class TestDelayModels:
    def test_fixed(self):
        assert FixedDelay(2.5).sample(random.Random(0)) == 2.5

    def test_fixed_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedDelay(0.0)

    def test_uniform_in_range(self):
        m = UniformDelay(0.5, 1.5)
        rng = random.Random(1)
        for _ in range(100):
            assert 0.5 <= m.sample(rng) <= 1.5

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformDelay(2.0, 1.0)
        with pytest.raises(ValueError):
            UniformDelay(0.0, 1.0)

    def test_exponential_positive(self):
        m = ExponentialDelay(1.0)
        rng = random.Random(2)
        assert all(m.sample(rng) > 0 for _ in range(100))

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            ExponentialDelay(0.0)


def make_link(queue, inbox, loss=0.0, delay=1.0, seed=0):
    return Link(
        queue=queue,
        deliver=inbox.append,
        delay_model=FixedDelay(delay),
        loss_probability=loss,
        rng=random.Random(seed),
    )


class TestLink:
    def test_delivers_after_delay(self):
        q = EventQueue()
        inbox = []
        link = make_link(q, inbox, delay=2.0)
        link.send("m1")
        q.run_until(1.0)
        assert inbox == []
        q.run_until(2.0)
        assert inbox == ["m1"]

    def test_capacity_one_coalesces_newest(self):
        q = EventQueue()
        inbox = []
        link = make_link(q, inbox, delay=1.0)
        link.send("old")
        link.send("newer")
        link.send("newest")  # supersedes "newer" while in flight
        q.run_until(10.0)
        assert inbox == ["old", "newest"]
        assert link.coalesced == 1

    def test_busy_flag_lifecycle(self):
        q = EventQueue()
        link = make_link(q, [], delay=1.0)
        assert not link.busy
        link.send("m")
        assert link.busy
        q.run_until(1.0)
        assert not link.busy

    def test_loss_drops_but_occupies_link(self):
        q = EventQueue()
        inbox = []
        link = Link(
            queue=q,
            deliver=inbox.append,
            delay_model=FixedDelay(1.0),
            loss_probability=0.999999,
            rng=random.Random(0),
        )
        link.send("m")
        assert link.busy
        q.run_until(5.0)
        assert inbox == [] and link.lost == 1

    def test_loss_rate_statistics(self):
        q = EventQueue()
        inbox = []
        link = Link(
            queue=q,
            deliver=inbox.append,
            delay_model=FixedDelay(0.1),
            loss_probability=0.3,
            rng=random.Random(7),
        )
        for k in range(500):
            link.send(k)
            q.run_until(q.now + 0.2)
        assert link.sent == 500
        assert 0.2 < link.lost / link.sent < 0.4

    def test_rejects_invalid_loss(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            Link(q, lambda m: None, FixedDelay(1.0), loss_probability=1.0)

    def test_stats_counters(self):
        q = EventQueue()
        inbox = []
        link = make_link(q, inbox)
        link.send("a")
        q.run_until(10.0)
        assert (link.sent, link.delivered, link.lost) == (1, 1, 0)
