"""Unit tests for the CST convenience builders."""

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.messagepassing.coherence import is_cache_coherent
from repro.messagepassing.cst import (
    coherent_caches,
    legitimate_initial_states,
    transformed,
    transformed_from_chaos,
)


class TestLegitimateInitialStates:
    def test_ssrmin(self):
        alg = SSRmin(5, 6)
        states = legitimate_initial_states(alg)
        assert len(states) == 5
        assert alg.is_legitimate(alg.normalize_configuration(states))

    def test_dijkstra(self):
        alg = DijkstraKState(4, 5)
        states = legitimate_initial_states(alg)
        assert alg.is_legitimate(tuple(states))


class TestTransformed:
    def test_starts_coherent_and_legitimate(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=0)
        assert is_cache_coherent(net)
        cfg = alg.normalize_configuration(net.true_configuration())
        assert alg.is_legitimate(cfg)

    def test_explicit_initial_states(self):
        alg = SSRmin(5, 6)
        states = list(alg.initial_configuration(2))
        net = transformed(alg, initial_states=states, seed=0)
        assert net.true_configuration() == tuple(states)


class TestTransformedFromChaos:
    def test_random_states_and_caches(self):
        alg = SSRmin(5, 6)
        net = transformed_from_chaos(alg, seed=1)
        # With overwhelming probability the chaos start is incoherent.
        assert not is_cache_coherent(net)

    def test_deterministic_under_seed(self):
        a = transformed_from_chaos(SSRmin(5, 6), seed=2)
        b = transformed_from_chaos(SSRmin(5, 6), seed=2)
        assert a.true_configuration() == b.true_configuration()
        assert [n.cache for n in a.nodes] == [n.cache for n in b.nodes]

    def test_different_seeds_differ(self):
        a = transformed_from_chaos(SSRmin(5, 6), seed=3)
        b = transformed_from_chaos(SSRmin(5, 6), seed=4)
        assert (
            a.true_configuration() != b.true_configuration()
            or [n.cache for n in a.nodes] != [n.cache for n in b.nodes]
        )
