"""Unit tests for the shared wireless medium."""

import random

import pytest

from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import coherent_caches, legitimate_initial_states
from repro.messagepassing.des import EventQueue
from repro.messagepassing.links import FixedDelay
from repro.messagepassing.wireless import (
    Transmission,
    TransmitterAdapter,
    WirelessMedium,
    build_wireless_network,
)


def make_medium(n=5, airtime=1.0):
    queue = EventQueue()
    medium = WirelessMedium(queue, n, FixedDelay(airtime), random.Random(0))
    inbox = []
    medium.deliver = lambda r, s, p: inbox.append((r, s, p))
    return queue, medium, inbox


class TestMediumDelivery:
    def test_lone_transmission_reaches_both_neighbours(self):
        queue, medium, inbox = make_medium()
        medium.transmit(2, "hello")
        queue.run_until(2.0)
        assert sorted(inbox) == [(1, 2, "hello"), (3, 2, "hello")]
        assert medium.deliveries == 2
        assert medium.collisions == 0

    def test_overlapping_neighbours_collide(self):
        """Two adjacent senders overlapping in time jam each other's
        receivers (every receiver hears both)."""
        queue, medium, inbox = make_medium()
        medium.transmit(1, "a")
        medium.transmit(2, "b")
        queue.run_until(5.0)
        # Receivers 0,2 (of tx-1) and 1,3 (of tx-2): 1<->2 jam each other,
        # and 0/3 hear only one transmission... 0 hears sender 1 only, but
        # is node 1's transmission jammed at 0? Jammers at 0 are senders in
        # {0, 1, 4}: only tx-1 itself -> delivered. At 2: senders {1,2,3}
        # include tx-2 -> jammed. Symmetrically for tx-2.
        assert (0, 1, "a") in inbox
        assert (3, 2, "b") in inbox
        assert (2, 1, "a") not in inbox
        assert (1, 2, "b") not in inbox
        assert medium.collisions == 2

    def test_distant_transmissions_do_not_collide(self):
        queue, medium, inbox = make_medium(n=7)
        medium.transmit(0, "x")
        medium.transmit(3, "y")  # receivers 2,4; jammer sets exclude 0
        queue.run_until(5.0)
        assert len(inbox) == 4
        assert medium.collisions == 0

    def test_sequential_transmissions_do_not_collide(self):
        queue, medium, inbox = make_medium()
        medium.transmit(1, "a")
        queue.run_until(1.5)  # first is off the air
        medium.transmit(2, "b")
        queue.run_until(5.0)
        assert len(inbox) == 4
        assert medium.collisions == 0

    def test_half_duplex_receiver_transmitting_is_jammed(self):
        queue, medium, inbox = make_medium()
        medium.transmit(1, "a")
        medium.transmit(2, "b")  # node 2 is on air while 1's tx lands
        queue.run_until(5.0)
        assert (2, 1, "a") not in inbox


class TestTransmitterAdapter:
    def test_busy_radio_coalesces(self):
        queue, medium, inbox = make_medium()
        radio = TransmitterAdapter(medium, sender=2)
        radio.send("old")
        radio.send("mid")
        radio.send("new")
        queue.run_until(10.0)
        payloads = [p for (_, _, p) in inbox]
        assert "old" in payloads and "new" in payloads
        assert "mid" not in payloads
        assert radio.coalesced == 1

    def test_sent_counts_transmissions(self):
        queue, medium, _ = make_medium()
        radio = TransmitterAdapter(medium, sender=0)
        radio.send("a")
        queue.run_until(5.0)
        radio.send("b")
        queue.run_until(10.0)
        assert radio.sent == 2
        assert medium.transmissions == 2


class TestWirelessNetwork:
    def build(self, seed=0, n=5):
        alg = SSRmin(n, n + 1)
        states = legitimate_initial_states(alg)
        return alg, build_wireless_network(
            alg, states, seed=seed,
            initial_caches=coherent_caches(list(states), n),
        )

    def test_rejects_wrong_state_count(self):
        alg = SSRmin(5, 6)
        with pytest.raises(ValueError):
            build_wireless_network(alg, [(0, 0, 0)] * 3)

    def test_collisions_happen_but_coverage_near_total(self):
        """Collisions are loss, so Theorem 3's hypothesis does not hold
        verbatim; the honest claim is the Theorem-4 one: overwhelmingly
        covered service with bounded holders and continual recovery."""
        alg, net = self.build(seed=1)
        net.run(300.0)
        net.timeline.finish(net.queue.now)
        stats = net.message_stats()
        assert stats["lost"] > 0  # the medium is genuinely contended
        assert net.timeline.coverage_fraction() >= 0.9
        _, hi = net.timeline.count_bounds()
        assert hi <= 2

    def test_token_circulates_over_radio(self):
        alg, net = self.build(seed=2)
        net.run(400.0)
        served = {h for pt in net.timeline.points for h in pt.holders}
        assert served == set(range(5))

    def test_broadcast_economy(self):
        """One transmission serves both neighbours: the radio sends fewer
        messages than the wired network for the same duration."""
        from repro.messagepassing.cst import transformed

        alg, net = self.build(seed=3)
        net.run(200.0)
        wired = transformed(SSRmin(5, 6), seed=3)
        wired.run(200.0)
        assert net.message_stats()["sent"] < wired.message_stats()["sent"]

    def test_fail_link_not_supported(self):
        alg, net = self.build(seed=4)
        net.start()
        with pytest.raises(NotImplementedError):
            net.fail_link(0, 1, 5.0)

    def test_node_fault_recovery_over_radio(self):
        """Theorem 4's regime on the wireless substrate."""
        from repro.messagepassing.coherence import CoherenceTracker

        alg, net = self.build(seed=5)
        net.run(50.0)
        net.corrupt_node(2, (0, 1, 1))
        net.corrupt_cache(3, 2, (5, 1, 1))
        tracker = CoherenceTracker(net)
        t = tracker.run_until_stabilized(slice_duration=5.0, max_time=50_000.0)
        assert t >= 50.0
