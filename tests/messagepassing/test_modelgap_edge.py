"""Edge-case tests for model-gap evaluation semantics."""

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.modelgap import GapReport, evaluate_gap


class TestGapReportSemantics:
    def test_tolerant_iff_zero_time_zero(self):
        for seed, alg in ((0, SSRmin(5, 6)), (1, DijkstraKState(5, 6))):
            net = transformed(alg, seed=seed,
                              delay_model=UniformDelay(0.5, 1.5))
            rep = evaluate_gap(net, duration=100.0)
            assert rep.tolerant == (rep.zero_time == 0.0)

    def test_zero_time_equals_interval_sum(self):
        net = transformed(DijkstraKState(5, 6), seed=2)
        rep = evaluate_gap(net, duration=100.0)
        assert rep.zero_time == pytest.approx(
            sum(b - a for a, b in rep.zero_intervals)
        )

    def test_counts_bound_interval_counts(self):
        net = transformed(SSRmin(5, 6), seed=3)
        rep = evaluate_gap(net, duration=80.0)
        assert rep.min_count <= rep.max_count

    def test_sampling_produces_requested_cadence(self):
        net = transformed(SSRmin(5, 6), seed=4)
        rep = evaluate_gap(net, duration=30.0, sample_observations=True,
                           sample_every=3.0)
        assert len(rep.observations) == 10
        times = [o.time for o in rep.observations]
        assert times == sorted(times)

    def test_observations_empty_without_sampling(self):
        net = transformed(SSRmin(5, 6), seed=5)
        rep = evaluate_gap(net, duration=20.0)
        assert rep.observations == []

    def test_runs_on_prestarted_network(self):
        net = transformed(SSRmin(5, 6), seed=6)
        net.start()
        net.run(10.0)
        rep = evaluate_gap(net, duration=50.0)
        assert rep.duration == 50.0


class TestCrossAlgorithmContrast:
    def test_ssrmin_strictly_dominates_sstoken_coverage(self):
        """The headline comparison, as a single number: SSRmin's coverage
        is strictly higher than transformed SSToken's for matched setups."""
        results = {}
        for name, alg in (("ssrmin", SSRmin(5, 6)),
                          ("sstoken", DijkstraKState(5, 6))):
            net = transformed(alg, seed=7, delay_model=UniformDelay(0.5, 1.5))
            net.run(200.0)
            net.timeline.finish(net.queue.now)
            results[name] = net.timeline.coverage_fraction()
        assert results["ssrmin"] == 1.0
        assert results["sstoken"] < 0.7
