"""Unit tests for model-gap evaluation (Definition 3, Theorem 3)."""

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.modelgap import (
    GapObservation,
    definition3_holds,
    evaluate_gap,
)


class TestGapObservation:
    def test_aggregate_matches_both_nonempty(self):
        o = GapObservation(0.0, (1,), (2,))
        assert o.aggregate_matches  # both say "a token exists"

    def test_aggregate_mismatch(self):
        o = GapObservation(0.0, (), (2,))
        assert not o.aggregate_matches

    def test_definition3_holds(self):
        obs = [GapObservation(0.0, (1,), (1,)), GapObservation(1.0, (2,), (2,))]
        assert definition3_holds(obs)
        obs.append(GapObservation(2.0, (), (1,)))
        assert not definition3_holds(obs)


class TestEvaluateGap:
    def test_ssrmin_tolerant(self):
        net = transformed(SSRmin(5, 6), seed=0,
                          delay_model=UniformDelay(0.5, 1.5))
        rep = evaluate_gap(net, duration=120.0)
        assert rep.tolerant
        assert rep.zero_time == 0.0
        assert rep.min_count >= 1 and rep.max_count <= 2

    def test_sstoken_not_tolerant(self):
        net = transformed(DijkstraKState(5, 6), seed=1,
                          delay_model=UniformDelay(0.5, 1.5))
        rep = evaluate_gap(net, duration=120.0)
        assert not rep.tolerant
        assert rep.zero_time > 0.0
        assert rep.min_count == 0

    def test_sampled_observations_collected(self):
        net = transformed(SSRmin(5, 6), seed=2)
        rep = evaluate_gap(net, duration=20.0, sample_observations=True,
                           sample_every=2.0)
        assert len(rep.observations) == 10
        assert definition3_holds(rep.observations)

    def test_warmup_excludes_initial_interval(self):
        net = transformed(DijkstraKState(5, 6), seed=3)
        full = evaluate_gap(net, duration=100.0)
        assert full.zero_time > 0
        # A second evaluation with warmup larger than the covered span
        # would be an error case; instead verify warmup reduces zero_time.
        net2 = transformed(DijkstraKState(5, 6), seed=3)
        part = evaluate_gap(net2, duration=100.0, warmup=50.0)
        assert part.zero_time <= full.zero_time

    def test_report_fields_consistent(self):
        net = transformed(SSRmin(5, 6), seed=4)
        rep = evaluate_gap(net, duration=50.0)
        assert rep.duration == 50.0
        assert rep.tolerant == (rep.zero_time == 0.0)
        assert len(rep.zero_intervals) == 0
