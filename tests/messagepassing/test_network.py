"""Unit tests for the CST network wiring and run loop."""

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import (
    coherent_caches,
    legitimate_initial_states,
    transformed,
)
from repro.messagepassing.links import FixedDelay, UniformDelay
from repro.messagepassing.network import build_cst_network


class TestBuild:
    def test_rejects_wrong_state_count(self):
        alg = SSRmin(5, 6)
        with pytest.raises(ValueError):
            build_cst_network(alg, [(0, 0, 0)] * 4)

    def test_nodes_and_links_wired(self):
        alg = SSRmin(5, 6)
        net = build_cst_network(alg, legitimate_initial_states(alg))
        assert len(net.nodes) == 5
        for i, node in enumerate(net.nodes):
            assert set(node.links) == {(i - 1) % 5, (i + 1) % 5}

    def test_coherent_caches_helper(self):
        states = [10, 20, 30]
        caches = coherent_caches(states, 3)
        assert caches[0] == {2: 30, 1: 20}
        assert caches[1] == {0: 10, 2: 30}

    def test_legitimate_initial_states(self):
        alg = SSRmin(5, 6)
        states = legitimate_initial_states(alg)
        assert alg.is_legitimate(alg.normalize_configuration(states))


class TestRun:
    def test_start_only_once(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=0)
        net.start()
        with pytest.raises(RuntimeError):
            net.start()

    def test_run_advances_clock(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=0)
        net.run(25.0)
        assert net.queue.now >= 25.0

    def test_token_circulates_across_nodes(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=1)
        holders_seen = set()
        net.start()
        for _ in range(40):
            net.run(5.0)
            holders_seen.update(net.token_holders())
        assert holders_seen == set(range(5))

    def test_true_vs_cached_holders_differ_for_sstoken(self):
        """The model gap is real: during transit the receiver's cached view
        lags its true state, so SSToken's cached holder set goes empty while
        the true-state evaluation already moved the token."""
        alg = DijkstraKState(5, 6)
        net = transformed(alg, seed=2)
        differences = []
        # Check at every state/cache change via the observer hook, so the
        # fleeting transient periods cannot be missed.
        net.observers.append(
            lambda n: differences.append(
                set(n.token_holders()) != set(n.true_token_holders())
            )
        )
        net.run(100.0)
        assert any(differences)

    def test_ssrmin_holder_sets_coincide_from_legitimate_start(self):
        """Stronger than Theorem 3: along legitimate executions SSRmin's
        cached-view holder set *equals* the true-state holder set at every
        observation — individual predicate evaluations differ transiently,
        but only ever at nodes already covered by their other token."""
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=2)
        mismatches = []
        net.observers.append(
            lambda n: mismatches.append(
                set(n.token_holders()) != set(n.true_token_holders())
            )
        )
        net.run(100.0)
        assert not any(mismatches)

    def test_message_stats_accumulate(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=3)
        net.run(50.0)
        stats = net.message_stats()
        assert stats["sent"] > 0
        assert stats["delivered"] <= stats["sent"]
        assert stats["lost"] == 0  # no loss configured

    def test_loss_appears_in_stats(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=4, loss_probability=0.3)
        net.run(100.0)
        assert net.message_stats()["lost"] > 0

    def test_deterministic_under_seed(self):
        alg = SSRmin(5, 6)
        a = transformed(alg, seed=5, delay_model=UniformDelay(0.5, 1.5))
        b = transformed(alg, seed=5, delay_model=UniformDelay(0.5, 1.5))
        a.run(60.0)
        b.run(60.0)
        assert a.timeline.points == b.timeline.points

    def test_timer_keeps_system_alive_with_dwell(self):
        """Even a quiet network makes progress via periodic timers."""
        alg = DijkstraKState(5, 6)
        net = transformed(alg, seed=6, timer_interval=2.0)
        net.run(100.0)
        assert sum(n.rules_executed for n in net.nodes) > 0


class TestFaultHooks:
    def test_corrupt_node_changes_state(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=7)
        net.start()
        net.corrupt_node(2, (0, 1, 1))
        assert net.nodes[2].state == (0, 1, 1)

    def test_corrupt_cache_validates_neighbour(self):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=8)
        net.start()
        with pytest.raises(ValueError):
            net.corrupt_cache(0, 2, (0, 0, 0))
        net.corrupt_cache(0, 1, (0, 1, 1))
        assert net.nodes[0].cache[1] == (0, 1, 1)
