"""Unit tests for link outages (partition faults)."""

import pytest

from repro.core.ssrmin import SSRmin
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.messagepassing.modelgap import evaluate_gap


class TestFailLink:
    def make(self, seed=0):
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=seed, delay_model=UniformDelay(0.5, 1.5),
                          timer_interval=3.0)
        net.start()
        return alg, net

    def test_rejects_bad_duration(self):
        _, net = self.make()
        with pytest.raises(ValueError):
            net.fail_link(0, 1, 0.0)

    def test_rejects_non_edge(self):
        _, net = self.make()
        with pytest.raises(ValueError):
            net.fail_link(0, 2, 5.0)

    def test_messages_lost_during_outage(self):
        _, net = self.make(seed=1)
        before = net.message_stats()["lost"]
        net.fail_link(0, 1, 20.0)
        net.run(15.0)
        assert net.message_stats()["lost"] > before

    def test_losses_stop_after_outage(self):
        _, net = self.make(seed=2)
        net.fail_link(0, 1, 10.0)
        net.run(15.0)
        lost_at_heal = net.message_stats()["lost"]
        net.run(60.0)
        # New losses after the heal point should be zero (no loss prob).
        assert net.message_stats()["lost"] == lost_at_heal

    def test_zero_coverage_confined_to_outage_and_recovery(self):
        """An outage is a *fault*: it creates bad cache incoherence (a node
        can fire R2 on a stale view of its partitioned successor and drop
        both tokens), so Theorem 3's no-extinction guarantee is suspended —
        but only inside the outage + recovery window.  Before the fault and
        after re-stabilization, coverage is total (Theorem 4)."""
        alg, net = self.make(seed=3)
        net.run(20.0)  # healthy circulation first
        heal_at = net.queue.now + 30.0
        net.fail_link(2, 3, 30.0)
        net.run(130.0)  # outage + recovery
        net.timeline.finish(net.queue.now)
        for a, b in net.timeline.zero_intervals():
            assert a >= 20.0, "extinction before the fault"
            assert b <= heal_at + 60.0, "extinction long after recovery"
        # Fully covered again over the final stretch.
        assert net.timeline.coverage_fraction(from_time=heal_at + 60.0) == 1.0

    def test_circulation_resumes_after_heal(self):
        alg, net = self.make(seed=4)
        net.run(20.0)
        net.fail_link(1, 2, 25.0)
        net.run(25.0)
        changes_at_heal = net.timeline.holder_changes()
        heal_time = net.queue.now
        net.run(120.0)
        # The token pair moves again: new holder changes accumulate.
        assert net.timeline.holder_changes() > changes_at_heal + 5
        # And the full ring is served again after healing.
        served = {
            h
            for pt in net.timeline.points
            if pt.time > heal_time + 30.0
            for h in pt.holders
        }
        assert served == set(range(5))

    def test_bounds_restored_after_outage(self):
        alg, net = self.make(seed=5)
        net.run(20.0)
        net.fail_link(0, 4, 30.0)
        net.run(150.0)
        net.timeline.finish(net.queue.now)
        lo, hi = net.timeline.count_bounds(from_time=110.0)
        assert lo >= 1
        assert hi <= 2
