"""Unit tests for the discrete-event core."""

import pytest

from repro.messagepassing.des import Event, EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.schedule(2.0, lambda: order.append("b"))
        q.schedule(1.0, lambda: order.append("a"))
        q.schedule(3.0, lambda: order.append("c"))
        q.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_tie_break_by_insertion(self):
        q = EventQueue()
        order = []
        q.schedule(1.0, lambda: order.append(1))
        q.schedule(1.0, lambda: order.append(2))
        q.run_until(10.0)
        assert order == [1, 2]

    def test_clock_advances(self):
        q = EventQueue()
        times = []
        q.schedule(1.5, lambda: times.append(q.now))
        q.schedule(4.0, lambda: times.append(q.now))
        q.run_until(10.0)
        assert times == [1.5, 4.0]
        assert q.now == 10.0

    def test_run_until_stops_at_boundary(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(5.0, lambda: fired.append(5))
        n = q.run_until(2.0)
        assert n == 1 and fired == [1]
        assert not q.empty()

    def test_events_can_schedule_events(self):
        q = EventQueue()
        fired = []

        def cascade():
            fired.append(q.now)
            if q.now < 5:
                q.schedule(1.0, cascade)

        q.schedule(1.0, cascade)
        q.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        q = EventQueue()
        q.schedule(2.0, lambda: None)
        q.run_until(2.0)
        with pytest.raises(ValueError):
            q.schedule_at(1.0, lambda: None)

    def test_max_events_guard(self):
        q = EventQueue()

        def loop():
            q.schedule(0.001, loop)

        q.schedule(0.001, loop)
        with pytest.raises(RuntimeError):
            q.run_until(100.0, max_events=50)

    def test_step_returns_event(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None, label="x")
        ev = q.step()
        assert isinstance(ev, Event) and ev.label == "x"
        assert q.step() is None

    def test_executed_counter(self):
        q = EventQueue()
        for d in (1.0, 2.0, 3.0):
            q.schedule(d, lambda: None)
        q.run_until(10.0)
        assert q.executed == 3
