"""Tests for the vectorized batch simulator, incl. scalar equivalence."""

import random

import numpy as np
import pytest

from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import SynchronousDaemon
from repro.simulation.batch import BatchSSRmin, batch_convergence_steps
from repro.simulation.engine import SharedMemorySimulator


class TestConstruction:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BatchSSRmin(2, 4)
        with pytest.raises(ValueError):
            BatchSSRmin(5, 5)
        with pytest.raises(ValueError):
            BatchSSRmin(5, 6, p=0.0)
        with pytest.raises(ValueError):
            BatchSSRmin(5, 6, trials=0)

    def test_set_and_read_configurations(self):
        alg = SSRmin(5, 6)
        batch = BatchSSRmin(5, 6, trials=2)
        c0 = alg.initial_configuration(3)
        c1 = alg.initial_configuration(0)
        batch.set_configurations([c0, c1])
        assert batch.configuration(0).states == c0.states
        assert batch.configuration(1).states == c1.states


class TestLegitimacyEquivalence:
    def test_matches_scalar_checker_on_random_configs(self):
        alg = SSRmin(5, 6)
        rng = random.Random(0)
        configs = [alg.random_configuration(rng) for _ in range(500)]
        batch = BatchSSRmin(5, 6, trials=500)
        batch.set_configurations(configs)
        mask = batch.legitimate_mask()
        for t, config in enumerate(configs):
            assert bool(mask[t]) == alg.is_legitimate(config), config

    def test_matches_scalar_on_all_legitimate(self):
        from repro.simulation.initial import all_legitimate

        alg = SSRmin(4, 5)
        configs = all_legitimate(alg)
        batch = BatchSSRmin(4, 5, trials=len(configs))
        batch.set_configurations(configs)
        assert batch.legitimate_mask().all()

    def test_matches_scalar_exhaustively_small_instance(self):
        alg = SSRmin(3, 4)
        configs = list(alg.configuration_space())
        batch = BatchSSRmin(3, 4, trials=len(configs))
        batch.set_configurations(configs)
        mask = batch.legitimate_mask()
        for t, config in enumerate(configs):
            assert bool(mask[t]) == alg.is_legitimate(config)


class TestStepEquivalence:
    def test_synchronous_step_matches_scalar_engine(self):
        """p=1 batch stepping must replicate SynchronousDaemon exactly."""
        alg = SSRmin(5, 6)
        rng = random.Random(7)
        for trial in range(10):
            init = alg.random_configuration(rng)
            sim = SharedMemorySimulator(alg, SynchronousDaemon())
            scalar = sim.run(init, max_steps=30)

            batch = BatchSSRmin(5, 6, trials=1, p=1.0, seed=trial)
            batch.set_configurations([init])
            for expected in scalar.execution.configurations[1:]:
                batch.step()
                assert batch.configuration(0).states == expected.states

    def test_enabled_counts_match_scalar(self):
        alg = SSRmin(6, 7)
        rng = random.Random(3)
        configs = [alg.random_configuration(rng) for _ in range(200)]
        batch = BatchSSRmin(6, 7, trials=200)
        batch.set_configurations(configs)
        counts = batch.enabled_counts()
        for t, config in enumerate(configs):
            assert counts[t] == len(alg.enabled_processes(config))


class TestConvergence:
    def test_all_trials_converge(self):
        steps = batch_convergence_steps(n=6, trials=200, seed=0)
        assert steps.shape == (200,)
        assert (steps >= 0).all()
        assert steps.max() <= 60 * 36 + 600

    def test_deterministic_under_seed(self):
        a = batch_convergence_steps(n=5, trials=50, seed=4)
        b = batch_convergence_steps(n=5, trials=50, seed=4)
        assert np.array_equal(a, b)

    def test_converged_trials_frozen(self):
        """Once legitimate, a trial must not be stepped further (its steps
        value is final and its configuration stays legitimate)."""
        batch = BatchSSRmin(5, 6, trials=100, p=0.5, seed=1)
        batch.randomize(seed=2)
        result = batch.run_until_legitimate(10_000)
        assert result.all_converged
        assert batch.legitimate_mask().all()

    def test_budget_exhaustion_reported(self):
        with pytest.raises(RuntimeError):
            batch_convergence_steps(n=8, trials=50, seed=0, max_steps=1)

    def test_distribution_comparable_to_scalar(self):
        """Batch and scalar engines sample the same process; their mean
        convergence steps should agree within sampling noise."""
        from repro.daemons.distributed import BernoulliDaemon
        from repro.simulation.convergence import convergence_steps

        n = 5
        batch_steps = batch_convergence_steps(n=n, trials=400, p=0.5, seed=0)
        scalar_steps = convergence_steps(
            algorithm_factory=lambda: SSRmin(n, n + 1),
            daemon_factory=lambda alg, s: BernoulliDaemon(0.5, seed=s),
            trials=60,
            seed=0,
        )
        assert abs(batch_steps.mean() - np.mean(scalar_steps)) < 6.0


class TestPrivilegedCounts:
    def test_matches_scalar_on_random_configs(self):
        alg = SSRmin(6, 7)
        rng = random.Random(11)
        configs = [alg.random_configuration(rng) for _ in range(300)]
        batch = BatchSSRmin(6, 7, trials=300)
        batch.set_configurations(configs)
        counts = batch.privileged_counts()
        for t, config in enumerate(configs):
            assert counts[t] == len(alg.privileged(config)), config

    def test_theorem1_band_after_convergence(self):
        """Vectorized Theorem 1: once legitimate, 1 <= privileged <= 2 for
        every trial through continued stepping."""
        batch = BatchSSRmin(6, 7, trials=200, p=0.5, seed=5)
        batch.randomize(seed=6)
        result = batch.run_until_legitimate(60 * 36 + 600)
        assert result.all_converged
        for _ in range(100):
            counts = batch.privileged_counts()
            assert (counts >= 1).all() and (counts <= 2).all()
            batch.step()
