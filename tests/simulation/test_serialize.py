"""Unit tests for execution serialization and replay round-trips."""

import io
import json
import random

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon
from repro.daemons.replay import ReplayDaemon
from repro.simulation.engine import SharedMemorySimulator
from repro.simulation.serialize import (
    execution_from_dict,
    execution_to_dict,
    load_execution,
    save_execution,
)


def record_ssrmin(seed=0, steps=25):
    alg = SSRmin(5, 6)
    init = alg.random_configuration(random.Random(seed))
    sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=seed))
    return alg, sim.run(init, max_steps=steps).execution


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self):
        alg, execution = record_ssrmin()
        data = execution_to_dict(execution, algorithm_name="SSRmin",
                                 parameters={"n": 5, "K": 6},
                                 configuration_class="Configuration")
        restored, meta = execution_from_dict(data)
        assert meta["algorithm"] == "SSRmin"
        assert meta["parameters"] == {"n": 5, "K": 6}
        assert len(restored) == len(execution)
        for a, b in zip(restored.configurations, execution.configurations):
            assert a.states == b.states
        assert restored.selections() == execution.selections()
        assert restored.rule_counts() == execution.rule_counts()

    def test_json_serializable(self):
        _, execution = record_ssrmin(seed=1)
        data = execution_to_dict(execution, configuration_class="Configuration")
        json.dumps(data)  # must not raise

    def test_file_roundtrip(self, tmp_path):
        alg, execution = record_ssrmin(seed=2)
        path = tmp_path / "run.json"
        save_execution(execution, str(path), algorithm_name="SSRmin",
                       parameters={"n": 5, "K": 6},
                       configuration_class="Configuration")
        restored, meta = load_execution(str(path))
        assert restored.selections() == execution.selections()

    def test_stream_roundtrip(self):
        _, execution = record_ssrmin(seed=3)
        buf = io.StringIO()
        save_execution(execution, buf, configuration_class="Configuration")
        buf.seek(0)
        restored, _ = load_execution(buf)
        assert len(restored) == len(execution)

    def test_tuple_configurations(self):
        alg = DijkstraKState(4, 5)
        init = alg.random_configuration(random.Random(4))
        sim = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=4))
        execution = sim.run(init, max_steps=15).execution
        data = execution_to_dict(execution)  # default: plain tuples
        restored, _ = execution_from_dict(data)
        assert restored.configurations == list(execution.configurations)


class TestValidation:
    def test_unknown_configuration_class_rejected(self):
        _, execution = record_ssrmin(seed=5)
        with pytest.raises(ValueError):
            execution_to_dict(execution, configuration_class="Frozen")

    def test_schema_version_checked(self):
        with pytest.raises(ValueError):
            execution_from_dict({"schema": 99, "configurations": [], "moves": []})


class TestReplayFromDisk:
    def test_loaded_execution_replays_identically(self, tmp_path):
        """The full loop: record -> save -> load -> replay -> same trace."""
        alg, execution = record_ssrmin(seed=6, steps=30)
        path = tmp_path / "trace.json"
        save_execution(execution, str(path),
                       configuration_class="Configuration")
        restored, _ = load_execution(str(path))

        sim = SharedMemorySimulator(alg, ReplayDaemon(restored.selections()))
        replayed = sim.run(restored.initial, max_steps=restored.steps)
        assert [c.states for c in replayed.execution.configurations] == [
            c.states for c in restored.configurations
        ]
