"""Unit tests for the Execution record."""

import pytest

from repro.simulation.execution import Execution, Move


class TestConstruction:
    def test_start_then_record(self):
        e = Execution()
        e.start("c0")
        e.record([Move(0, "R1")], "c1")
        assert e.steps == 1
        assert e.initial == "c0"
        assert e.final == "c1"

    def test_double_start_rejected(self):
        e = Execution()
        e.start("c0")
        with pytest.raises(ValueError):
            e.start("c0")

    def test_record_before_start_rejected(self):
        with pytest.raises(ValueError):
            Execution().record([Move(0, "R1")], "c1")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Execution(configurations=["a", "b"], moves=[])


class TestQueries:
    def build(self):
        e = Execution()
        e.start("c0")
        e.record([Move(0, "R1")], "c1")
        e.record([Move(1, "R3"), Move(2, "R5")], "c2")
        e.record([Move(0, "R2")], "c3")
        return e

    def test_selections(self):
        assert self.build().selections() == [(0,), (1, 2), (0,)]

    def test_rule_counts(self):
        counts = self.build().rule_counts()
        assert counts == {"R1": 1, "R3": 1, "R5": 1, "R2": 1}

    def test_moves_by_process(self):
        assert self.build().moves_by_process(0) == [(0, "R1"), (2, "R2")]
        assert self.build().moves_by_process(1) == [(1, "R3")]

    def test_iteration_and_len(self):
        e = self.build()
        assert len(e) == 4
        assert list(e) == ["c0", "c1", "c2", "c3"]

    def test_slice(self):
        e = self.build()
        s = e.slice(1, 3)
        assert s.configurations == ["c1", "c2"]
        assert s.steps == 1
        assert s.moves[0][0].rule == "R3"

    def test_slice_to_end(self):
        s = self.build().slice(2)
        assert s.configurations == ["c2", "c3"]
        assert s.moves[0][0].rule == "R2"
