"""Unit tests for simulation monitors."""

import random

import pytest

from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon, SynchronousDaemon
from repro.simulation.engine import SharedMemorySimulator
from repro.simulation.monitors import (
    CriticalSectionMonitor,
    InvariantViolation,
    LegitimacyMonitor,
    RuleCensusMonitor,
    TokenCountMonitor,
)


class TestTokenCountMonitor:
    def test_counts_recorded_per_configuration(self, ssrmin5):
        mon = TokenCountMonitor(ssrmin5)
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=9)
        assert len(mon.counts) == 10
        assert mon.min_count() >= 1 and mon.max_count() <= 2

    def test_violation_raises(self, ssrmin5):
        # Demand an impossible lower bound to force a violation.
        mon = TokenCountMonitor(ssrmin5, low=3, only_when_legitimate=False)
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        with pytest.raises(InvariantViolation):
            sim.run(ssrmin5.initial_configuration(), max_steps=5)

    def test_only_when_legitimate_skips_transients(self, ssrmin5):
        # From a chaotic start, counts outside [1,2] may occur but must not
        # raise while the configuration is illegitimate.
        mon = TokenCountMonitor(ssrmin5, low=1, high=2, only_when_legitimate=True)
        sim = SharedMemorySimulator(ssrmin5, RandomSubsetDaemon(seed=0),
                                    monitors=[mon])
        init = ssrmin5.random_configuration(random.Random(42))
        sim.run(init, max_steps=2000, record=False)  # should not raise

    def test_reset_between_runs(self, ssrmin5):
        mon = TokenCountMonitor(ssrmin5)
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=3)
        sim.run(ssrmin5.initial_configuration(), max_steps=3)
        assert len(mon.counts) == 4


class TestLegitimacyMonitor:
    def test_first_legitimate_zero_for_legit_start(self, ssrmin5):
        mon = LegitimacyMonitor(ssrmin5)
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=3)
        assert mon.first_legitimate == 0

    def test_detects_convergence_point(self, ssrmin5):
        mon = LegitimacyMonitor(ssrmin5)
        sim = SharedMemorySimulator(ssrmin5, RandomSubsetDaemon(seed=1),
                                    monitors=[mon])
        init = ssrmin5.random_configuration(random.Random(1))
        sim.run(init, max_steps=2000, record=False)
        assert mon.first_legitimate is not None

    def test_closure_checked(self, ssrmin5):
        """Closure (Lemma 1) must hold along every legitimate run."""
        mon = LegitimacyMonitor(ssrmin5, check_closure=True)
        sim = SharedMemorySimulator(ssrmin5, RandomSubsetDaemon(seed=2),
                                    monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=300, record=False)


class TestRuleCensusMonitor:
    def test_census_totals(self, ssrmin5):
        mon = RuleCensusMonitor()
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=15)
        # One lap = 5 x (R1, R3, R2).
        assert mon.total == {"R1": 5, "R3": 5, "R2": 5}
        assert mon.w24_count() == 5
        assert mon.w135_count() == 10

    def test_longest_w135_run(self, ssrmin5):
        mon = RuleCensusMonitor()
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=30)
        # Pattern R1, R3, R2 repeating: runs of length 2 between R2s.
        assert mon.longest_w135_run == 2

    def test_per_process_attribution(self, ssrmin5):
        mon = RuleCensusMonitor()
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=3)
        assert mon.per_process[0] == {"R1": 1, "R2": 1}
        assert mon.per_process[1] == {"R3": 1}


class TestCriticalSectionMonitor:
    def test_rejects_bad_bounds(self, ssrmin5):
        with pytest.raises(ValueError):
            CriticalSectionMonitor(ssrmin5, l=2, k=1)

    def test_12_cs_holds_in_legitimate_regime(self, ssrmin5):
        mon = CriticalSectionMonitor(ssrmin5, l=1, k=2)
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=60, record=False)
        assert mon.violations == 0

    def test_service_counts_every_process(self, ssrmin5):
        mon = CriticalSectionMonitor(ssrmin5, l=1, k=2)
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=3 * 5, record=False)
        assert mon.all_served(5)

    def test_non_enforcing_counts_violations(self, ssrmin5):
        mon = CriticalSectionMonitor(ssrmin5, l=2, k=2, enforce=False)
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=9, record=False)
        assert mon.violations > 0  # single-holder configs violate l=2
