"""Differential tests: the packed fastpath kernels vs the naive rule path.

The fast kernels are only trustworthy if they are *indistinguishable* from
the reference implementation — same enabled sets, same resolved rule names,
same successors under every daemon selection, same legitimacy verdicts.
This suite pins that equivalence three ways:

* property-based (hypothesis) single-configuration checks over random
  instances and configurations;
* full random-walk runs through the engine / convergence driver under every
  daemon type, comparing recorded executions move for move;
* an exhaustive sweep of the complete n=3, K=4 SSRmin state space (4096
  configurations), including all distributed-daemon successor sets.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.core.state import Configuration
from repro.daemons.adversarial import AdversarialDaemon
from repro.daemons.central import (
    FixedPriorityDaemon,
    RandomCentralDaemon,
    RoundRobinDaemon,
)
from repro.daemons.distributed import (
    BernoulliDaemon,
    RandomSubsetDaemon,
    SynchronousDaemon,
)
from repro.simulation.convergence import converge
from repro.simulation.engine import SharedMemorySimulator
from repro.simulation.fastpath import (
    PackedView,
    fastpath_enabled,
    fastpath_override,
    resolve_kernel,
)
from repro.simulation.fastpath.ssrmin_kernel import RULE_TABLE
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.session import telemetry_session
from repro.verification.transition_system import TransitionSystem


def ssrmin_instances():
    return st.tuples(st.integers(3, 8), st.integers(1, 4)).map(
        lambda t: (t[0], t[0] + t[1])
    )


def ssrmin_configurations(n, K):
    state = st.tuples(
        st.integers(0, K - 1), st.integers(0, 1), st.integers(0, 1)
    )
    return st.lists(state, min_size=n, max_size=n).map(Configuration)


@st.composite
def ssrmin_with_config(draw):
    n, K = draw(ssrmin_instances())
    return SSRmin(n, K), draw(ssrmin_configurations(n, K))


@st.composite
def dijkstra_with_config(draw):
    n, K = draw(st.tuples(st.integers(2, 8), st.integers(1, 4)))
    n, K = n, n + K
    config = tuple(
        draw(st.lists(st.integers(0, K - 1), min_size=n, max_size=n))
    )
    return DijkstraKState(n, K), config


ALL_DAEMON_FACTORIES = [
    lambda alg, seed: RandomCentralDaemon(seed=seed),
    lambda alg, seed: RoundRobinDaemon(),
    lambda alg, seed: FixedPriorityDaemon(),
    lambda alg, seed: SynchronousDaemon(),
    lambda alg, seed: BernoulliDaemon(0.5, seed=seed),
    lambda alg, seed: RandomSubsetDaemon(seed=seed),
    lambda alg, seed: AdversarialDaemon(alg, depth=1, seed=seed),
]


class TestCapabilityProbe:
    def test_base_default_has_no_kernel(self):
        from repro.algorithms.base import RingAlgorithm

        assert RingAlgorithm.fast_kernel(object()) is None

    def test_ssrmin_and_dijkstra_provide_kernels(self, ssrmin5, dijkstra5):
        assert ssrmin5.fast_kernel() is not None
        assert dijkstra5.fast_kernel() is not None

    def test_resolve_kernel_explicit_off(self, ssrmin5):
        assert resolve_kernel(ssrmin5, False) is None
        assert resolve_kernel(ssrmin5, True) is not None

    def test_override_context_manager(self, ssrmin5):
        assert fastpath_enabled() is True
        with fastpath_override(False):
            assert fastpath_enabled() is False
            assert resolve_kernel(ssrmin5) is None
            # Explicit call-site choice beats the scoped override.
            assert resolve_kernel(ssrmin5, True) is not None
        assert fastpath_enabled() is True

    def test_kernels_are_fresh_per_call(self, ssrmin5):
        assert ssrmin5.fast_kernel() is not ssrmin5.fast_kernel()


class TestRuleTable:
    def test_table_matches_rule_set_on_all_neighborhoods(self):
        """All 128 table entries agree with RuleSet.enabled_rule.

        A 3-process ring can realize every (G, h_pred, h_own, h_succ)
        combination at its non-bottom process 1, whose guard is just
        ``x_1 != x_0``.
        """
        alg = SSRmin(3, 4)
        for g, hp, h, hs in itertools.product((0, 1), *[range(4)] * 3):
            x1 = 1 if g else 0
            config = Configuration([
                (0, hp >> 1, hp & 1),
                (x1, h >> 1, h & 1),
                (0, hs >> 1, hs & 1),
            ])
            rule = alg.enabled_rule(config, 1)
            expect = 0 if rule is None else rule.number
            assert RULE_TABLE[(g << 6) | (hp << 4) | (h << 2) | hs] == expect


class TestSingleConfigEquivalence:
    @given(ssrmin_with_config())
    @settings(max_examples=200, deadline=None)
    def test_ssrmin_enabled_rules_privileged_legitimacy(self, pair):
        alg, config = pair
        kernel = alg.fast_kernel()
        kernel.load(config)
        enabled = alg.enabled_processes(config)
        assert kernel.enabled() == enabled
        for i in range(alg.n):
            rule = alg.enabled_rule(config, i)
            assert kernel.rule_id(i) == (0 if rule is None else rule.number)
            if rule is not None:
                assert kernel.rule_name(i) == rule.name
                assert kernel.update(i) == alg.execute(config, i)
        assert kernel.privileged() == alg.privileged(config)
        assert kernel.is_legitimate() == alg.is_legitimate(config)
        assert kernel.dijkstra_legitimate() == (
            alg.dijkstra_projection().is_legitimate(config)
        )

    @given(dijkstra_with_config())
    @settings(max_examples=200, deadline=None)
    def test_dijkstra_enabled_rules_privileged_legitimacy(self, pair):
        alg, config = pair
        kernel = alg.fast_kernel()
        kernel.load(config)
        assert kernel.enabled() == alg.enabled_processes(config)
        for i in range(alg.n):
            rule = alg.enabled_rule(config, i)
            assert kernel.rule_id(i) == (0 if rule is None else rule.number)
            if rule is not None:
                assert kernel.update(i) == alg.execute(config, i)
        assert kernel.privileged() == alg.privileged(config)
        assert kernel.is_legitimate() == alg.is_legitimate(config)

    @given(ssrmin_with_config(), st.integers(0, 2 ** 20))
    @settings(max_examples=100, deadline=None)
    def test_ssrmin_random_subset_walk(self, pair, seed):
        """apply() tracks alg.step() through multi-process selections."""
        alg, config = pair
        rng = random.Random(seed)
        kernel = alg.fast_kernel()
        kernel.load(config)
        for _ in range(8):
            enabled = alg.enabled_processes(config)
            assert kernel.enabled() == enabled
            if not enabled:
                break
            k = rng.randint(1, len(enabled))
            selection = rng.sample(enabled, k)
            config = alg.step(config, selection)
            kernel.apply(selection)
            assert kernel.export() == config
            assert kernel.is_legitimate() == alg.is_legitimate(config)

    def test_apply_rejects_empty_and_disabled(self, ssrmin5):
        kernel = ssrmin5.fast_kernel()
        kernel.load(ssrmin5.initial_configuration())
        with pytest.raises(ValueError):
            kernel.apply([])
        disabled = next(
            i for i in range(ssrmin5.n) if kernel.rule_id(i) == 0
        )
        with pytest.raises(ValueError):
            kernel.apply([disabled])
        with pytest.raises(ValueError):
            kernel.rule_name(disabled)


class TestPackedView:
    def test_view_is_live_and_sequence_like(self, ssrmin5):
        kernel = ssrmin5.fast_kernel()
        config = ssrmin5.initial_configuration()
        kernel.load(config)
        view = kernel.view()
        assert isinstance(view, PackedView)
        assert len(view) == 5
        assert tuple(view) == config.states
        assert view[0] == config[0]
        assert view[-1] == config[-1]
        assert view[1:3] == config.states[1:3]
        with pytest.raises(IndexError):
            view[5]
        # Live: stepping the kernel is visible through the old view object.
        kernel.apply([kernel.enabled()[0]])
        assert tuple(view) == kernel.export().states


class TestEngineEquivalence:
    @pytest.mark.parametrize("daemon_factory", ALL_DAEMON_FACTORIES)
    def test_recorded_runs_identical(self, daemon_factory):
        alg = SSRmin(7, 9)
        for seed in range(3):
            init = alg.random_configuration(random.Random(seed))
            runs = []
            for fast in (True, False):
                sim = SharedMemorySimulator(
                    alg, daemon_factory(alg, seed), use_fastpath=fast)
                runs.append(sim.run(init, max_steps=60, record=True))
            fast_run, naive_run = runs
            assert fast_run.steps == naive_run.steps
            assert fast_run.final_config == naive_run.final_config
            assert fast_run.execution.moves == naive_run.execution.moves
            assert list(fast_run.execution.configurations) == list(
                naive_run.execution.configurations)

    def test_stop_when_bound_legitimacy(self):
        alg = SSRmin(6, 7)
        init = alg.random_configuration(random.Random(3))
        results = [
            SharedMemorySimulator(
                alg, RandomCentralDaemon(seed=3), use_fastpath=fast
            ).run(init, 10_000, stop_when=alg.is_legitimate, record=False)
            for fast in (True, False)
        ]
        assert results[0].stopped_by_predicate
        assert results[0].steps == results[1].steps
        assert results[0].final_config == results[1].final_config

    def test_custom_stop_when_sees_configuration_like_view(self):
        alg = SSRmin(5, 6)
        init = alg.random_configuration(random.Random(1))
        seen_x = []

        def stop(config):
            seen_x.append(config[0][0])
            return len(config) == 5 and config[0][1] == 1

        result = SharedMemorySimulator(
            alg, FixedPriorityDaemon(), use_fastpath=True
        ).run(init, 500, stop_when=stop)
        reference = SharedMemorySimulator(
            alg, FixedPriorityDaemon(), use_fastpath=False
        ).run(init, 500, stop_when=stop)
        assert result.steps == reference.steps
        assert result.final_config == reference.final_config

    def test_dijkstra_engine_equivalence(self):
        alg = DijkstraKState(7, 9)
        init = alg.random_configuration(random.Random(2))
        runs = [
            SharedMemorySimulator(
                alg, SynchronousDaemon(), use_fastpath=fast
            ).run(init, 50, record=True)
            for fast in (True, False)
        ]
        assert runs[0].execution.moves == runs[1].execution.moves
        assert runs[0].final_config == runs[1].final_config


class TestConvergeEquivalence:
    def test_ssrmin_converge_matches_naive(self):
        alg = SSRmin(8, 10)
        for seed in range(5):
            init = alg.random_configuration(random.Random(seed))
            fast = converge(
                alg, RandomCentralDaemon(seed=seed), init, use_fastpath=True)
            naive = converge(
                alg, RandomCentralDaemon(seed=seed), init, use_fastpath=False)
            assert fast.converged and naive.converged
            assert fast.steps == naive.steps
            assert fast.dijkstra_steps == naive.dijkstra_steps
            assert fast.final_config == naive.final_config

    def test_dijkstra_converge_matches_naive(self):
        alg = DijkstraKState(8, 10)
        for seed in range(5):
            init = alg.random_configuration(random.Random(seed))
            fast = converge(
                alg, BernoulliDaemon(0.7, seed=seed), init, use_fastpath=True)
            naive = converge(
                alg, BernoulliDaemon(0.7, seed=seed), init, use_fastpath=False)
            assert fast.steps == naive.steps
            assert fast.final_config == naive.final_config


class TestTelemetryEquivalence:
    def test_counters_identical_fast_vs_naive(self):
        alg = SSRmin(6, 8)
        init = alg.random_configuration(random.Random(7))
        totals = []
        for fast in (True, False):
            with telemetry_session(registry=MetricsRegistry()) as tel:
                SharedMemorySimulator(
                    alg, RandomCentralDaemon(seed=7), use_fastpath=fast
                ).run(init, 700, stop_when=alg.is_legitimate, record=False)
                steps = tel.registry.counter("steps_total").total()
                rules = dict(
                    tel.registry.counter("rule_fired_total").series())
                totals.append((steps, rules))
        assert totals[0] == totals[1]
        assert totals[0][0] > 0

    def test_per_step_events_still_published_with_subscriber(self):
        alg = SSRmin(5, 6)
        init = alg.random_configuration(random.Random(1))
        with telemetry_session(registry=MetricsRegistry()) as tel:
            step_events = []
            tel.subscribe(
                lambda e: step_events.append(e)
                if e.layer == "engine" and e.kind == "step" else None)
            result = SharedMemorySimulator(
                alg, FixedPriorityDaemon(), use_fastpath=True
            ).run(init, 20, record=False)
        assert len(step_events) == result.steps
        assert all(e.payload["moves"] for e in step_events)

    def test_no_per_step_events_without_consumers(self):
        alg = SSRmin(5, 6)
        init = alg.random_configuration(random.Random(1))
        with telemetry_session(registry=MetricsRegistry()) as tel:
            assert tel.step_detail is False
            SharedMemorySimulator(
                alg, FixedPriorityDaemon(), use_fastpath=True
            ).run(init, 20, record=False)
            # Counters were still aggregated and flushed.
            assert tel.registry.counter("steps_total").total() == 20


class TestExhaustiveN3:
    """The entire n=3, K=4 state space, fast vs naive (tier-1 gate)."""

    def test_every_configuration_agrees(self, ssrmin3):
        alg = ssrmin3
        kernel = alg.fast_kernel()
        ts_fast = TransitionSystem(alg, "distributed", use_fastpath=True)
        ts_naive = TransitionSystem(alg, "distributed", use_fastpath=False)
        count = 0
        for config in alg.configuration_space():
            count += 1
            kernel.load(config)
            assert kernel.enabled() == alg.enabled_processes(config)
            assert kernel.is_legitimate() == alg.is_legitimate(config)
            assert kernel.privileged() == alg.privileged(config)
            fast_succs = {s.states for s in ts_fast.successors(config)}
            naive_succs = {s.states for s in ts_naive.successors(config)}
            assert fast_succs == naive_succs
        assert count == (4 * 4) ** 3

    def test_packed_keys_are_collision_free(self, ssrmin3):
        kernel = ssrmin3.fast_kernel()
        keys = {
            kernel.pack_key(c) for c in ssrmin3.configuration_space()
        }
        assert len(keys) == (4 * 4) ** 3
