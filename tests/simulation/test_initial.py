"""Unit tests for initial-configuration generators."""

import random

import pytest

from repro.core.legitimacy import is_legitimate
from repro.core.ssrmin import SSRmin
from repro.simulation.initial import (
    adversarial_patterns,
    all_legitimate,
    perturbed_legitimate,
    random_configuration,
    random_legitimate,
)


class TestRandomLegitimate:
    def test_always_legitimate(self, ssrmin5, rng):
        for _ in range(100):
            c = random_legitimate(ssrmin5, rng)
            assert is_legitimate(c, ssrmin5.K)

    def test_covers_all_shapes(self, ssrmin5, rng):
        shapes = set()
        for _ in range(300):
            c = random_legitimate(ssrmin5, rng)
            shapes.add(c.handshake_vector())
        # Three shapes x five positions should mostly appear.
        assert len(shapes) >= 10


class TestPerturbed:
    def test_zero_faults_is_legitimate(self, ssrmin5, rng):
        c = perturbed_legitimate(ssrmin5, rng, faults=0)
        assert is_legitimate(c, ssrmin5.K)

    def test_negative_faults_rejected(self, ssrmin5, rng):
        with pytest.raises(ValueError):
            perturbed_legitimate(ssrmin5, rng, faults=-1)

    def test_faulted_states_stay_in_domain(self, ssrmin5, rng):
        for _ in range(50):
            c = perturbed_legitimate(ssrmin5, rng, faults=3)
            for x, rts, tra in c:
                assert 0 <= x < ssrmin5.K and rts in (0, 1) and tra in (0, 1)

    def test_recovery_from_single_fault(self, ssrmin5, rng):
        """Single-fault configurations converge (the superstabilization
        regime the paper's related work discusses)."""
        from repro.daemons.distributed import RandomSubsetDaemon
        from repro.simulation.convergence import converge

        for seed in range(10):
            c = perturbed_legitimate(ssrmin5, random.Random(seed), faults=1)
            res = converge(ssrmin5, RandomSubsetDaemon(seed=seed), c)
            assert res.converged


class TestAdversarialPatterns:
    def test_patterns_are_valid_configurations(self, ssrmin5):
        for c in adversarial_patterns(ssrmin5):
            assert c.n == ssrmin5.n
            for x, rts, tra in c:
                assert 0 <= x < ssrmin5.K

    def test_patterns_converge(self, ssrmin5):
        from repro.daemons.distributed import RandomSubsetDaemon
        from repro.simulation.convergence import converge

        for k, c in enumerate(adversarial_patterns(ssrmin5)):
            res = converge(ssrmin5, RandomSubsetDaemon(seed=k), c)
            assert res.converged, f"pattern {k} did not converge"

    def test_pattern_count(self, ssrmin5):
        assert len(list(adversarial_patterns(ssrmin5))) == 5


class TestAllLegitimate:
    def test_count(self, ssrmin3):
        assert len(all_legitimate(ssrmin3)) == 3 * 3 * 4

    def test_random_configuration_delegates(self, ssrmin5, rng):
        c = random_configuration(ssrmin5, rng)
        assert c.n == 5
