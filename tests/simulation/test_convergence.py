"""Unit tests for convergence drivers (Lemma 6, Theorem 2 machinery)."""

import random

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon, SynchronousDaemon
from repro.simulation.convergence import ConvergenceResult, converge, convergence_steps


class TestConverge:
    def test_legitimate_start_zero_steps(self, ssrmin5):
        res = converge(ssrmin5, SynchronousDaemon(),
                       ssrmin5.initial_configuration())
        assert res.converged and res.steps == 0
        assert res.dijkstra_steps == 0

    def test_converges_from_chaos(self, ssrmin5):
        for seed in range(10):
            init = ssrmin5.random_configuration(random.Random(seed))
            res = converge(ssrmin5, RandomSubsetDaemon(seed=seed), init)
            assert res.converged
            assert ssrmin5.is_legitimate(res.final_config)

    def test_dijkstra_projection_converges_first(self, ssrmin5):
        """Lemma 8's structure: the x-part converges no later than SSRmin."""
        for seed in range(10):
            init = ssrmin5.random_configuration(random.Random(100 + seed))
            res = converge(ssrmin5, RandomSubsetDaemon(seed=seed), init)
            assert res.converged
            assert res.dijkstra_steps is not None
            assert res.dijkstra_steps <= res.steps

    def test_respects_max_steps(self, ssrmin5):
        init = ssrmin5.random_configuration(random.Random(0))
        if ssrmin5.is_legitimate(init):  # pragma: no cover - seed-dependent
            pytest.skip("random start happened to be legitimate")
        res = converge(ssrmin5, RandomSubsetDaemon(seed=0), init, max_steps=0)
        assert not res.converged and res.steps == 0

    def test_steps_within_quadratic_budget(self):
        """Theorem 2's O(n^2) with an explicit constant, empirically."""
        for n in (4, 8, 12):
            alg = SSRmin(n, n + 1)
            for seed in range(5):
                init = alg.random_configuration(random.Random(seed))
                res = converge(alg, RandomSubsetDaemon(seed=seed), init)
                assert res.converged
                assert res.steps <= 10 * n * n + 100

    def test_works_without_projection(self):
        alg = DijkstraKState(5, 6)
        init = alg.random_configuration(random.Random(1))
        res = converge(alg, RandomSubsetDaemon(seed=1), init)
        assert res.converged
        assert res.dijkstra_steps is None


class TestConvergenceSteps:
    def test_batch_measurement(self):
        samples = convergence_steps(
            algorithm_factory=lambda: SSRmin(4, 5),
            daemon_factory=lambda alg, s: RandomSubsetDaemon(seed=s),
            trials=10,
            seed=0,
        )
        assert len(samples) == 10
        assert all(s >= 0 for s in samples)

    def test_deterministic_given_seed(self):
        kwargs = dict(
            algorithm_factory=lambda: SSRmin(4, 5),
            daemon_factory=lambda alg, s: RandomSubsetDaemon(seed=s),
            trials=5,
            seed=3,
        )
        assert convergence_steps(**kwargs) == convergence_steps(**kwargs)

    def test_budget_violation_raises(self):
        with pytest.raises(RuntimeError):
            convergence_steps(
                algorithm_factory=lambda: SSRmin(6, 7),
                daemon_factory=lambda alg, s: RandomSubsetDaemon(seed=s),
                trials=20,
                seed=0,
                max_steps=1,  # absurdly small budget
            )
