"""Unit tests for the shared-memory simulation engine."""

import random

import pytest

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon, SynchronousDaemon
from repro.daemons.replay import ReplayDaemon
from repro.simulation.engine import SharedMemorySimulator
from repro.simulation.monitors import Monitor


class TestRun:
    def test_rejects_negative_budget(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        with pytest.raises(ValueError):
            sim.run(ssrmin5.initial_configuration(), max_steps=-1)

    def test_zero_steps(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        result = sim.run(ssrmin5.initial_configuration(), max_steps=0)
        assert result.steps == 0
        assert len(result.execution) == 1

    def test_records_execution(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        result = sim.run(ssrmin5.initial_configuration(), max_steps=10)
        assert result.steps == 10
        assert len(result.execution) == 11
        assert result.execution.final == result.final_config

    def test_record_false_keeps_no_execution(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        result = sim.run(ssrmin5.initial_configuration(), max_steps=5,
                         record=False)
        assert result.execution is None

    def test_stop_when_predicate(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, RandomSubsetDaemon(seed=0))
        init = ssrmin5.random_configuration(random.Random(0))
        result = sim.run(init, max_steps=10_000,
                         stop_when=ssrmin5.is_legitimate)
        assert result.stopped_by_predicate
        assert ssrmin5.is_legitimate(result.final_config)

    def test_stop_when_checked_on_initial(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        init = ssrmin5.initial_configuration()
        result = sim.run(init, max_steps=100, stop_when=ssrmin5.is_legitimate)
        assert result.steps == 0 and result.stopped_by_predicate

    def test_no_deadlock_for_ssrmin(self, ssrmin5):
        """Lemma 4: SSRmin runs never deadlock."""
        sim = SharedMemorySimulator(ssrmin5, RandomSubsetDaemon(seed=1))
        for seed in range(5):
            init = ssrmin5.random_configuration(random.Random(seed))
            result = sim.run(init, max_steps=500, record=False)
            assert not result.deadlocked

    def test_daemon_reset_called_per_run(self, ssrmin5):
        daemon = ReplayDaemon([0])
        sim = SharedMemorySimulator(ssrmin5, daemon)
        init = ssrmin5.initial_configuration()
        sim.run(init, max_steps=1)
        # Without reset this second run would raise IndexError.
        sim.run(init, max_steps=1)

    def test_normalizes_raw_initial(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        raw = [(0, 0, 1)] + [(0, 0, 0)] * 4
        result = sim.run(raw, max_steps=1)
        from repro.core.state import Configuration

        assert isinstance(result.final_config, Configuration)

    def test_run_legitimate_lap_returns_rotated_anchor(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        result = sim.run_legitimate_lap(ssrmin5.initial_configuration(0), laps=1)
        assert result.final_config.states == \
            ssrmin5.initial_configuration(1).states


class TestMonitors:
    def test_monitor_sees_every_transition(self, ssrmin5):
        class Counter(Monitor):
            def __init__(self):
                self.starts = 0
                self.steps = 0
                self.finishes = 0

            def on_start(self, config):
                self.starts += 1

            def on_step(self, step, config, moves, next_config):
                self.steps += 1

            def on_finish(self, config):
                self.finishes += 1

        mon = Counter()
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon(), monitors=[mon])
        sim.run(ssrmin5.initial_configuration(), max_steps=7)
        assert (mon.starts, mon.steps, mon.finishes) == (1, 7, 1)

    def test_moves_carry_rule_names(self, ssrmin5):
        sim = SharedMemorySimulator(ssrmin5, SynchronousDaemon())
        result = sim.run(ssrmin5.initial_configuration(), max_steps=3)
        rules = [m.rule for step in result.execution.moves for m in step]
        assert rules == ["R1", "R3", "R2"]

    def test_deterministic_replay_across_engines(self):
        alg = DijkstraKState(5, 6)
        init = alg.random_configuration(random.Random(9))
        r1 = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=3)).run(
            init, max_steps=50
        )
        r2 = SharedMemorySimulator(alg, RandomSubsetDaemon(seed=3)).run(
            init, max_steps=50
        )
        assert r1.execution.configurations == r2.execution.configurations
