"""Chaos campaigns against live rings, including the CLI acceptance run.

The fast tests use short hand-rolled scripts (sub-second fault windows);
the full named scripts — several seconds of scripted faults plus settle
time each — are exercised by the ``slow``-marked tests.
"""

import json
import os

import pytest

from repro import cli
from repro.runtime import ChaosOp, ChaosScript, build_script, live_chaos

STABILIZE_TIMEOUT = 20.0


def _final_epoch_violations(health):
    final = len(health["epochs"]) - 1
    return [v for v in health["guarantee_violations"]
            if v["epoch_index"] == final]


def test_loss_window_end_to_end():
    """Bernoulli loss stales the caches; timers repair them (Theorem 4)."""
    script = ChaosScript(
        name="mini_loss",
        ops=(ChaosOp(at=0.2, kind="loss", duration=0.4, params={"p": 0.7}),),
        settle=1.0,
    )
    report = live_chaos(
        script=script, algorithm="ssrmin", n=4, transport="loopback",
        seed=41, timer_interval=0.05, stabilize_timeout=STABILIZE_TIMEOUT,
    )
    health = report["health"]
    assert health["stabilized"]
    assert _final_epoch_violations(health) == []
    assert health["time_to_restabilize"] is not None
    assert report["transport_stats"]["injected_losses"] > 0
    # Epochs: boot, window open, window healed.
    labels = [e["label"] for e in health["epochs"]]
    assert any(lbl.startswith("loss@") for lbl in labels)
    assert any(lbl.startswith("loss-healed@") for lbl in labels)


def test_partition_window_end_to_end():
    script = ChaosScript(
        name="mini_partition",
        ops=(ChaosOp(at=0.2, kind="partition", duration=0.4,
                     params={"edges": [(0, 1)]}),),
        settle=1.0,
    )
    report = live_chaos(
        script=script, algorithm="ssrmin", n=4, transport="loopback",
        seed=43, timer_interval=0.05, stabilize_timeout=STABILIZE_TIMEOUT,
    )
    health = report["health"]
    assert health["stabilized"]
    assert _final_epoch_violations(health) == []
    assert report["transport_stats"]["blocked_by_partition"] > 0


def test_cache_scramble_end_to_end():
    """Transient state/cache corruption — the paper's section 5 faults."""
    report = live_chaos(
        script="cache_scramble", algorithm="ssrmin", n=4,
        transport="loopback", seed=47, timer_interval=0.05,
        stabilize_timeout=STABILIZE_TIMEOUT,
    )
    health = report["health"]
    assert health["stabilized"]
    assert _final_epoch_violations(health) == []
    labels = [e["label"] for e in health["epochs"]]
    assert any(lbl.startswith("corrupt-state") for lbl in labels)
    assert any(lbl.startswith("corrupt-cache") for lbl in labels)


@pytest.mark.slow
def test_crash_restart_script_restabilizes():
    report = live_chaos(
        script="crash_restart", algorithm="ssrmin", n=4,
        transport="loopback", seed=53, timer_interval=0.05,
        stabilize_timeout=STABILIZE_TIMEOUT,
    )
    health = report["health"]
    assert health["stabilized"]
    assert report["restarts"] >= 1
    assert _final_epoch_violations(health) == []


def test_build_script_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown chaos script"):
        build_script("no_such_script", 4)


def test_script_shape_is_replayable():
    script = build_script("loss_burst", 8, seed=7)
    blob = script.to_json()
    assert blob["name"] == "loss_burst"
    assert all(op["kind"] == "loss" for op in blob["ops"])
    assert script.last_disturbance == pytest.approx(3.2)


@pytest.mark.slow
def test_acceptance_cli_loss_burst_over_udp(tmp_path):
    """ISSUE acceptance: ``repro live chaos --n 8 --script loss_burst``
    runs SSRmin over the asyncio UDP transport, keeps >=1 own-view token
    post-stabilization, and records time-to-restabilize in the manifest.
    Deterministic seed; asserts on the recorded manifest, not stdout."""
    rc = cli.main([
        "live", "chaos", "--n", "8", "--script", "loss_burst",
        "--transport", "udp", "--seed", "7", "--timer-interval", "0.05",
        "--stabilize-timeout", str(STABILIZE_TIMEOUT),
        "--telemetry-dir", str(tmp_path),
    ])
    assert rc == 0
    manifest_path = os.path.join(
        tmp_path, "live-chaos-loss_burst-ssrmin-n8-seed7", "manifest.json"
    )
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    live = manifest["extra"]["live"]
    assert live["algorithm"] == "SSRmin" and live["n"] == 8
    assert live["transport"] == "udp" and live["chaos"]
    assert live["script"]["name"] == "loss_burst"
    health = live["health"]
    # Survived: re-stabilized after the last loss window, with the
    # >=1-own-view-token guarantee intact throughout stabilized instants.
    assert health["stabilized"]
    assert health["time_to_restabilize"] is not None
    assert health["time_to_restabilize"] < STABILIZE_TIMEOUT
    assert health["post_stab_min_holders"] >= 1
    assert _final_epoch_violations(health) == []
    # The chaos actually bit: losses were injected on the wire.
    assert live["transport_stats"]["injected_losses"] > 0
