"""Chaos campaigns against live rings, including the CLI acceptance run.

The fast tests declare their faults through the chaos lab's
``resilience_test`` decorator (each lowers to the same sub-second
``ChaosOp`` windows the old hand-rolled scripts used); the full named
scripts — several seconds of scripted faults plus settle time each — are
exercised by the ``slow``-marked tests.
"""

import json
import os

import pytest

from repro import cli
from repro.chaoslab import FaultConfig, FaultType, resilience_test
from repro.runtime import build_script, live_chaos

STABILIZE_TIMEOUT = 20.0


def _final_epoch_violations(health):
    final = len(health["epochs"]) - 1
    return [v for v in health["guarantee_violations"]
            if v["epoch_index"] == final]


@resilience_test(
    faults=[FaultConfig(FaultType.LOSS, at=0.2, duration=0.4, severity=0.7)],
    n=4, seed=41, settle=1.0, budget=STABILIZE_TIMEOUT,
    stabilize_timeout=STABILIZE_TIMEOUT,
)
def test_loss_window_end_to_end(outcome):
    """Bernoulli loss stales the caches; timers repair them (Theorem 4)."""
    health = outcome.report["health"]
    assert health["stabilized"]
    assert _final_epoch_violations(health) == []
    assert health["time_to_restabilize"] is not None
    assert outcome.report["transport_stats"]["injected_losses"] > 0
    # Epochs: boot, window open, window healed.
    labels = [e["label"] for e in health["epochs"]]
    assert any(lbl.startswith("loss@") for lbl in labels)
    assert any(lbl.startswith("loss-healed@") for lbl in labels)
    # The observation panel agrees with the raw health assertions.
    assert outcome.ok


@resilience_test(
    faults=[FaultConfig(FaultType.PARTITION, at=0.2, duration=0.4,
                        params={"edges": [(0, 1)]})],
    n=4, seed=43, settle=1.0, budget=STABILIZE_TIMEOUT,
    stabilize_timeout=STABILIZE_TIMEOUT,
)
def test_partition_window_end_to_end(outcome):
    health = outcome.report["health"]
    assert health["stabilized"]
    assert _final_epoch_violations(health) == []
    assert outcome.report["transport_stats"]["blocked_by_partition"] > 0
    assert outcome.ok


@resilience_test(
    faults=[FaultConfig(FaultType.CACHE_CORRUPTION, at=0.5)],
    n=4, seed=47, settle=3.0, budget=STABILIZE_TIMEOUT,
    stabilize_timeout=STABILIZE_TIMEOUT,
)
def test_cache_scramble_end_to_end(outcome):
    """Transient state/cache corruption — the paper's section 5 faults.

    The default ``cache-corruption`` volley lowers to the exact ops of
    the named ``cache_scramble`` script this test used to run.
    """
    assert [op.to_json() for op in outcome.experiment.compile().ops] == [
        op.to_json() for op in build_script("cache_scramble", 4).ops
    ]
    health = outcome.report["health"]
    assert health["stabilized"]
    assert _final_epoch_violations(health) == []
    labels = [e["label"] for e in health["epochs"]]
    assert any(lbl.startswith("corrupt-state") for lbl in labels)
    assert any(lbl.startswith("corrupt-cache") for lbl in labels)


@pytest.mark.slow
def test_crash_restart_script_restabilizes():
    report = live_chaos(
        script="crash_restart", algorithm="ssrmin", n=4,
        transport="loopback", seed=53, timer_interval=0.05,
        stabilize_timeout=STABILIZE_TIMEOUT,
    )
    health = report["health"]
    assert health["stabilized"]
    assert report["restarts"] >= 1
    assert _final_epoch_violations(health) == []


def test_build_script_rejects_unknown_name():
    """A typo'd script name fails with the valid names, not a KeyError."""
    with pytest.raises(ValueError, match="unknown chaos script") as excinfo:
        build_script("no_such_script", 4)
    message = str(excinfo.value)
    # Helpful, not bare: the error enumerates every registered script.
    for name in ("loss_burst", "partition", "cache_scramble", "storm"):
        assert name in message


def test_script_shape_is_replayable():
    script = build_script("loss_burst", 8, seed=7)
    blob = script.to_json()
    assert blob["name"] == "loss_burst"
    assert all(op["kind"] == "loss" for op in blob["ops"])
    assert script.last_disturbance == pytest.approx(3.2)


@pytest.mark.slow
def test_acceptance_cli_loss_burst_over_udp(tmp_path):
    """ISSUE acceptance: ``repro live chaos --n 8 --script loss_burst``
    runs SSRmin over the asyncio UDP transport, keeps >=1 own-view token
    post-stabilization, and records time-to-restabilize in the manifest.
    Deterministic seed; asserts on the recorded manifest, not stdout."""
    rc = cli.main([
        "live", "chaos", "--n", "8", "--script", "loss_burst",
        "--transport", "udp", "--seed", "7", "--timer-interval", "0.05",
        "--stabilize-timeout", str(STABILIZE_TIMEOUT),
        "--telemetry-dir", str(tmp_path),
    ])
    assert rc == 0
    manifest_path = os.path.join(
        tmp_path, "live-chaos-loss_burst-ssrmin-n8-seed7", "manifest.json"
    )
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    live = manifest["extra"]["live"]
    assert live["algorithm"] == "SSRmin" and live["n"] == 8
    assert live["transport"] == "udp" and live["chaos"]
    assert live["script"]["name"] == "loss_burst"
    health = live["health"]
    # Survived: re-stabilized after the last loss window, with the
    # >=1-own-view-token guarantee intact throughout stabilized instants.
    assert health["stabilized"]
    assert health["time_to_restabilize"] is not None
    assert health["time_to_restabilize"] < STABILIZE_TIMEOUT
    assert health["post_stab_min_holders"] >= 1
    assert _final_epoch_violations(health) == []
    # The chaos actually bit: losses were injected on the wire.
    assert live["transport_stats"]["injected_losses"] > 0
