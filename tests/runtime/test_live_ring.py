"""End-to-end tests: live asyncio rings stabilize and circulate.

No pytest-asyncio in the toolchain, so every test drives its own event
loop via ``asyncio.run`` from a plain sync function.
"""

import asyncio

import pytest

from repro.core.ssrmin import SSRmin
from repro.runtime import RingSupervisor, live_run

#: Generous deadline for loaded CI machines; real latency is ~10ms.
STABILIZE_TIMEOUT = 20.0


def _assert_healthy(report, lo=1, hi=2):
    health = report["health"]
    assert health["stabilized"], health
    assert health["guarantee_violations"] == []
    assert health["post_stab_min_holders"] >= lo
    assert health["post_stab_max_holders"] <= hi
    assert health["token_bounds"] == [lo, hi]


def test_loopback_n4_stabilizes_and_circulates():
    report = live_run(
        algorithm="ssrmin", n=4, transport="loopback", duration=0.5,
        seed=11, timer_interval=0.05, stabilize_timeout=STABILIZE_TIMEOUT,
    )
    _assert_healthy(report)
    # The token actually moved: rules executed on several nodes.
    rules = [s["rules_executed"] for s in report["nodes"].values()]
    assert sum(rules) > 0
    assert report["transport_stats"]["delivered"] > 0


def test_udp_n4_stabilizes():
    report = live_run(
        algorithm="ssrmin", n=4, transport="udp", duration=0.5,
        seed=3, timer_interval=0.05, stabilize_timeout=STABILIZE_TIMEOUT,
    )
    _assert_healthy(report)
    assert report["transport"] == "udp"


def test_dijkstra_loopback_shows_handover_gap():
    """Dijkstra under CST is *not* graceful: the own-view census dips to
    zero while a handover message is in flight (the Figure 13 gap), so
    the monitor counts vacancies instead of flagging violations."""
    report = live_run(
        algorithm="dijkstra", n=4, transport="loopback", duration=0.5,
        seed=5, timer_interval=0.05, stabilize_timeout=STABILIZE_TIMEOUT,
    )
    health = report["health"]
    assert health["stabilized"]
    assert not health["graceful_handover"]
    assert health["guarantee_violations"] == []
    assert health["token_bounds"] == [1, 1]
    # The gap SSRmin closes: token-less own-view instants were observed.
    assert health["vacancy_instants"] > 0


def test_ssrmin_loopback_has_no_vacancy_instants():
    """Theorem 3 live: SSRmin's own view never goes token-less."""
    report = live_run(
        algorithm="ssrmin", n=4, transport="loopback", duration=0.5,
        seed=5, timer_interval=0.05, stabilize_timeout=STABILIZE_TIMEOUT,
    )
    assert report["health"]["graceful_handover"]
    assert report["health"]["vacancy_instants"] == 0


def test_random_initial_configuration_stabilizes():
    """Theorem 4 live: boot from arbitrary states + default caches."""
    report = live_run(
        algorithm="ssrmin", n=4, transport="loopback", duration=0.3,
        seed=29, timer_interval=0.05, initial="random",
        stabilize_timeout=STABILIZE_TIMEOUT,
    )
    health = report["health"]
    assert health["stabilized"]
    # Once stabilized the census bound must hold on legitimate instants.
    final = len(health["epochs"]) - 1
    assert not [v for v in health["guarantee_violations"]
                if v["epoch_index"] == final]


@pytest.mark.slow
def test_loopback_n8_stabilizes_and_circulates():
    report = live_run(
        algorithm="ssrmin", n=8, transport="loopback", duration=1.0,
        seed=8, timer_interval=0.05, stabilize_timeout=STABILIZE_TIMEOUT,
    )
    _assert_healthy(report)
    rules = [s["rules_executed"] for s in report["nodes"].values()]
    assert sum(rules) > 0


def test_kill_node_mid_run_watchdog_restarts_and_restabilizes():
    async def scenario():
        sup = RingSupervisor(
            SSRmin(4, 5), transport="loopback", seed=17,
            timer_interval=0.05, watchdog_interval=0.05,
        )
        try:
            await sup.boot()
            await sup.wait_stabilized(STABILIZE_TIMEOUT)
            victim = 2
            sup.kill(victim)
            assert not sup.servers[victim].alive
            # Watchdog must notice the corpse and bring up a fresh server.
            deadline = asyncio.get_running_loop().time() + STABILIZE_TIMEOUT
            while sup.total_restarts < 1:
                assert asyncio.get_running_loop().time() < deadline, \
                    "watchdog never restarted the killed node"
                await asyncio.sleep(0.02)
            await sup.wait_stabilized(STABILIZE_TIMEOUT)
            await sup.run_for(0.3)
        finally:
            await sup.shutdown()
        return sup.report()

    report = asyncio.run(scenario())
    assert report["restarts"] >= 1
    assert report["crashes_requested"] == 1
    health = report["health"]
    assert health["stabilized"]
    # The crash opened a new epoch; re-stabilization latency is recorded.
    assert any(e["label"].startswith("crash-") or
               e["label"].startswith("restart-")
               for e in health["epochs"][1:])
    assert health["time_to_restabilize"] is not None


def test_wedged_node_detected_and_restarted():
    """A node whose heartbeat dies silently is wedged, not crashed —
    the liveness watchdog must still replace it."""
    async def scenario():
        sup = RingSupervisor(
            SSRmin(4, 5), transport="loopback", seed=23,
            timer_interval=0.05, watchdog_interval=0.05,
            wedge_timeout=0.2,
        )
        try:
            await sup.boot()
            await sup.wait_stabilized(STABILIZE_TIMEOUT)
            # Simulate a wedge: the timer task dies but the server still
            # claims to be running (no crash() bookkeeping happened).
            sup.servers[1]._timer_task.cancel()
            deadline = asyncio.get_running_loop().time() + STABILIZE_TIMEOUT
            while sup.total_restarts < 1:
                assert asyncio.get_running_loop().time() < deadline, \
                    "watchdog never replaced the wedged node"
                await asyncio.sleep(0.02)
            await sup.wait_stabilized(STABILIZE_TIMEOUT)
        finally:
            await sup.shutdown()
        return sup.report()

    report = asyncio.run(scenario())
    assert report["restarts"] >= 1
    assert report["health"]["stabilized"]
