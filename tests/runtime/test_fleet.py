"""Integration tests for the fleet layer, load generator and uvloop shim.

Covers the shared-socket mux (N rings demultiplexed by the ring_id in
their wire headers), the loopback fleet (no sockets — the constrained-CI
path), mixed-version rings (one JSON-speaking node in a binary fleet
ring keeps circulating and raises exactly one structured incident),
open-loop load generation against the critical section, worker-process
sharding (slow-marked) and the stdlib fallback of the optional uvloop
extra.
"""

import asyncio

import pytest

from repro.core.ssrmin import SSRmin
from repro.runtime import (
    FleetSupervisor,
    LoadGenerator,
    RingSpec,
    RingSupervisor,
    default_specs,
    install_uvloop,
    loop_name,
    make_wire,
    render_fleet_report,
    run_fleet,
    run_fleet_sharded,
)


def _run_fleet(specs, **kwargs):
    kwargs.setdefault("duration", 0.4)
    kwargs.setdefault("stabilize_timeout", 10.0)
    return run_fleet(specs, **kwargs)


# -- fleet deployments --------------------------------------------------------

def test_fleet_loopback_two_rings_stabilize():
    report = _run_fleet(
        default_specs(2, n=4, timer_interval=0.05), transport="loopback",
    )
    assert report["schema"] == "repro-fleet/1"
    assert report["rings"] == 2
    assert report["stabilized_rings"] == 2
    assert set(report["ring_reports"]) == {"ring-0", "ring-1"}
    for ring in report["ring_reports"].values():
        assert ring["wire"]["format"] == "binary"
        assert ring["health"]["stabilized"] is True
    assert report["delivered_total"] > 0


def test_fleet_mux_udp_shares_sockets_and_demuxes_rings():
    report = _run_fleet(
        default_specs(3, n=4, timer_interval=0.05),
        transport="mux-udp", sockets=2,
    )
    assert report["stabilized_rings"] == 3
    mux = report["mux"]
    assert mux["sockets"] == 2
    assert mux["frames_in"] > 0
    assert mux["unroutable"] == 0
    # Batching coalesces: never more datagrams than frames.
    assert mux["datagrams_out"] <= mux["frames_out"]
    lines = render_fleet_report(report)
    assert any("3 rings over mux-udp" in line for line in lines)


def test_fleet_heterogeneous_wires_per_ring():
    specs = [
        RingSpec(name="json-ring", n=4, wire="json", timer_interval=0.05),
        RingSpec(name="bin-ring", n=4, wire="binary", timer_interval=0.05),
    ]
    report = _run_fleet(specs, transport="mux-udp")
    assert report["stabilized_rings"] == 2
    assert report["ring_reports"]["json-ring"]["wire"]["format"] == "json"
    assert report["ring_reports"]["bin-ring"]["wire"]["format"] == "binary"


def test_fleet_rejects_bad_configs():
    with pytest.raises(ValueError):
        FleetSupervisor([])
    dup = default_specs(1) + default_specs(1)
    with pytest.raises(ValueError):
        FleetSupervisor(dup)
    with pytest.raises(ValueError):
        FleetSupervisor(default_specs(1), transport="carrier-pigeon")


# -- mixed-version ring (rolling upgrade regression) --------------------------

def test_mixed_wire_ring_circulates_with_one_structured_incident():
    """A JSON-speaking node in a binary ring: traffic flows, one incident."""

    async def scenario():
        alg = SSRmin(4, 5)
        sup = RingSupervisor(
            alg, transport="loopback", wire="binary", timer_interval=0.05,
        )
        fallbacks = []
        sup.bus.subscribe(
            lambda ev: fallbacks.append(ev.payload)
            if ev.kind == "wire_fallback" else None
        )
        await sup.boot()
        # Downgrade node 2 mid-flight: its frames go out as JSON while
        # everyone else (including it, on receive) sniffs per frame.
        sup.transport.set_wire(
            make_wire("json", algorithm=alg), node=2,
        )
        await sup.wait_stabilized(10.0)
        await sup.run_for(0.4)
        await sup.shutdown()
        return sup.report(), fallbacks

    report, fallbacks = asyncio.run(scenario())
    assert report["health"]["stabilized"] is True
    wire = report["wire"]
    assert wire["fallback_decodes"] > 0
    assert wire["fallback_peers"] == {2: "json"}
    # The once-per-peer structured incident the supervisor publishes.
    assert len(fallbacks) == 1
    assert fallbacks[0]["node"] == 2
    assert fallbacks[0]["spoken"] == "binary"
    assert fallbacks[0]["received"] == "json"


# -- load generation ----------------------------------------------------------

def test_loadgen_serves_requests_with_zero_vacancy_blocking():
    """SSRmin's graceful handover: demand never waits on a token vacancy."""
    specs = default_specs(
        1, n=4, timer_interval=0.05, load_rate=400.0,
    )
    report = _run_fleet(specs, transport="loopback", duration=0.6)
    load = report["ring_reports"]["ring-0"]["load"]
    assert load["requests"] > 0
    assert load["served"] == load["requests"]
    assert load["pending"] == 0
    # >= 1 own-view holder at every tick (Theorem 3, operationally).
    assert load["blocked_ticks"] == 0


def test_loadgen_report_shape():
    async def scenario():
        sup = RingSupervisor(
            SSRmin(4, 5), transport="loopback", timer_interval=0.05,
        )
        await sup.boot()
        await sup.wait_stabilized(10.0)
        gen = LoadGenerator(sup, rate=300.0, seed=7)
        report = await gen.run(0.3)
        await sup.shutdown()
        return report

    report = asyncio.run(scenario())
    data = report.to_json()
    assert data["rate"] == 300.0
    assert data["served"] + data["pending"] == data["requests"]
    assert data["wait_p99"] >= data["wait_p50"] >= 0.0
    assert report.throughput >= 0.0


# -- worker-process sharding --------------------------------------------------

@pytest.mark.slow
def test_fleet_sharded_across_worker_processes():
    report = run_fleet_sharded(
        default_specs(4, n=4, timer_interval=0.05),
        workers=2, duration=0.4, transport="mux-udp",
    )
    assert report["rings"] == 4
    assert report["stabilized_rings"] == 4
    assert report["workers"] == 2
    assert len(set(report["worker_pids"])) == 2
    assert set(report["ring_reports"]) == {
        "ring-0", "ring-1", "ring-2", "ring-3",
    }


def test_fleet_sharded_degrades_to_single_process():
    report = run_fleet_sharded(
        default_specs(2, n=4, timer_interval=0.05),
        workers=1, duration=0.3, transport="loopback",
    )
    assert report["stabilized_rings"] == 2
    assert "workers" not in report


# -- optional uvloop ----------------------------------------------------------

def test_uvloop_absent_falls_back_to_stdlib():
    try:
        import uvloop  # noqa: F401
    except ImportError:
        pass
    else:
        pytest.skip("uvloop installed; fallback path not reachable")
    assert install_uvloop(True) is False
    assert loop_name() == "asyncio"
    # The runtime stays fully functional on the stdlib loop.
    report = _run_fleet(
        default_specs(1, n=3, timer_interval=0.05),
        transport="loopback", duration=0.2,
    )
    assert report["loop"] == "asyncio"
    assert report["stabilized_rings"] == 1


def test_install_uvloop_disabled_resets_policy():
    assert install_uvloop(False) is False
    assert loop_name() == "asyncio"
