"""Property tests for the packed binary wire (encode/decode identity).

Hypothesis drives the round trips over the full packed-word domain of
each algorithm's MPCodec (SSRmin ``(x << 2) | (rts << 1) | tra`` with
``x < K``; Dijkstra the bare counter ``< K``), plus adversarial inputs:
truncated headers, corrupted lead bytes, foreign ring ids, out-of-domain
words, and mixed-format batches.  The runtime-smoke CI job installs
hypothesis explicitly; elsewhere the module skips when it is absent.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.algorithms.dijkstra import DijkstraKState
from repro.core.ssrmin import SSRmin
from repro.runtime.wire import (
    BINARY_HEADER,
    BINARY_WIRE_VERSION,
    MAX_BATCH_FRAMES,
    Wire,
    WireError,
    binary_frame,
    frame_format,
    json_frame,
    make_wire,
    pack_batch,
    parse_binary_header,
    split_frames,
)

# A few representative ring geometries per algorithm.
SSRMIN_DIMS = [(3, 4), (5, 6), (8, 9), (16, 17)]
DIJKSTRA_DIMS = [(3, 4), (5, 6), (8, 9)]


def _ssrmin_wire(n, K, fmt="binary", ring_id=0):
    return make_wire(fmt, algorithm=SSRmin(n, K), ring_id=ring_id)


def _dijkstra_wire(n, K, fmt="binary", ring_id=0):
    return make_wire(fmt, algorithm=DijkstraKState(n, K), ring_id=ring_id)


# -- round-trip identity over the packed domains ------------------------------

@settings(max_examples=200, deadline=None)
@given(
    dims=st.sampled_from(SSRMIN_DIMS),
    word=st.integers(min_value=0),
    src=st.integers(min_value=0, max_value=0xFFFF),
    dst=st.integers(min_value=0, max_value=0xFFFF),
    data=st.data(),
)
def test_ssrmin_binary_roundtrip_identity(dims, word, src, dst, data):
    n, K = dims
    wire = _ssrmin_wire(n, K)
    word = word % wire.packed_bound
    state = wire.codec.unpack(word)
    frame = wire.encode(src, dst, state)
    assert frame_format(frame) == "binary"
    assert len(frame) == BINARY_HEADER.size
    decoded = wire.decode(frame)
    assert decoded == [(src, dst, state)]
    # The wire word is exactly the fastpath engine's packed integer.
    assert parse_binary_header(frame)[4] == wire.codec.pack(state)


@settings(max_examples=100, deadline=None)
@given(
    dims=st.sampled_from(DIJKSTRA_DIMS),
    word=st.integers(min_value=0),
    src=st.integers(min_value=0, max_value=0xFFFF),
)
def test_dijkstra_binary_roundtrip_identity(dims, word, src):
    n, K = dims
    wire = _dijkstra_wire(n, K)
    word = word % wire.packed_bound
    state = wire.codec.unpack(word)
    assert wire.decode(wire.encode(src, 0, state)) == [(src, 0, state)]


def test_full_domain_exhaustive_small_ring():
    """Every packed word of SSRmin(5, 6) survives the wire unchanged."""
    wire = _ssrmin_wire(5, 6)
    for word in range(wire.packed_bound):
        state = wire.codec.unpack(word)
        assert wire.decode(wire.encode(0, 1, state)) == [(0, 1, state)]


# -- adversarial frames are rejected, never mis-decoded -----------------------

@settings(max_examples=200, deadline=None)
@given(
    word=st.integers(min_value=0, max_value=(6 << 2) - 1),
    cut=st.integers(min_value=0, max_value=BINARY_HEADER.size - 1),
)
def test_truncated_binary_frame_rejected(word, cut):
    wire = _ssrmin_wire(5, 6)
    frame = binary_frame(0, 1, 7, word)
    truncated = frame[:cut]
    with pytest.raises((WireError, ValueError)):
        wire.decode(truncated)


@settings(max_examples=200, deadline=None)
@given(data=st.binary(min_size=1, max_size=64))
def test_garbage_never_decodes_silently(data):
    """Random bytes either raise WireError or decode to in-domain states."""
    wire = _ssrmin_wire(5, 6)
    try:
        frames = wire.decode(data)
    except WireError:
        return
    for _src, _dst, state in frames:
        assert wire.codec.try_pack(state) is not None


@settings(max_examples=100, deadline=None)
@given(extra=st.integers(min_value=0, max_value=1000))
def test_out_of_domain_word_rejected(extra):
    wire = _ssrmin_wire(5, 6)
    bad = binary_frame(0, 1, 0, wire.packed_bound + extra)
    with pytest.raises(WireError):
        wire.decode(bad)


def test_wrong_version_byte_rejected():
    wire = _ssrmin_wire(5, 6)
    frame = bytearray(binary_frame(0, 1, 0, 3))
    frame[0] = BINARY_WIRE_VERSION + 1
    with pytest.raises(WireError):
        wire.decode(bytes(frame))


def test_foreign_ring_id_rejected():
    ours = _ssrmin_wire(5, 6, ring_id=1)
    theirs = _ssrmin_wire(5, 6, ring_id=2)
    frame = theirs.encode(0, 1, theirs.codec.unpack(5))
    with pytest.raises(WireError):
        ours.decode(frame)


# -- batching -----------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(
    words=st.lists(
        st.integers(min_value=0, max_value=(6 << 2) - 1),
        min_size=1, max_size=32,
    )
)
def test_batch_roundtrip_preserves_order_and_states(words):
    wire = _ssrmin_wire(5, 6)
    frames = [
        wire.encode(i % 5, (i + 1) % 5, wire.codec.unpack(w))
        for i, w in enumerate(words)
    ]
    messages = wire.decode(pack_batch(frames))
    assert messages == [
        (i % 5, (i + 1) % 5, wire.codec.unpack(w))
        for i, w in enumerate(words)
    ]


@settings(max_examples=50, deadline=None)
@given(
    words=st.lists(
        st.integers(min_value=0, max_value=(6 << 2) - 1),
        min_size=2, max_size=8,
    ),
    cut=st.integers(min_value=1, max_value=10),
)
def test_truncated_batch_rejected(words, cut):
    wire = _ssrmin_wire(5, 6)
    frames = [wire.encode(0, 1, wire.codec.unpack(w)) for w in words]
    batch = pack_batch(frames)
    with pytest.raises(WireError):
        list(split_frames(batch[:len(batch) - cut]))


def test_batch_size_cap_enforced():
    frame = binary_frame(0, 1, 0, 3)
    with pytest.raises(ValueError):
        pack_batch([frame] * (MAX_BATCH_FRAMES + 1))


def test_single_frame_batch_passes_through_raw():
    frame = binary_frame(0, 1, 0, 3)
    assert pack_batch([frame]) == frame


# -- mixed-format negotiation -------------------------------------------------

def test_json_speaker_decodes_binary_with_fallback_accounting():
    events = []
    wire = Wire(
        "json",
        codec=SSRmin(5, 6).mp_codec(),
        on_fallback=lambda peer, fmt: events.append((peer, fmt)),
    )
    state = wire.codec.unpack(9)
    upgraded = _ssrmin_wire(5, 6)
    frame = upgraded.encode(3, 4, state)
    assert wire.decode(frame) == [(3, 4, state)]
    assert wire.decode(frame) == [(3, 4, state)]
    # Two fallback decodes, but the structured incident fires once per peer.
    assert wire.fallback_decodes == 2
    assert events == [(3, "binary")]
    assert wire.stats()["fallback_peers"] == {3: "binary"}


def test_binary_speaker_decodes_json_with_fallback_accounting():
    wire = _ssrmin_wire(5, 6)
    state = wire.codec.unpack(9)
    assert wire.decode(json_frame(2, 0, state)) == [(2, 0, state)]
    assert wire.peer_fallbacks == {2: "json"}


def test_binary_speaker_json_fallback_for_out_of_domain_state():
    """Injected fault values outside the packed domain still travel."""
    wire = _ssrmin_wire(5, 6)
    weird = (99, (1, 0), (0, 1))  # x=99 >= K: not packable
    frame = wire.encode(0, 1, weird)
    assert frame_format(frame) == "json"
    assert wire.encode_fallbacks == 1
    assert wire.decode(frame) == [(0, 1, weird)]


def test_mixed_format_batch_decodes():
    wire = _ssrmin_wire(5, 6)
    state = wire.codec.unpack(4)
    batch = pack_batch([
        wire.encode(0, 1, state),
        json_frame(1, 2, state),
    ])
    assert wire.decode(batch) == [(0, 1, state), (1, 2, state)]


def test_binary_wire_requires_codec():
    with pytest.raises(ValueError):
        Wire("binary", codec=None)
