"""Property tests (hypothesis) for the chaos script builders.

The named scripts in :data:`repro.runtime.chaos.SCRIPTS` are factories
``(n, seed) -> ChaosScript``; these properties pin what every factory
must guarantee for *any* ring size, including the degenerate n=1 and n=2
rings the hand-written tests never touched:

* determinism — the same ``(name, n, seed)`` always builds the same ops
  (replayability is the whole point of scripted chaos);
* partitions heal — every cut edge stays inside the ring and every
  partition window closes (finite duration), so a partition can never
  wedge a run forever;
* structural validity — ops stay inside the declared kind taxonomy and
  the script timeline is well-formed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaoslab.faults import FaultConfig, FaultType
from repro.runtime.chaos import (
    POINT_KINDS,
    SCRIPTS,
    WINDOW_KINDS,
    build_script,
    ring_cut_edges,
)

script_names = st.sampled_from(sorted(SCRIPTS))
ring_sizes = st.integers(min_value=1, max_value=64)
seeds = st.integers(min_value=0, max_value=2 ** 20)


@given(name=script_names, n=ring_sizes, seed=seeds)
@settings(max_examples=60)
def test_builders_are_deterministic_under_fixed_seed(name, n, seed):
    first = build_script(name, n, seed)
    again = build_script(name, n, seed)
    assert first.to_json() == again.to_json()


@given(name=script_names, n=ring_sizes, seed=seeds)
@settings(max_examples=60)
def test_ops_are_well_formed_for_any_ring_size(name, n, seed):
    script = build_script(name, n, seed)
    assert script.ops, f"{name} built an empty script"
    for op in script.ops:
        assert op.kind in WINDOW_KINDS + POINT_KINDS
        assert op.at >= 0.0
        if op.kind in WINDOW_KINDS:
            assert op.duration > 0.0
        if "node" in op.params:
            assert 0 <= op.params["node"] < n
        if "neighbor" in op.params:
            assert 0 <= op.params["neighbor"] < n
    assert script.duration >= script.last_disturbance >= 0.0


@given(n=ring_sizes, seed=seeds)
@settings(max_examples=60)
def test_partitions_always_heal(n, seed):
    """Every partition window has in-ring edges and a finite close."""
    for name in sorted(SCRIPTS):
        script = build_script(name, n, seed)
        for op in script.ops:
            if op.kind != "partition":
                continue
            assert op.duration > 0.0  # the window closes: the cut heals
            for src, dst in op.params["edges"]:
                assert 0 <= src < n
                assert 0 <= dst < n


@given(n=ring_sizes, bisect=st.booleans())
@settings(max_examples=60)
def test_ring_cut_edges_stay_in_ring_and_deduplicate(n, bisect):
    edges = ring_cut_edges(n, bisect=bisect)
    assert len(edges) == len(set(edges))
    for src, dst in edges:
        assert 0 <= src < n
        assert 0 <= dst < n
    if n < 2:
        assert edges == []  # a 1-ring has no channels to cut
    else:
        assert (0, 1) in edges


def test_degenerate_rings_build_every_script():
    """n=1 and n=2 were the historical out-of-range crashes: node ids
    must stay in range and partition edges must stay in the ring."""
    for n in (1, 2):
        for name in sorted(SCRIPTS):
            script = build_script(name, n, seed=0)
            for op in script.ops:
                for key in ("node", "neighbor"):
                    if key in op.params:
                        assert 0 <= op.params[key] < n
                if op.kind == "partition":
                    for src, dst in op.params["edges"]:
                        assert 0 <= src < n and 0 <= dst < n


@given(
    fault_type=st.sampled_from(sorted(FaultType, key=lambda f: f.value)),
    n=ring_sizes,
    seed=seeds,
    severity=st.floats(min_value=0.0, max_value=1.0,
                       allow_nan=False, allow_infinity=False),
)
@settings(max_examples=80)
def test_fault_config_lowering_replays_for_any_ring(
    fault_type, n, seed, severity,
):
    """The declarative layer inherits the builders' guarantees: typed
    faults compile deterministically to in-taxonomy, in-ring ops."""
    config = FaultConfig(fault_type, severity=severity)
    first = [op.to_json() for op in config.compile(n, seed)]
    again = [op.to_json() for op in config.compile(n, seed)]
    assert first == again
    for op in config.compile(n, seed):
        assert op.kind in WINDOW_KINDS + POINT_KINDS
        for key in ("node", "neighbor"):
            if key in op.params:
                assert 0 <= op.params[key] < n
        if op.kind == "partition":
            for src, dst in op.params["edges"]:
                assert 0 <= src < n and 0 <= dst < n
