"""Unit tests for the live transports and the wire format."""

import asyncio

import pytest

from repro.runtime.transport import (
    ChaosTransport,
    LoopbackTransport,
    UdpTransport,
)
from repro.runtime.wire import WireError, decode_message, encode_message


# -- wire format --------------------------------------------------------------

def test_wire_roundtrip_tuple_state():
    sender, state = 3, (2, (1, 0), (0, 1))
    assert decode_message(encode_message(sender, state)) == (sender, state)


def test_wire_roundtrip_int_state():
    assert decode_message(encode_message(0, 7)) == (0, 7)


@pytest.mark.parametrize("garbage", [
    b"", b"not json", b"[1,2]", b'{"v": 999, "s": 0, "q": 1}',
    b'{"v": 1, "q": 1}', b'{"v": 1, "s": "zero", "q": 1}',
])
def test_wire_rejects_garbage(garbage):
    with pytest.raises(WireError):
        decode_message(garbage)


# -- loopback -----------------------------------------------------------------

def _collect(transport, indices):
    """Register recording receivers; returns {index: [(sender, state)]}."""
    inbox = {i: [] for i in indices}

    def receiver(i):
        return lambda sender, state: inbox[i].append((sender, state))

    for i in indices:
        transport.register(i, receiver(i))
    return inbox


def test_loopback_delivers_between_registered_nodes():
    async def scenario():
        transport = LoopbackTransport()
        await transport.start()
        inbox = _collect(transport, [0, 1])
        transport.post(0, 1, (1, (0, 0), (0, 0)))
        transport.post(1, 0, 5)
        await asyncio.sleep(0)  # one loop tick: call_soon deliveries land
        await transport.close()
        return inbox, transport.stats()

    inbox, stats = asyncio.run(scenario())
    assert inbox[1] == [(0, (1, (0, 0), (0, 0)))]
    assert inbox[0] == [(1, 5)]
    assert stats["sent"] == 2 and stats["delivered"] == 2


def test_loopback_drops_for_unregistered_destination():
    async def scenario():
        transport = LoopbackTransport()
        await transport.start()
        _collect(transport, [0])
        transport.post(0, 9, 1)
        await asyncio.sleep(0)
        await transport.close()
        return transport.stats()

    stats = asyncio.run(scenario())
    assert stats["delivered"] == 0 and stats["dropped"] == 1


# -- udp ----------------------------------------------------------------------

def test_udp_delivers_over_localhost_sockets():
    async def scenario():
        transport = UdpTransport([0, 1, 2])
        await transport.start()
        inbox = _collect(transport, [0, 1, 2])
        transport.post(0, 1, (3, (1, 1), (0, 0)))
        transport.post(2, 0, (1, (0, 1), (1, 0)))
        for _ in range(50):
            await asyncio.sleep(0.01)
            if inbox[1] and inbox[0]:
                break
        await transport.close()
        return inbox

    inbox = asyncio.run(scenario())
    assert inbox[1] == [(0, (3, (1, 1), (0, 0)))]
    assert inbox[0] == [(2, (1, (0, 1), (1, 0)))]


# -- chaos decorator ----------------------------------------------------------

def test_chaos_full_loss_drops_everything():
    async def scenario():
        chaos = ChaosTransport(LoopbackTransport(), seed=1)
        await chaos.start()
        inbox = _collect(chaos, [0, 1])
        chaos.loss_p = 1.0
        for _ in range(10):
            chaos.post(0, 1, 7)
        await asyncio.sleep(0)
        await chaos.close()
        return inbox, chaos.stats()

    inbox, stats = asyncio.run(scenario())
    assert inbox[1] == []
    assert stats["injected_losses"] == 10
    assert stats["delivered"] == 0


def test_chaos_duplicate_delivers_twice():
    async def scenario():
        chaos = ChaosTransport(LoopbackTransport(), seed=1)
        await chaos.start()
        inbox = _collect(chaos, [0, 1])
        chaos.duplicate_p = 1.0
        chaos.post(0, 1, 7)
        await asyncio.sleep(0.01)
        await chaos.close()
        return inbox, chaos.stats()

    inbox, stats = asyncio.run(scenario())
    assert inbox[1] == [(0, 7), (0, 7)]
    assert stats["injected_duplicates"] == 1


def test_chaos_partition_cut_and_heal():
    async def scenario():
        chaos = ChaosTransport(LoopbackTransport(), seed=1)
        await chaos.start()
        inbox = _collect(chaos, [0, 1])
        chaos.cut([(0, 1)])  # cuts both directions
        chaos.post(0, 1, 1)
        chaos.post(1, 0, 2)
        await asyncio.sleep(0)
        blocked = dict(chaos.stats())
        chaos.heal([(0, 1)])
        chaos.post(0, 1, 3)
        await asyncio.sleep(0)
        await chaos.close()
        return inbox, blocked

    inbox, blocked = asyncio.run(scenario())
    assert blocked["blocked_by_partition"] == 2
    assert inbox[1] == [(0, 3)]
    assert inbox[0] == []


def test_chaos_calm_resets_all_knobs():
    async def scenario():
        chaos = ChaosTransport(LoopbackTransport(), seed=1)
        await chaos.start()
        inbox = _collect(chaos, [0, 1])
        chaos.loss_p = 1.0
        chaos.duplicate_p = 1.0
        chaos.cut([(0, 1)])
        chaos.calm()
        chaos.post(0, 1, 42)
        await asyncio.sleep(0)
        await chaos.close()
        return inbox

    inbox = asyncio.run(scenario())
    assert inbox[1] == [(0, 42)]


def test_chaos_delay_window_defers_delivery():
    async def scenario():
        chaos = ChaosTransport(LoopbackTransport(), seed=1)
        await chaos.start()
        inbox = _collect(chaos, [0, 1])
        chaos.delay_range = (0.03, 0.05)
        chaos.post(0, 1, 9)
        await asyncio.sleep(0)
        immediate = list(inbox[1])
        await asyncio.sleep(0.1)
        await chaos.close()
        return immediate, inbox[1], chaos.stats()

    immediate, eventual, stats = asyncio.run(scenario())
    assert immediate == []
    assert eventual == [(0, 9)]
    assert stats["injected_delays"] == 1


# -- send-side batching -------------------------------------------------------

def test_udp_batch_coalesces_datagrams():
    from repro.core.ssrmin import SSRmin
    from repro.runtime.wire import make_wire

    async def scenario():
        transport = UdpTransport([0, 1], batch=True)
        transport.set_wire(make_wire("binary", algorithm=SSRmin(5, 6)))
        await transport.start()
        inbox = _collect(transport, [0, 1])
        for i in range(20):
            transport.post(0, 1, (i % 6, (0, 0), (0, 0)))
        for _ in range(100):
            await asyncio.sleep(0.01)
            if len(inbox[1]) >= 20:
                break
        await transport.close()
        return inbox, transport.stats()

    inbox, stats = asyncio.run(scenario())
    assert len(inbox[1]) == 20
    assert [s for _, s in inbox[1]] == [
        (i % 6, (0, 0), (0, 0)) for i in range(20)
    ]
    assert stats["batched"]
    # 20 same-tick posts to one peer coalesce into far fewer datagrams.
    assert stats["datagrams_out"] < 20


def test_udp_unbatched_sends_one_datagram_per_message():
    async def scenario():
        transport = UdpTransport([0, 1], batch=False)
        await transport.start()
        inbox = _collect(transport, [0, 1])
        for i in range(5):
            transport.post(0, 1, i)
        for _ in range(100):
            await asyncio.sleep(0.01)
            if len(inbox[1]) >= 5:
                break
        await transport.close()
        return transport.stats()

    stats = asyncio.run(scenario())
    assert stats["datagrams_out"] == 5


# -- fleet mux ----------------------------------------------------------------

def test_mux_routes_frames_to_their_own_ring():
    from repro.runtime.transport import MuxUdpTransport

    async def scenario():
        mux = MuxUdpTransport(sockets=2, batch=True)
        ring_a = mux.view(0, 3)
        ring_b = mux.view(1, 3)
        inbox_a = _collect(ring_a, [0, 1, 2])
        inbox_b = _collect(ring_b, [0, 1, 2])
        await ring_a.start()
        await ring_b.start()
        ring_a.post(0, 1, "for-ring-a")
        ring_b.post(0, 1, "for-ring-b")
        for _ in range(100):
            await asyncio.sleep(0.01)
            if inbox_a[1] and inbox_b[1]:
                break
        stats = mux.stats()
        await ring_a.close()
        await ring_b.close()
        return inbox_a, inbox_b, stats

    inbox_a, inbox_b, stats = asyncio.run(scenario())
    # Same node indices on both rings, no cross-ring leakage.
    assert inbox_a[1] == [(0, "for-ring-a")]
    assert inbox_b[1] == [(0, "for-ring-b")]
    assert stats["sockets"] == 2
    assert stats["frames_in"] == 2
    assert stats["unroutable"] == 0


def test_mux_refcounts_socket_lifecycle():
    from repro.runtime.transport import MuxUdpTransport

    async def scenario():
        mux = MuxUdpTransport(sockets=1)
        ring_a = mux.view(0, 2)
        ring_b = mux.view(1, 2)
        await ring_a.start()
        await ring_b.start()
        await ring_a.close()   # pool must survive the first release
        alive_after_one = mux.started
        await ring_b.close()   # last release tears the sockets down
        return alive_after_one, mux.started

    alive_after_one, alive_after_both = asyncio.run(scenario())
    assert alive_after_one is True
    assert alive_after_both is False


def test_chaos_proxies_wire_to_inner_transport():
    from repro.core.ssrmin import SSRmin
    from repro.runtime.wire import make_wire

    inner = LoopbackTransport()
    chaos = ChaosTransport(inner, seed=1)
    wire = make_wire("binary", algorithm=SSRmin(5, 6))
    chaos.set_wire(wire)
    assert inner.wire is wire
    assert chaos.wire_for(0) is wire
    per_node = make_wire("json", algorithm=SSRmin(5, 6))
    chaos.set_wire(per_node, node=2)
    assert chaos.wire_for(2) is per_node
    assert chaos.wire_for(0) is wire
