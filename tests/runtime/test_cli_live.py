"""CLI-level tests for ``repro live run|chaos|status``."""

import json
import os

import pytest

from repro import cli



def test_live_run_no_telemetry_exits_zero(capsys):
    rc = cli.main([
        "live", "run", "--n", "4", "--timer-interval", "0.05",
        "--duration", "0.3", "--seed", "2", "--no-telemetry",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "result: HEALTHY" in out
    assert "stabilized: True" in out
    assert "telemetry:" not in out


def test_live_run_writes_manifest(tmp_path, capsys):
    rc = cli.main([
        "live", "run", "--n", "4", "--timer-interval", "0.05",
        "--duration", "0.3", "--seed", "2",
        "--telemetry-dir", str(tmp_path),
    ])
    assert rc == 0
    path = os.path.join(tmp_path, "live-run-ssrmin-n4-seed2", "manifest.json")
    with open(path) as fh:
        manifest = json.load(fh)
    live = manifest["extra"]["live"]
    assert live["health"]["stabilized"]
    assert manifest["command"].startswith("repro live run")
    # Runtime metrics were flushed into the session registry.
    assert "live_rules_executed_total" in manifest["metrics"]["counters"]

    # status over the directory summarizes the run and exits 0.
    capsys.readouterr()
    rc = cli.main(["live", "status", "--telemetry-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "live-run-ssrmin-n4-seed2" in out
    assert out.startswith("ok")


def test_live_status_empty_dir_exits_nonzero(tmp_path, capsys):
    rc = cli.main(["live", "status", "--telemetry-dir", str(tmp_path)])
    assert rc == 1
    assert "no live run manifests" in capsys.readouterr().out


def test_live_chaos_rejects_unknown_script():
    with pytest.raises(SystemExit):
        cli.main(["live", "chaos", "--script", "nope", "--no-telemetry"])
