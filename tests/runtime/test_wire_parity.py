"""Golden-trace parity: the wire format must not change health verdicts.

The checked-in Figure-13 golden trace pins the scenario (SSRmin, n=5,
K=6, seed 13).  This test replays that scenario as a *live* chaos run
twice — once over the versioned-JSON wire, once over the packed binary
fastpath — and requires the online HealthMonitor to reach the same
verdicts: same epoch structure, stabilization everywhere, zero own-view
vacancy instants (the graceful-handover guarantee the golden trace
witnesses), and a clean final epoch.

Epoch labels embed wall-clock timestamps (``loss-healed@1.73s``), so
structure is compared on the label *kind* (the part before ``@``), never
on raw strings.
"""

import json
import os

import pytest

from repro.chaoslab import ChaosExperiment, FaultConfig, FaultType, run_experiment
from repro.runtime import build_script

GOLDEN = os.path.join(
    os.path.dirname(__file__), "..", "corpus", "golden_fig13_timeline.jsonl"
)


def _golden_header() -> dict:
    with open(GOLDEN) as fh:
        return json.loads(fh.readline())


def _label_kind(label: str) -> str:
    return label.split("@", 1)[0]


def _verdicts(report: dict) -> dict:
    health = report["health"]
    return {
        "epoch_kinds": [_label_kind(e["label"]) for e in health["epochs"]],
        "epoch_stabilized": [
            e["time_to_stabilize"] is not None for e in health["epochs"]
        ],
        "stabilized": health["stabilized"],
        "vacancy_instants": health["vacancy_instants"],
        "final_epoch_violations": sum(
            1 for v in health["guarantee_violations"]
            if v.get("epoch_index") == len(health["epochs"]) - 1
        ),
        "min_holders_positive": health["post_stab_min_holders"] is not None
        and health["post_stab_min_holders"] >= 1,
    }


@pytest.mark.slow
def test_fig13_chaos_verdicts_identical_under_both_wires():
    header = _golden_header()
    assert header["algorithm"] == "SSRmin"
    n, K, seed = header["n"], header["K"], header["seed"]

    # The declarative faults that lower to exactly the loss_burst script
    # the golden scenario pins (two Bernoulli-loss windows).
    faults = (
        FaultConfig(FaultType.LOSS, at=0.6, duration=1.0, severity=0.6),
        FaultConfig(FaultType.LOSS, at=2.4, duration=0.8, severity=0.4),
    )

    def run(wire: str) -> dict:
        experiment = ChaosExperiment(
            name="fig13-parity",
            faults=faults,
            algorithm="ssrmin",
            n=n,
            K=K,
            seed=seed,
            transport="loopback",
            timer_interval=0.05,
            settle=3.0,
            extra_duration=0.3,
            wire=wire,
        )
        assert [op.to_json() for op in experiment.compile().ops] == [
            op.to_json() for op in build_script("loss_burst", n, seed).ops
        ]
        return run_experiment(experiment).report

    via_json = run("json")
    via_binary = run("binary")

    assert via_json["wire"]["format"] == "json"
    assert via_binary["wire"]["format"] == "binary"
    # The binary run really used the fastpath: no silent JSON fallback.
    assert via_binary["wire"]["fallback_decodes"] == 0
    assert via_binary["wire"]["fallback_peers"] == {}

    vj, vb = _verdicts(via_json), _verdicts(via_binary)
    assert vj == vb, f"wire format changed health verdicts: {vj} vs {vb}"

    # And both match what the golden scenario promises: restabilization
    # with graceful handover (zero own-view vacancy, min census >= 1).
    assert vb["stabilized"] is True
    assert all(vb["epoch_stabilized"])
    assert vb["vacancy_instants"] == 0
    assert vb["final_epoch_violations"] == 0
    assert vb["min_holders_positive"] is True
    assert vb["epoch_kinds"][0] == "boot"
    assert "loss" in "".join(vb["epoch_kinds"])
