"""HealthMonitor epoch edge cases.

Three scenarios the dashboard and SLO engine must get right:

* a disturbance arriving *before* the ring ever stabilized (the boot epoch
  closes un-stabilized; the merged view treats boot + fault as one outage);
* back-to-back chaos ops with no re-stabilization between them (one
  logical outage, not two — ``merge_epochs`` collapses them);
* vacancy counting across a watchdog restart (the monitor outlives node
  objects, so Dijkstra's handover-gap counter is monotone over restarts).

The first two drive a :class:`HealthMonitor` directly with fake nodes and
a fake clock (fully deterministic); the last uses a real supervisor.
"""

import asyncio
from typing import List

from repro.core.ssrmin import SSRmin
from repro.observability.slo import merge_epochs
from repro.runtime.health import HealthMonitor

STABILIZE_TIMEOUT = 20.0


class FakeNode:
    """index/state/cache/view() — the shape HealthMonitor reads."""

    def __init__(self, alg, index: int, state):
        self.algorithm = alg
        self.index = index
        self.state = state
        self.cache = {}

    def view(self):
        v: List = [None] * self.algorithm.n
        v[self.index] = self.state
        for k, val in self.cache.items():
            v[k] = val
        return v


def _ring(alg, config):
    nodes = [FakeNode(alg, i, s) for i, s in enumerate(config)]
    for node in nodes:
        for k in ((node.index - 1) % alg.n, (node.index + 1) % alg.n):
            node.cache[k] = nodes[k].state
    return nodes


def _monitor(alg, nodes, clock_box):
    return HealthMonitor(alg, lambda: nodes, lambda: clock_box[0])


def _scramble(nodes, alg):
    """Make node 0's cache stale: neither legitimate-looking nor coherent."""
    space = alg.local_state_space()
    wrong = next(s for s in space if s != nodes[1].state)
    nodes[0].cache[1] = wrong


def test_disturbance_before_first_stabilization():
    alg = SSRmin(3, 4)
    nodes = _ring(alg, alg.initial_configuration())
    clock = [0.0]
    monitor = _monitor(alg, nodes, clock)

    # Boot epoch never stabilizes: the caches are scrambled from the start.
    _scramble(nodes, alg)
    clock[0] = 0.1
    monitor.notify()
    assert not monitor.stabilized

    # The fault hits *before* the first stabilization.
    clock[0] = 0.5
    monitor.note_disturbance("corrupt-state-0")
    assert len(monitor.epochs) == 2
    assert monitor.epochs[0].stabilized_at is None

    # Repair: legitimate + coherent for the first time ever.
    nodes[0].cache[1] = nodes[1].state
    clock[0] = 0.8
    snap = monitor.notify()
    assert snap.legitimate and snap.coherent
    assert monitor.stabilized
    assert monitor.epochs[1].time_to_stabilize == 0.8 - 0.5

    # Merged view: boot + fault are ONE outage, classed by the last label,
    # with the restabilization clock anchored at the last disturbance.
    merged = merge_epochs([e.to_json() for e in monitor.epochs])
    assert len(merged) == 1
    assert merged[0]["class"] == "corrupt-state"
    assert merged[0]["labels"] == ["boot", "corrupt-state-0"]
    assert merged[0]["first_started_at"] == 0.0
    assert merged[0]["started_at"] == 0.5
    assert merged[0]["time_to_stabilize"] == 0.8 - 0.5


def test_back_to_back_ops_collapse_into_one_outage():
    alg = SSRmin(3, 4)
    nodes = _ring(alg, alg.initial_configuration())
    clock = [0.0]
    monitor = _monitor(alg, nodes, clock)

    opened, stabilized = [], []
    monitor.on_epoch_open = lambda i, e: opened.append((i, e.label))
    monitor.on_epoch_stabilized = lambda i, e: stabilized.append(i)

    clock[0] = 0.05
    monitor.notify()
    assert monitor.stabilized  # boot epoch closes immediately

    # Two chaos ops in quick succession, no re-stabilization between.
    clock[0] = 1.0
    _scramble(nodes, alg)
    monitor.note_disturbance("loss@1.00s")
    monitor.notify()
    clock[0] = 1.2
    monitor.note_disturbance("crash-2")
    monitor.notify()
    assert opened == [(1, "loss@1.00s"), (2, "crash-2")]
    assert monitor.epochs[1].stabilized_at is None

    nodes[0].cache[1] = nodes[1].state
    clock[0] = 1.5
    monitor.notify()
    assert stabilized == [0, 2]

    merged = merge_epochs([e.to_json() for e in monitor.epochs])
    assert [m["class"] for m in merged] == ["boot", "crash"]
    outage = merged[1]
    assert outage["labels"] == ["loss@1.00s", "crash-2"]
    assert outage["disturbances"] == 2
    assert outage["first_started_at"] == 1.0
    assert abs(outage["time_to_stabilize"] - 0.3) < 1e-9


def test_census_audit_suspended_while_fault_window_bites():
    """Theorem 3 premises fault-free execution: a census dip during an
    active loss window is not a vacancy/violation, the same dip after the
    window heals is."""
    class HideableTokens(SSRmin):
        hide_tokens = False

        def node_holds_token(self, view, i):
            return (not self.hide_tokens
                    and super().node_holds_token(view, i))

    # The monitor keys bounds + gracefulness off the type name.
    HideableTokens.__name__ = "SSRmin"
    alg = HideableTokens(3, 4)
    nodes = _ring(alg, alg.initial_configuration())
    clock = [0.05]
    monitor = _monitor(alg, nodes, clock)
    monitor.notify()
    assert monitor.stabilized

    alg.hide_tokens = True  # every own view goes token-less

    monitor.window_opened()
    clock[0] = 0.2
    monitor.notify()
    assert monitor.vacancy_instants == 0
    assert monitor.guarantee_violations == []

    monitor.window_healed()
    clock[0] = 0.3
    monitor.notify()
    assert monitor.vacancy_instants == 1
    assert len(monitor.guarantee_violations) == 1


def test_vacancy_counter_survives_watchdog_restart():
    """Dijkstra's handover-gap counter must be monotone across a restart:
    the monitor re-reads node objects, so swapping a server out from under
    it neither resets nor double-counts the tally."""
    from repro.runtime import RingSupervisor
    from repro.runtime.harness import build_algorithm

    async def scenario():
        sup = RingSupervisor(
            build_algorithm("dijkstra", 4, None), transport="loopback",
            seed=31, timer_interval=0.05, watchdog_interval=0.05,
        )
        try:
            await sup.boot()
            await sup.wait_stabilized(STABILIZE_TIMEOUT)
            await sup.run_for(0.4)
            before_kill = sup.health.vacancy_instants
            sup.kill(2)
            deadline = asyncio.get_running_loop().time() + STABILIZE_TIMEOUT
            while sup.total_restarts < 1:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            await sup.wait_stabilized(STABILIZE_TIMEOUT)
            await sup.run_for(0.4)
            after = sup.health.vacancy_instants
        finally:
            await sup.shutdown()
        return before_kill, after, sup.report()

    before_kill, after, report = asyncio.run(scenario())
    health = report["health"]
    # Dijkstra under CST shows the Figure 13 gap already before the crash.
    assert before_kill > 0
    # ... and keeps counting (never resets) across the watchdog restart.
    assert after >= before_kill
    assert health["vacancy_instants"] == after
    assert report["restarts"] >= 1
    assert health["stabilized"]
    assert any(e["label"].startswith(("crash-", "restart-"))
               for e in health["epochs"][1:])
