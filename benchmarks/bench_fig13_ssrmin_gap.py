"""Figure 13: SSRmin graceful handover under message passing (Theorem 3)."""

from conftest import run_and_check


def test_fig13(benchmark):
    """Figure 13: SSRmin graceful handover under message passing (Theorem 3)."""
    run_and_check(benchmark, "fig13")
