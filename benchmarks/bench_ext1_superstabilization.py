"""Extension: single-fault recovery and the >=1-token safety predicate."""

from conftest import run_and_check


def test_ext1(benchmark):
    """Extension: single-fault recovery and the >=1-token safety predicate."""
    run_and_check(benchmark, "ext1")
