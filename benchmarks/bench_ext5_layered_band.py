"""Extension: layered SSRmin keeps the (m, 2m) token band under messages."""

from conftest import run_and_check


def test_ext5(benchmark):
    """Extension: layered SSRmin keeps the (m, 2m) token band under messages."""
    run_and_check(benchmark, "ext5")
