"""Ablation: CST refresh-timer interval vs fault-recovery latency."""

from conftest import run_and_check


def test_abl4(benchmark):
    """Ablation: CST refresh-timer interval vs fault-recovery latency."""
    run_and_check(benchmark, "abl4")
