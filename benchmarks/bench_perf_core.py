"""Before/after benchmark for the packed fastpath kernel (PR artifact).

Measures the two workloads the fastpath was built for, naive vs fast, and
writes ``BENCH_perf_core.json``:

* **step loop** — run-until-legitimate from random starts on a large ring
  (n=256 full / n=64 quick) under a seeded random central daemon;
* **model checker** — exhaustive ``check_self_stabilization`` over the full
  state space (n=4, K=5 full — 160,000 configurations / n=3, K=4 quick).

Every timed pair also cross-checks equivalence (same convergence steps,
same checker verdict and worst case), so the numbers cannot silently come
from diverging semantics.  Exit status is non-zero when a measured speedup
falls below the ``--min-*-speedup`` gates, which is how the CI smoke job
uses it (``--quick --min-step-speedup 3``).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_core.py            # full
    PYTHONPATH=src python benchmarks/bench_perf_core.py --quick
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.core.ssrmin import SSRmin
from repro.daemons.central import RandomCentralDaemon
from repro.simulation.convergence import converge
from repro.verification.model_checker import check_self_stabilization
from repro.verification.transition_system import TransitionSystem


def bench_step_loop(n: int, K: int, trials: int, seed: int) -> dict:
    """Time run-until-legitimate from identical random starts, both paths."""
    alg = SSRmin(n, K)
    starts = [
        alg.random_configuration(random.Random(seed + t))
        for t in range(trials)
    ]
    timings = {}
    steps_by_path = {}
    for label, fast in (("fastpath", True), ("naive", False)):
        total_steps = 0
        t0 = time.perf_counter()
        for t, init in enumerate(starts):
            res = converge(
                alg, RandomCentralDaemon(seed=seed + t), init,
                use_fastpath=fast,
            )
            if not res.converged:
                raise RuntimeError(f"trial {t} did not converge ({label})")
            total_steps += res.steps
        elapsed = time.perf_counter() - t0
        timings[label] = elapsed
        steps_by_path[label] = total_steps

    if steps_by_path["fastpath"] != steps_by_path["naive"]:
        raise RuntimeError(
            "fast and naive step loops diverged: "
            f"{steps_by_path['fastpath']} vs {steps_by_path['naive']} steps"
        )
    steps = steps_by_path["fastpath"]
    return {
        "workload": f"SSRmin n={n} K={K}, {trials} random-start convergence "
                    "runs, random central daemon",
        "n": n,
        "K": K,
        "trials": trials,
        "total_steps": steps,
        "naive_seconds": round(timings["naive"], 4),
        "fastpath_seconds": round(timings["fastpath"], 4),
        "naive_steps_per_second": round(steps / timings["naive"], 1),
        "fastpath_steps_per_second": round(steps / timings["fastpath"], 1),
        "speedup": round(timings["naive"] / timings["fastpath"], 2),
    }


def bench_model_checker(n: int, K: int) -> dict:
    """Time the exhaustive self-stabilization check, both paths."""
    timings = {}
    reports = {}
    for label, fast in (("fastpath", True), ("naive", False)):
        alg = SSRmin(n, K)
        ts = TransitionSystem(alg, "distributed", use_fastpath=fast)
        t0 = time.perf_counter()
        report = check_self_stabilization(ts)
        timings[label] = time.perf_counter() - t0
        reports[label] = report
        if not report.self_stabilizing:
            raise RuntimeError(f"check failed on the {label} path")

    fast_r, naive_r = reports["fastpath"], reports["naive"]
    if (fast_r.state_count, fast_r.legitimate_count, fast_r.worst_case_steps) != (
        naive_r.state_count, naive_r.legitimate_count, naive_r.worst_case_steps
    ):
        raise RuntimeError("fast and naive checker results diverged")
    return {
        "workload": f"exhaustive check_self_stabilization, SSRmin n={n} K={K} "
                    f"({fast_r.state_count} configurations, distributed daemon)",
        "n": n,
        "K": K,
        "state_count": fast_r.state_count,
        "worst_case_steps": fast_r.worst_case_steps,
        "naive_seconds": round(timings["naive"], 4),
        "fastpath_seconds": round(timings["fastpath"], 4),
        "speedup": round(timings["naive"] / timings["fastpath"], 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizes: n=64 step loop, n=3 K=4 checker")
    parser.add_argument(
        "--output", default="BENCH_perf_core.json",
        help="artifact path (default: %(default)s)")
    parser.add_argument(
        "--min-step-speedup", type=float, default=None,
        help="fail if the step-loop speedup is below this factor")
    parser.add_argument(
        "--min-checker-speedup", type=float, default=None,
        help="fail if the model-checker speedup is below this factor")
    args = parser.parse_args(argv)

    if args.quick:
        step = bench_step_loop(n=64, K=65, trials=3, seed=0)
        checker = bench_model_checker(n=3, K=4)
    else:
        step = bench_step_loop(n=256, K=257, trials=3, seed=0)
        checker = bench_model_checker(n=4, K=5)

    payload = {
        "schema": 1,
        "suite": "perf_core",
        "mode": "quick" if args.quick else "full",
        "step_loop": step,
        "model_checker": checker,
        "equivalence": (
            "fast and naive paths produced identical step counts and "
            "checker reports in every timed run (enforced inline; see "
            "tests/simulation/test_fastpath.py for the full differential "
            "suite)"
        ),
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"step loop     : {step['speedup']}x "
          f"({step['naive_seconds']}s -> {step['fastpath_seconds']}s, "
          f"{step['total_steps']} steps)")
    print(f"model checker : {checker['speedup']}x "
          f"({checker['naive_seconds']}s -> {checker['fastpath_seconds']}s, "
          f"{checker['state_count']} states)")
    print(f"artifact      : {args.output}")

    failed = False
    if args.min_step_speedup and step["speedup"] < args.min_step_speedup:
        print(f"FAIL: step-loop speedup {step['speedup']} < "
              f"{args.min_step_speedup}", file=sys.stderr)
        failed = True
    if args.min_checker_speedup and checker["speedup"] < args.min_checker_speedup:
        print(f"FAIL: checker speedup {checker['speedup']} < "
              f"{args.min_checker_speedup}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
