"""Theorem 1: 1 <= privileged <= 2 and 4K states per process."""

from conftest import run_and_check


def test_thm1(benchmark):
    """Theorem 1: 1 <= privileged <= 2 and 4K states per process."""
    run_and_check(benchmark, "thm1")
