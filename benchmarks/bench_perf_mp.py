"""Before/after benchmark for the packed message-passing fastpath (PR artifact).

Measures the packed CST/DES engine against the reference heap-of-objects
engine and writes ``BENCH_perf_mp.json``:

* **DES single run** — one chaos-start run at n=64 (n=32 quick), fixed
  duration, 10% loss;
* **run_thm4** — the full Theorem 4 Monte-Carlo experiment, wall clock;
* **reference micro-bench** — the payload-interning satellite A/B'd on the
  reference engine itself.

Every timed pair cross-checks equivalence inline (token timelines, final
states, caches, message statistics, event counts), so the numbers cannot
silently come from diverging semantics.  Exit status is non-zero when a
measured speedup falls below the ``--min-*-speedup`` gates, which is how
the CI smoke job uses it (``--quick --min-mp-speedup 5``).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_mp.py            # full
    PYTHONPATH=src python benchmarks/bench_perf_mp.py --quick

(``python -m repro bench mp`` is the same benchmark behind the CLI.)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.messagepassing.fastpath.bench import (
    check_gates,
    format_report,
    run_mp_bench,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizes: n=32 DES run, fast-trial thm4")
    parser.add_argument(
        "--output", default="BENCH_perf_mp.json",
        help="artifact path (default: %(default)s)")
    parser.add_argument(
        "--min-mp-speedup", type=float, default=None,
        help="fail if the DES single-run speedup is below this factor")
    parser.add_argument(
        "--min-thm4-speedup", type=float, default=None,
        help="fail if the run_thm4 speedup is below this factor")
    args = parser.parse_args(argv)

    payload = run_mp_bench(quick=args.quick)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(format_report(payload))
    print(f"artifact       : {args.output}")

    failures = check_gates(
        payload,
        min_mp_speedup=args.min_mp_speedup,
        min_thm4_speedup=args.min_thm4_speedup,
    )
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
