"""Before/after benchmark for the batched sweep engine (PR artifact).

Thin entry point over :mod:`repro.sweeps.bench` — see that module for the
workload definitions.  Writes ``BENCH_perf_sweep.json`` and exits non-zero
when the batched/per-cell throughput ratio falls below the
``--min-cell-speedup`` gate, which is how the CI smoke job uses it
(``--quick --min-cell-speedup 2``).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_sweep.py            # full
    PYTHONPATH=src python benchmarks/bench_perf_sweep.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.sweeps.bench import check_gates, format_report, run_sweep_bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizes: small grid, fit up to n=128")
    parser.add_argument(
        "--output", default="BENCH_perf_sweep.json",
        help="artifact path (default: %(default)s)")
    parser.add_argument(
        "--min-cell-speedup", type=float, default=None,
        help="fail if batched/per-cell cells-per-sec is below this factor")
    args = parser.parse_args(argv)

    payload = run_sweep_bench(quick=args.quick)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(format_report(payload))
    print(f"artifact       : {args.output}")

    failures = check_gates(
        payload, min_cell_speedup=args.min_cell_speedup)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
