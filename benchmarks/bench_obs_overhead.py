"""Overhead gate for the run-store subscriber (PR artifact).

The observability layer's contract is that *watching a run must not slow
it down*: :class:`repro.observability.ingest.StoreSubscriber` registers
on the telemetry session with ``detail=False``, so the simulation
engines keep their batched event cadence and the subscriber costs one
dict lookup per published event.  This benchmark measures that cost on
the paper workload — run-until-legitimate convergence loops on an
SSRmin ring under a seeded random central daemon — with the subscriber
attached (in-memory sqlite store) versus detached, and writes
``BENCH_obs_overhead.json``.

Rounds are interleaved (detached, attached, detached, ...) and the
minimum per arm is compared, which cancels thermal / scheduler drift;
both arms replay identical seeded starts, so the step counts are
asserted equal before any timing is trusted.  Exit status is non-zero
when the relative overhead exceeds ``--max-overhead-pct``, which is how
the CI observability smoke job uses it (``--quick --max-overhead-pct 5``).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.core.ssrmin import SSRmin
from repro.daemons.central import RandomCentralDaemon
from repro.observability.ingest import StoreSubscriber
from repro.observability.store import RunStore
from repro.simulation.convergence import converge
from repro.telemetry import telemetry_session


def _run_workload(alg, starts, seed: int) -> int:
    """The timed region: seeded convergence runs; returns total steps."""
    total_steps = 0
    for t, init in enumerate(starts):
        res = converge(alg, RandomCentralDaemon(seed=seed + t), init)
        if not res.converged:
            raise RuntimeError(f"trial {t} did not converge")
        total_steps += res.steps
    return total_steps


def _time_arm(alg, starts, seed: int, attached: bool) -> tuple:
    """One round of the workload under a fresh session; (seconds, steps)."""
    store = RunStore(":memory:") if attached else None
    try:
        with telemetry_session() as tel:
            if attached:
                subscriber = StoreSubscriber(store, session=tel,
                                             source="bench")
                tel.subscribe(subscriber, detail=False)
                # The whole point: the subscriber must not flip the
                # engines into per-step event publishing.
                assert not tel.step_detail, (
                    "StoreSubscriber switched the session into step "
                    "detail; the <5% budget is only valid batched"
                )
            t0 = time.perf_counter()
            steps = _run_workload(alg, starts, seed)
            elapsed = time.perf_counter() - t0
            if attached:
                subscriber.close()
    finally:
        if store is not None:
            store.close()
    return elapsed, steps


def bench_overhead(n: int, K: int, trials: int, rounds: int,
                   seed: int) -> dict:
    alg = SSRmin(n, K)
    starts = [
        alg.random_configuration(random.Random(seed + t))
        for t in range(trials)
    ]
    timings = {"detached": [], "attached": []}
    steps_seen = set()
    # Warm-up (JIT-free Python still benefits: allocator, caches).
    _time_arm(alg, starts, seed, attached=False)
    for _ in range(rounds):
        for label, attached in (("detached", False), ("attached", True)):
            elapsed, steps = _time_arm(alg, starts, seed, attached=attached)
            timings[label].append(elapsed)
            steps_seen.add(steps)
    if len(steps_seen) != 1:
        raise RuntimeError(
            f"attached and detached arms diverged: step counts {steps_seen}"
        )
    steps = steps_seen.pop()
    detached = min(timings["detached"])
    attached = min(timings["attached"])
    overhead_pct = (attached - detached) / detached * 100.0
    return {
        "workload": f"SSRmin n={n} K={K}, {trials} random-start convergence "
                    "runs, random central daemon, telemetry session active",
        "n": n,
        "K": K,
        "trials": trials,
        "rounds": rounds,
        "total_steps": steps,
        "detached_seconds": round(detached, 4),
        "attached_seconds": round(attached, 4),
        "detached_steps_per_second": round(steps / detached, 1),
        "attached_steps_per_second": round(steps / attached, 1),
        "overhead_pct": round(overhead_pct, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizes: n=48 ring, 3 trials, 5 rounds")
    parser.add_argument(
        "--output", default="BENCH_obs_overhead.json",
        help="artifact path (default: %(default)s)")
    parser.add_argument(
        "--max-overhead-pct", type=float, default=None,
        help="fail if the attached-subscriber overhead exceeds this")
    args = parser.parse_args(argv)

    if args.quick:
        result = bench_overhead(n=48, K=49, trials=3, rounds=5, seed=0)
    else:
        result = bench_overhead(n=64, K=65, trials=3, rounds=8, seed=0)

    payload = {
        "schema": 1,
        "suite": "obs_overhead",
        "mode": "quick" if args.quick else "full",
        "budget_pct": 5.0,
        "step_loop": result,
        "method": (
            "interleaved rounds, min-of-rounds per arm, identical seeded "
            "starts (step counts asserted equal); attached arm = "
            "StoreSubscriber(detail=False) on an in-memory sqlite store"
        ),
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"step loop : {result['detached_seconds']}s detached -> "
          f"{result['attached_seconds']}s attached "
          f"({result['overhead_pct']:+.2f}% over {result['total_steps']} "
          "steps)")
    print(f"artifact  : {args.output}")

    if (args.max_overhead_pct is not None
            and result["overhead_pct"] > args.max_overhead_pct):
        print(f"FAIL: subscriber overhead {result['overhead_pct']}% > "
              f"{args.max_overhead_pct}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
