"""Application: the continuous-observation camera network (section 1.1)."""

from conftest import run_and_check


def test_app1(benchmark):
    """Application: the continuous-observation camera network (section 1.1)."""
    run_and_check(benchmark, "app1")
