"""Figure 11: token extinction of transformed SSToken (message passing)."""

from conftest import run_and_check


def test_fig11(benchmark):
    """Figure 11: token extinction of transformed SSToken (message passing)."""
    run_and_check(benchmark, "fig11")
