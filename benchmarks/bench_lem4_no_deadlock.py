"""Lemma 4: no deadlock, exhaustively over small instances."""

from conftest import run_and_check


def test_lem4(benchmark):
    """Lemma 4: no deadlock, exhaustively over small instances."""
    run_and_check(benchmark, "lem4")
