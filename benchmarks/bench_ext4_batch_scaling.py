"""Extension: large-scale O(n^2) scaling via the vectorized batch engine."""

from conftest import run_and_check


def test_ext4(benchmark):
    """Extension: large-scale O(n^2) scaling via the vectorized batch engine."""
    run_and_check(benchmark, "ext4")
