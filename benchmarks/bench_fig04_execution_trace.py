"""Figure 4: the 16-step execution example with five processes, cell-exact."""

from conftest import run_and_check


def test_fig04(benchmark):
    """Figure 4: the 16-step execution example with five processes, cell-exact."""
    run_and_check(benchmark, "fig04")
