"""Extension: heuristic adversary vs the exact game-theoretic worst case."""

from conftest import run_and_check


def test_ext7(benchmark):
    """Extension: heuristic adversary vs the exact game-theoretic worst case."""
    run_and_check(benchmark, "ext7")
