"""Extension: graceful handover on a collision-prone shared wireless medium."""

from conftest import run_and_check


def test_ext9(benchmark):
    """Extension: graceful handover on a collision-prone shared wireless medium."""
    run_and_check(benchmark, "ext9")
