"""Theorem 2: O(n^2) convergence scaling with log-log exponent fit."""

from conftest import run_and_check


def test_thm2(benchmark):
    """Theorem 2: O(n^2) convergence scaling with log-log exponent fit."""
    run_and_check(benchmark, "thm2")
