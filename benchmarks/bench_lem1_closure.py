"""Lemma 1: closure via the canonical 3nK-configuration cycle."""

from conftest import run_and_check


def test_lem1(benchmark):
    """Lemma 1: closure via the canonical 3nK-configuration cycle."""
    run_and_check(benchmark, "lem1")
