"""Lemma 5: <= 3n steps without Rules 2/4; Lemma 8 domination ratios."""

from conftest import run_and_check


def test_lem5(benchmark):
    """Lemma 5: <= 3n steps without Rules 2/4; Lemma 8 domination ratios."""
    run_and_check(benchmark, "lem5")
