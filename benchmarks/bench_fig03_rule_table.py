"""Figure 3: possible rules for each <rts_i.tra_i> value, enumerated."""

from conftest import run_and_check


def test_fig03(benchmark):
    """Figure 3: possible rules for each <rts_i.tra_i> value, enumerated."""
    run_and_check(benchmark, "fig03")
