"""Figure 1: movement of the primary and secondary tokens (P/S table)."""

from conftest import run_and_check


def test_fig01(benchmark):
    """Figure 1: movement of the primary and secondary tokens (P/S table)."""
    run_and_check(benchmark, "fig01")
