"""Theorem 4: stabilization from arbitrary states/caches under message loss."""

from conftest import run_and_check


def test_thm4(benchmark):
    """Theorem 4: stabilization from arbitrary states/caches under message loss."""
    run_and_check(benchmark, "thm4")
