"""Figure 12: two independent SSToken instances still go token-less."""

from conftest import run_and_check


def test_fig12(benchmark):
    """Figure 12: two independent SSToken instances still go token-less."""
    run_and_check(benchmark, "fig12")
