"""Extension: link-outage degradation is confined and recovery guaranteed."""

from conftest import run_and_check


def test_ext6(benchmark):
    """Extension: link-outage degradation is confined and recovery guaranteed."""
    run_and_check(benchmark, "ext6")
