"""Ablation: the secondary-token condition (section 3.1 discussion)."""

from conftest import run_and_check


def test_abl1(benchmark):
    """Ablation: the secondary-token condition (section 3.1 discussion)."""
    run_and_check(benchmark, "abl1")
