"""Throughput benchmark for the live runtime: wire formats + ring fleet.

Measures three layers and writes ``BENCH_perf_runtime.json``:

* **codec** — JSON vs packed-binary encode+decode round trips (no I/O);
* **wire path** — delivered msgs/sec over a real localhost UDP socket:
  JSON datagram-per-message (the pre-fleet hot path) vs binary vs binary
  with send-side datagram batching (the fleet fastpath);
* **fleet curve** — rings × nodes aggregate delivered msgs/sec through
  the shared-socket mux transport, each cell a real live deployment.

Exit status is non-zero when the binary-batched path's speedup over the
JSON path falls below ``--min-wire-speedup``, which is how the CI smoke
job uses it (``--quick --min-wire-speedup 2``), or when any fleet cell
fails to stabilize all of its rings.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_runtime.py           # full
    PYTHONPATH=src python benchmarks/bench_perf_runtime.py --quick

(``python -m repro bench runtime`` is the same benchmark behind the CLI.)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.runtime.bench import check_gates, format_report, run_runtime_bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizes: fewer messages, 2-cell fleet grid")
    parser.add_argument(
        "--output", default="BENCH_perf_runtime.json",
        help="artifact path (default: %(default)s)")
    parser.add_argument(
        "--min-wire-speedup", type=float, default=None,
        help="fail if binary-batched/json delivered msgs/sec is below this")
    args = parser.parse_args(argv)

    payload = run_runtime_bench(quick=args.quick)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(format_report(payload))
    print(f"artifact       : {args.output}")

    failures = check_gates(payload, min_wire_speedup=args.min_wire_speedup)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
