"""Ablation: convergence under the daemon spectrum (central to adversarial)."""

from conftest import run_and_check


def test_abl2(benchmark):
    """Ablation: convergence under the daemon spectrum (central to adversarial)."""
    run_and_check(benchmark, "abl2")
