"""Lemma 3: some process satisfies G_i in every configuration."""

from conftest import run_and_check


def test_lem3(benchmark):
    """Lemma 3: some process satisfies G_i in every configuration."""
    run_and_check(benchmark, "lem3")
