"""Extension: round complexity of SSRmin convergence."""

from conftest import run_and_check


def test_ext2(benchmark):
    """Extension: round complexity of SSRmin convergence."""
    run_and_check(benchmark, "ext2")
