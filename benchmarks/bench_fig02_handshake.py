"""Figure 2: the rts/tra handshake protocol between P_i and P_{i+1}."""

from conftest import run_and_check


def test_fig02(benchmark):
    """Figure 2: the rts/tra handshake protocol between P_i and P_{i+1}."""
    run_and_check(benchmark, "fig02")
