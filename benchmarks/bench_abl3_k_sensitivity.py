"""Ablation: the K > n requirement of the embedded Dijkstra ring."""

from conftest import run_and_check


def test_abl3(benchmark):
    """Ablation: the K > n requirement of the embedded Dijkstra ring."""
    run_and_check(benchmark, "abl3")
