"""Lemma 2: exactly one primary and one secondary token in legitimacy."""

from conftest import run_and_check


def test_lem2(benchmark):
    """Lemma 2: exactly one primary and one secondary token in legitimacy."""
    run_and_check(benchmark, "lem2")
