"""Ablation: K's magnitude is immaterial once K > n."""

from conftest import run_and_check


def test_abl5(benchmark):
    """Ablation: K's magnitude is immaterial once K > n."""
    run_and_check(benchmark, "abl5")
