"""Extension: service fairness and message cost across both models."""

from conftest import run_and_check


def test_ext3(benchmark):
    """Extension: service fairness and message cost across both models."""
    run_and_check(benchmark, "ext3")
