"""Microbenchmarks of the simulation engines (steps/second).

Unlike the per-experiment benches (single-shot end-to-end reproductions),
these are classic repeated-timing microbenchmarks guarding the hot paths:

* the scalar composite-atomicity step loop,
* the vectorized batch step,
* CST event processing in the DES,
* the exhaustive model checker on the smallest SSRmin instance.

Regressions here directly inflate every experiment's runtime.
"""

import random

from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon, SynchronousDaemon
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.simulation.batch import BatchSSRmin
from repro.simulation.engine import SharedMemorySimulator


def test_scalar_engine_steps(benchmark):
    """1000 composite-atomicity steps of the scalar engine (n=8)."""
    alg = SSRmin(8, 9)
    daemon = SynchronousDaemon()
    init = alg.initial_configuration()

    def run():
        sim = SharedMemorySimulator(alg, daemon)
        sim.run(init, max_steps=1000, record=False)

    benchmark(run)


def test_scalar_engine_recording(benchmark):
    """Same workload with full execution recording (memory-churn path)."""
    alg = SSRmin(8, 9)
    daemon = RandomSubsetDaemon(seed=0)
    init = alg.random_configuration(random.Random(0))

    def run():
        sim = SharedMemorySimulator(alg, daemon)
        sim.run(init, max_steps=300, record=True)

    benchmark(run)


def test_batch_engine_steps(benchmark):
    """1000 vectorized steps over 256 parallel trials (n=8)."""
    def run():
        batch = BatchSSRmin(8, 9, trials=256, p=0.5, seed=0)
        batch.randomize(seed=1)
        for _ in range(1000):
            batch.step()

    benchmark(run)


def test_batch_legitimacy_mask(benchmark):
    """Vectorized Definition-1 check over 4096 random configurations."""
    batch = BatchSSRmin(8, 9, trials=4096, seed=2)
    batch.randomize(seed=3)
    benchmark(batch.legitimate_mask)


def test_cst_event_processing(benchmark):
    """100 simulated time units of a 5-node CST network (~2k events)."""
    def run():
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=4, delay_model=UniformDelay(0.5, 1.5))
        net.run(100.0)

    benchmark(run)


def test_model_checker_smallest_instance(benchmark):
    """Full exhaustive check of SSRmin n=3, K=4 (4096 configurations)."""
    from repro.verification import TransitionSystem, check_self_stabilization

    def run():
        alg = SSRmin(3, 4)
        report = check_self_stabilization(TransitionSystem(alg, "distributed"))
        assert report.self_stabilizing

    benchmark(run)
