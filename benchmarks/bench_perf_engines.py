"""Microbenchmarks of the simulation engines (steps/second).

Unlike the per-experiment benches (single-shot end-to-end reproductions),
these are classic repeated-timing microbenchmarks guarding the hot paths:

* the scalar composite-atomicity step loop,
* the vectorized batch step,
* CST event processing in the DES,
* the exhaustive model checker on the smallest SSRmin instance.

Regressions here directly inflate every experiment's runtime.

Besides the usual pytest-benchmark console table, the module writes a
machine-readable ``BENCH_perf_engines.json`` artifact (in the invocation
directory) summarizing every benchmark that ran — mean/min/max/stddev
seconds and round counts — so CI can archive and diff engine throughput
across commits without parsing terminal output.
"""

import json
import random

import pytest

from repro.core.ssrmin import SSRmin
from repro.daemons.distributed import RandomSubsetDaemon, SynchronousDaemon
from repro.messagepassing.cst import transformed
from repro.messagepassing.links import UniformDelay
from repro.simulation.batch import BatchSSRmin
from repro.simulation.engine import SharedMemorySimulator

ARTIFACT = "BENCH_perf_engines.json"

#: benchmark name -> timing summary, flushed to ARTIFACT after the module.
_TIMINGS = {}


def _record(benchmark, name):
    """Stash a benchmark's timing stats for the JSON artifact.

    No-op when timing was disabled (``--benchmark-disable``): the fixture
    still calls the function once, but collects no stats.
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return
    _TIMINGS[name] = {
        "mean_seconds": stats.mean,
        "min_seconds": stats.min,
        "max_seconds": stats.max,
        "stddev_seconds": stats.stddev,
        "rounds": stats.rounds,
    }


@pytest.fixture(scope="module", autouse=True)
def _write_artifact():
    """Write ``BENCH_perf_engines.json`` once the module's benches finish."""
    yield
    if not _TIMINGS:
        return
    payload = {
        "schema": 1,
        "suite": "perf_engines",
        "benchmarks": dict(sorted(_TIMINGS.items())),
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_scalar_engine_steps(benchmark):
    """1000 composite-atomicity steps of the scalar engine (n=8)."""
    alg = SSRmin(8, 9)
    daemon = SynchronousDaemon()
    init = alg.initial_configuration()

    def run():
        sim = SharedMemorySimulator(alg, daemon)
        sim.run(init, max_steps=1000, record=False)

    benchmark(run)
    _record(benchmark, "scalar_engine_steps")


def test_scalar_engine_steps_naive(benchmark):
    """The same workload on the naive (kernel-free) reference path."""
    alg = SSRmin(8, 9)
    daemon = SynchronousDaemon()
    init = alg.initial_configuration()

    def run():
        sim = SharedMemorySimulator(alg, daemon, use_fastpath=False)
        sim.run(init, max_steps=1000, record=False)

    benchmark(run)
    _record(benchmark, "scalar_engine_steps_naive")


def test_scalar_engine_steps_telemetry(benchmark):
    """Telemetry-on (metrics session, no trace/subscribers) vs the
    telemetry-off bench above: batched counter aggregation must keep this
    within ~10% of ``scalar_engine_steps``."""
    from repro.telemetry import telemetry_session

    alg = SSRmin(8, 9)
    daemon = SynchronousDaemon()
    init = alg.initial_configuration()

    def run():
        with telemetry_session():
            sim = SharedMemorySimulator(alg, daemon)
            sim.run(init, max_steps=1000, record=False)

    benchmark(run)
    _record(benchmark, "scalar_engine_steps_telemetry")


def test_scalar_engine_recording(benchmark):
    """Same workload with full execution recording (memory-churn path)."""
    alg = SSRmin(8, 9)
    daemon = RandomSubsetDaemon(seed=0)
    init = alg.random_configuration(random.Random(0))

    def run():
        sim = SharedMemorySimulator(alg, daemon)
        sim.run(init, max_steps=300, record=True)

    benchmark(run)
    _record(benchmark, "scalar_engine_recording")


def test_batch_engine_steps(benchmark):
    """1000 vectorized steps over 256 parallel trials (n=8)."""
    def run():
        batch = BatchSSRmin(8, 9, trials=256, p=0.5, seed=0)
        batch.randomize(seed=1)
        for _ in range(1000):
            batch.step()

    benchmark(run)
    _record(benchmark, "batch_engine_steps")


def test_batch_legitimacy_mask(benchmark):
    """Vectorized Definition-1 check over 4096 random configurations."""
    batch = BatchSSRmin(8, 9, trials=4096, seed=2)
    batch.randomize(seed=3)
    benchmark(batch.legitimate_mask)
    _record(benchmark, "batch_legitimacy_mask")


def test_cst_event_processing(benchmark):
    """100 simulated time units of a 5-node CST network (~2k events)."""
    def run():
        alg = SSRmin(5, 6)
        net = transformed(alg, seed=4, delay_model=UniformDelay(0.5, 1.5))
        net.run(100.0)

    benchmark(run)
    _record(benchmark, "cst_event_processing")


def test_model_checker_smallest_instance(benchmark):
    """Full exhaustive check of SSRmin n=3, K=4 (4096 configurations)."""
    from repro.verification import TransitionSystem, check_self_stabilization

    def run():
        alg = SSRmin(3, 4)
        report = check_self_stabilization(TransitionSystem(alg, "distributed"))
        assert report.self_stabilizing

    benchmark(run)
    _record(benchmark, "model_checker_smallest_instance")
