"""Extension: day/night energy sustainability of the rotating camera fleet."""

from conftest import run_and_check


def test_ext8(benchmark):
    """Extension: day/night energy sustainability of the rotating camera fleet."""
    run_and_check(benchmark, "ext8")
