"""Shared helper for the per-experiment benchmarks.

Each bench runs one experiment from the registry exactly once under
pytest-benchmark timing (``pedantic`` with a single round — the experiments
are end-to-end reproductions, not microbenchmarks), prints the regenerated
table, and asserts the paper's claim reproduced.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment


def run_and_check(benchmark, experiment_id: str, fast: bool = False):
    """Benchmark one experiment runner and assert reproduction."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    assert result.match, result.render()
    return result
